//! Fixed-step transient analysis.
//!
//! The circuit is linear, so the time-discretised system matrix is constant
//! and is factorised exactly once per run; every timestep is then a single
//! forward/backward substitution. Two A-stable one-step integration methods
//! are provided:
//!
//! * **Backward Euler** — first order, strongly damping (useful as a
//!   cross-check; it artificially damps ringing);
//! * **Trapezoidal** — second order, the default. It preserves the ringing of
//!   underdamped RLC lines, which is essential when comparing against the
//!   paper's inductance-dominated cases.
//!
//! Both the iteration matrix and the history operator are assembled in band
//! form under the system's bandwidth-reducing ordering, and the one-off
//! factorisation goes through the pluggable [`SolverBackend`]: for
//! ladder-shaped circuits the whole run is `O(n·b²) + steps·O(n·b)` instead
//! of the dense `O(n³) + steps·O(n²)`.

use rlckit_numeric::solver::{ResolvedBackend, SolverBackend};
use rlckit_units::{Time, Voltage};

use crate::dc::operating_point_of;
use crate::error::CircuitError;
use crate::mna::MnaSystem;
use crate::netlist::{Circuit, NodeId};
use crate::solve::factor_real;
use crate::waveform::Waveform;

/// Time-integration method for [`run_transient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integration {
    /// First-order backward Euler.
    BackwardEuler,
    /// Second-order trapezoidal rule (default).
    #[default]
    Trapezoidal,
}

/// Options controlling a transient run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// End time of the simulation (the run covers `[0, stop_time]`).
    pub stop_time: Time,
    /// Fixed integration timestep.
    pub step: Time,
    /// Integration method.
    pub method: Integration,
    /// Solver backend used for the one-off factorisation (default
    /// [`SolverBackend::Auto`]: banded for ladder-shaped systems, dense
    /// otherwise).
    pub backend: SolverBackend,
}

impl TransientOptions {
    /// Convenience constructor using the default (trapezoidal) method and
    /// automatic backend selection.
    pub fn new(stop_time: Time, step: Time) -> Self {
        Self { stop_time, step, method: Integration::Trapezoidal, backend: SolverBackend::Auto }
    }

    /// Returns a copy with the given solver backend.
    #[must_use]
    pub fn with_backend(mut self, backend: SolverBackend) -> Self {
        self.backend = backend;
        self
    }

    fn validate(&self) -> Result<(), CircuitError> {
        if !(self.stop_time.seconds() > 0.0) || !self.stop_time.seconds().is_finite() {
            return Err(CircuitError::InvalidAnalysis {
                reason: "stop time must be positive and finite",
            });
        }
        if !(self.step.seconds() > 0.0) || !self.step.seconds().is_finite() {
            return Err(CircuitError::InvalidAnalysis {
                reason: "timestep must be positive and finite",
            });
        }
        if self.step.seconds() > self.stop_time.seconds() {
            return Err(CircuitError::InvalidAnalysis {
                reason: "timestep must not exceed the stop time",
            });
        }
        let steps = self.stop_time.seconds() / self.step.seconds();
        if steps > 50_000_000.0 {
            return Err(CircuitError::InvalidAnalysis {
                reason: "too many timesteps (> 5e7); increase the step",
            });
        }
        Ok(())
    }
}

/// Result of a transient run: every MNA unknown at every timestep.
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    /// One vector of samples per MNA unknown.
    states: Vec<Vec<f64>>,
    node_unknowns: usize,
    backend: ResolvedBackend,
}

impl TransientResult {
    /// Sample times in seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of timesteps (including the initial point).
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if the result has no samples (never true for a
    /// successful run).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Voltage waveform of a node.
    ///
    /// Ground returns an all-zero waveform.
    pub fn node_voltage(&self, node: NodeId) -> Waveform {
        let values = if node.is_ground() {
            vec![0.0; self.times.len()]
        } else {
            self.states[node.index() - 1].clone()
        };
        Waveform::from_samples(self.times.clone(), values)
            .expect("transient sample grid is strictly increasing")
    }

    /// Final value of a node voltage.
    pub fn final_node_voltage(&self, node: NodeId) -> Voltage {
        if node.is_ground() {
            Voltage::ZERO
        } else {
            Voltage::from_volts(*self.states[node.index() - 1].last().expect("non-empty run"))
        }
    }

    /// Number of node-voltage unknowns stored.
    pub fn node_unknown_count(&self) -> usize {
        self.node_unknowns
    }

    /// Which solver kernel factorised the iteration matrix.
    pub fn backend(&self) -> ResolvedBackend {
        self.backend
    }
}

/// Runs a fixed-step transient analysis over `[0, stop_time]`.
///
/// The initial condition is the DC operating point with sources evaluated at
/// `t = 0`, so a step source that switches at `t = 0` starts the circuit from
/// rest — the paper's setup.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidAnalysis`] for bad options,
/// [`CircuitError::EmptyCircuit`] for an element-free circuit and
/// [`CircuitError::SingularSystem`] if the discretised system cannot be
/// factorised.
pub fn run_transient(
    circuit: &Circuit,
    options: &TransientOptions,
) -> Result<TransientResult, CircuitError> {
    options.validate()?;
    let _span = rlckit_telemetry::span("transient.run");
    let mna = MnaSystem::build(circuit)?;
    let dim = mna.dim();
    let dt = options.step.seconds();
    let num_steps = (options.stop_time.seconds() / dt).ceil() as usize;

    // Build the constant iteration matrix and apply the history operator
    // directly from the triplet stamps:
    //   BE:   (G + C/dt)        x_{n+1} = b_{n+1} + (C/dt) x_n
    //   TRAP: (G/2 + C/dt)      x_{n+1} = (b_{n+1}+b_n)/2 + (C/dt - G/2) x_n
    // `factor_real` routes assembly by backend (band storage for dense and
    // banded, compressed-sparse-column for the sparse kernel on tree-shaped
    // circuits), and the whole loop runs in logical order — the history
    // mat-vec is the stamp-level `O(nnz)` `apply_real`, so no band matrix is
    // materialised on wide-bandwidth systems. The sparse symbolic phase is
    // computed at most once per system and shared between this factorisation
    // and the DC initial condition below.
    let (lhs_g, hist_g) = match options.method {
        Integration::BackwardEuler => (1.0, 0.0),
        Integration::Trapezoidal => (0.5, -0.5),
    };
    let factor = factor_real(&mna, lhs_g, 1.0 / dt, options.backend, "transient analysis")?;

    // Initial condition: DC operating point at t = 0.
    let initial = operating_point_of(&mna, Time::ZERO, options.backend)?;
    debug_assert_eq!(initial.state().len(), dim);
    let mut state = initial.state().to_vec();

    let mut times = Vec::with_capacity(num_steps + 1);
    let mut states: Vec<Vec<f64>> = vec![Vec::with_capacity(num_steps + 1); dim];
    times.push(0.0);
    for (k, series) in states.iter_mut().enumerate() {
        series.push(state[k]);
    }

    let mut b_prev = vec![0.0; dim];
    mna.rhs_at(Time::ZERO, &mut b_prev);
    let mut b_next = vec![0.0; dim];

    // Hoisted so the loop body pays one branch, not an atomic load per step.
    let profiling = rlckit_telemetry::enabled();
    let _stepping = rlckit_telemetry::span("transient.stepping");
    for n in 1..=num_steps {
        let step_start = profiling.then(std::time::Instant::now);
        let t = n as f64 * dt;
        mna.rhs_at(Time::from_seconds(t), &mut b_next);

        // rhs = source term + memory of the previous state.
        let mut rhs = mna.apply_real(hist_g, 1.0 / dt, &state);
        match options.method {
            Integration::BackwardEuler => {
                for i in 0..dim {
                    rhs[i] += b_next[i];
                }
            }
            Integration::Trapezoidal => {
                for i in 0..dim {
                    rhs[i] += 0.5 * (b_next[i] + b_prev[i]);
                }
            }
        }
        state = factor.solve(&rhs);
        if profiling && n.is_multiple_of(16) {
            // Spot-check the step's linear system with one extra O(nnz)
            // stamp-level mat-vec: ‖A·x − b‖∞ / max(‖A·x‖∞, ‖b‖∞).
            let ax = mna.apply_real(lhs_g, 1.0 / dt, &state);
            let mut residual = 0.0_f64;
            let mut scale = 0.0_f64;
            for (axi, ri) in ax.iter().zip(rhs.iter()) {
                residual = residual.max((axi - ri).abs());
                scale = scale.max(axi.abs()).max(ri.abs());
            }
            let metric = if scale == 0.0 { 0.0 } else { residual / scale };
            rlckit_telemetry::check_metric(
                "transient.stepping",
                "step_residual",
                metric,
                rlckit_numeric::condition::STEP_RESIDUAL_WARN,
                rlckit_numeric::condition::STEP_RESIDUAL_ERROR,
            );
        }
        times.push(t);
        for (k, series) in states.iter_mut().enumerate() {
            series.push(state[k]);
        }
        std::mem::swap(&mut b_prev, &mut b_next);
        if let Some(start) = step_start {
            rlckit_telemetry::observe_seconds(
                "transient.step_seconds",
                start.elapsed().as_secs_f64(),
            );
        }
    }
    drop(_stepping);
    rlckit_telemetry::counter_add("transient.steps", num_steps as u64);

    Ok(TransientResult {
        times,
        states,
        node_unknowns: mna.node_unknowns(),
        backend: factor.backend(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWaveform;
    use rlckit_units::{Capacitance, Inductance, Resistance};

    /// Step-driven RC low-pass: analytic response 1 − e^{−t/RC}.
    fn rc_circuit() -> (Circuit, NodeId) {
        let mut c = Circuit::new();
        let input = c.add_node();
        let out = c.add_node();
        let gnd = c.ground();
        c.add_voltage_source(input, gnd, SourceWaveform::unit_step()).unwrap();
        c.add_resistor(input, out, Resistance::from_ohms(1000.0)).unwrap();
        c.add_capacitor(out, gnd, Capacitance::from_picofarads(1.0)).unwrap();
        (c, out)
    }

    /// Series RLC driven by a step; underdamped for the chosen values.
    fn rlc_circuit() -> (Circuit, NodeId, f64, f64) {
        let r = 20.0;
        let l = 10e-9;
        let cap = 1e-12;
        let mut c = Circuit::new();
        let input = c.add_node();
        let mid = c.add_node();
        let out = c.add_node();
        let gnd = c.ground();
        c.add_voltage_source(input, gnd, SourceWaveform::unit_step()).unwrap();
        c.add_resistor(input, mid, Resistance::from_ohms(r)).unwrap();
        c.add_inductor(mid, out, Inductance::from_henries(l)).unwrap();
        c.add_capacitor(out, gnd, Capacitance::from_farads(cap)).unwrap();
        let zeta = r / 2.0 * (cap / l).sqrt();
        let wn = 1.0 / (l * cap).sqrt();
        (c, out, zeta, wn)
    }

    #[test]
    fn rc_step_response_matches_analytic() {
        let (c, out) = rc_circuit();
        let tau = 1e-9; // RC = 1 kΩ × 1 pF
        let options =
            TransientOptions::new(Time::from_seconds(5.0 * tau), Time::from_seconds(tau / 1000.0));
        let result = run_transient(&c, &options).unwrap();
        let w = result.node_voltage(out);
        for &frac in &[0.5, 1.0, 2.0, 4.0] {
            let t = frac * tau;
            let got = w.value_at(Time::from_seconds(t)).unwrap().volts();
            let want = 1.0 - (-t / tau).exp();
            assert!((got - want).abs() < 2e-3, "t/τ = {frac}: got {got}, want {want}");
        }
        // 50% delay of an RC low-pass is ln 2 · τ ≈ 0.693 ns.
        let d = w.delay_50(Voltage::from_volts(1.0)).unwrap();
        assert!((d.seconds() - tau * std::f64::consts::LN_2).abs() < 5e-12);
    }

    #[test]
    fn backward_euler_also_converges_for_rc() {
        let (c, out) = rc_circuit();
        let tau = 1e-9;
        let options = TransientOptions {
            stop_time: Time::from_seconds(5.0 * tau),
            step: Time::from_seconds(tau / 2000.0),
            method: Integration::BackwardEuler,
            backend: SolverBackend::Auto,
        };
        let result = run_transient(&c, &options).unwrap();
        let got = result.node_voltage(out).value_at(Time::from_seconds(tau)).unwrap().volts();
        let want = 1.0 - (-1.0f64).exp();
        assert!((got - want).abs() < 5e-3, "got {got}, want {want}");
    }

    #[test]
    fn rlc_step_response_matches_analytic_second_order() {
        let (c, out, zeta, wn) = rlc_circuit();
        assert!(zeta < 1.0, "test circuit should be underdamped");
        let t_end = 20.0 / wn;
        let options =
            TransientOptions::new(Time::from_seconds(t_end), Time::from_seconds(t_end / 20_000.0));
        let result = run_transient(&c, &options).unwrap();
        let w = result.node_voltage(out);
        let wd = wn * (1.0 - zeta * zeta).sqrt();
        for &frac in &[0.1, 0.3, 0.5, 0.8] {
            let t = frac * t_end;
            let got = w.value_at(Time::from_seconds(t)).unwrap().volts();
            let want =
                1.0 - (-zeta * wn * t).exp() * ((wd * t).cos() + zeta * wn / wd * (wd * t).sin());
            assert!((got - want).abs() < 5e-3, "t = {t}: got {got}, want {want}");
        }
        // The response of an underdamped circuit must overshoot.
        assert!(w.overshoot_percent(Voltage::from_volts(1.0)) > 10.0);
    }

    #[test]
    fn final_value_reaches_supply() {
        let (c, out) = rc_circuit();
        let options =
            TransientOptions::new(Time::from_nanoseconds(20.0), Time::from_picoseconds(5.0));
        let result = run_transient(&c, &options).unwrap();
        assert!((result.final_node_voltage(out).volts() - 1.0).abs() < 1e-6);
        assert!(result.len() > 100);
        assert!(!result.is_empty());
        assert_eq!(result.node_unknown_count(), 2);
        // Ground waveform is identically zero.
        let gnd_wave = result.node_voltage(c.ground());
        assert!(gnd_wave.values().iter().all(|v| *v == 0.0));
    }

    #[test]
    fn invalid_options_are_rejected() {
        let (c, _) = rc_circuit();
        let bad_stop = TransientOptions::new(Time::ZERO, Time::from_picoseconds(1.0));
        assert!(matches!(run_transient(&c, &bad_stop), Err(CircuitError::InvalidAnalysis { .. })));
        let bad_step = TransientOptions::new(Time::from_nanoseconds(1.0), Time::ZERO);
        assert!(matches!(run_transient(&c, &bad_step), Err(CircuitError::InvalidAnalysis { .. })));
        let step_too_large =
            TransientOptions::new(Time::from_nanoseconds(1.0), Time::from_nanoseconds(2.0));
        assert!(matches!(
            run_transient(&c, &step_too_large),
            Err(CircuitError::InvalidAnalysis { .. })
        ));
        let too_many = TransientOptions::new(Time::from_seconds(1.0), Time::from_picoseconds(1.0));
        assert!(matches!(run_transient(&c, &too_many), Err(CircuitError::InvalidAnalysis { .. })));
    }

    #[test]
    fn step_equal_to_stop_time_is_a_single_step_run() {
        // Regression test: the bound used to be `step >= stop_time` while the
        // message promised only "smaller than" was required. A step equal to
        // the stop time is a legitimate one-step run and must be accepted; a
        // strictly larger step must still be rejected with the (now accurate)
        // "must not exceed" message.
        let (c, _) = rc_circuit();
        let one_step =
            TransientOptions::new(Time::from_nanoseconds(1.0), Time::from_nanoseconds(1.0));
        let result = run_transient(&c, &one_step).unwrap();
        assert_eq!(result.len(), 2); // the initial point plus exactly one step

        let too_large =
            TransientOptions::new(Time::from_nanoseconds(1.0), Time::from_nanoseconds(1.0001));
        match run_transient(&c, &too_large) {
            Err(CircuitError::InvalidAnalysis { reason }) => {
                assert_eq!(reason, "timestep must not exceed the stop time");
            }
            other => panic!("expected InvalidAnalysis, got {other:?}"),
        }
    }

    #[test]
    fn empty_circuit_is_rejected() {
        let c = Circuit::new();
        let options =
            TransientOptions::new(Time::from_nanoseconds(1.0), Time::from_picoseconds(1.0));
        assert!(matches!(run_transient(&c, &options), Err(CircuitError::EmptyCircuit)));
    }

    #[test]
    fn trapezoidal_is_more_accurate_than_backward_euler() {
        let (c, out, zeta, wn) = rlc_circuit();
        let t_end = 10.0 / wn;
        let dt = t_end / 2000.0;
        let wd = wn * (1.0 - zeta * zeta).sqrt();
        let analytic = |t: f64| {
            1.0 - (-zeta * wn * t).exp() * ((wd * t).cos() + zeta * wn / wd * (wd * t).sin())
        };
        let sample_t = 0.4 * t_end;

        let mut errors = Vec::new();
        for method in [Integration::Trapezoidal, Integration::BackwardEuler] {
            let options = TransientOptions {
                stop_time: Time::from_seconds(t_end),
                step: Time::from_seconds(dt),
                method,
                backend: SolverBackend::Auto,
            };
            let result = run_transient(&c, &options).unwrap();
            let got =
                result.node_voltage(out).value_at(Time::from_seconds(sample_t)).unwrap().volts();
            errors.push((got - analytic(sample_t)).abs());
        }
        assert!(
            errors[0] < errors[1],
            "trapezoidal error {} should beat backward Euler {}",
            errors[0],
            errors[1]
        );
    }

    #[test]
    fn small_circuits_resolve_to_the_dense_kernel() {
        let (c, _) = rc_circuit();
        let options =
            TransientOptions::new(Time::from_nanoseconds(1.0), Time::from_picoseconds(1.0));
        let result = run_transient(&c, &options).unwrap();
        assert_eq!(result.backend(), ResolvedBackend::Dense);
    }
}
