//! Gate-driven RLC interconnect *trees*.
//!
//! The paper derives its delay and repeater results on uniform lines, but
//! real global nets branch: a clock spine feeds taps, a signal net fans out
//! to several receivers. A [`TreeSpec`] describes such a net as a list of
//! branches — each a uniform RLC segment chain hanging off its parent's far
//! end — driven by the usual gate abstraction (step source behind `Rtr`).
//!
//! Tree-shaped MNA systems are exactly the workload the banded solver cannot
//! help with: under *any* ordering their bandwidth grows with the fan-out,
//! so [`crate::solve::factor_real`] routes them to the sparse backend, which
//! keeps the factors `O(n)`.
//!
//! [`measure_tree_delays`] runs the transient analysis once and extracts the
//! 50% delay, rise time and overshoot at *every* sink, so callers get the
//! worst-sink delay and the skew across sinks from a single simulation.

use rlckit_numeric::solver::ResolvedBackend;
use rlckit_units::{Capacitance, Inductance, Resistance, Time, Voltage};

use crate::error::CircuitError;
use crate::ladder::SegmentStyle;
use crate::netlist::{Circuit, NodeId, SourceId};
use crate::source::SourceWaveform;
use crate::transient::{run_transient, TransientOptions};

/// One uniform branch of an interconnect tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeBranch {
    /// Index of the parent branch this one hangs off (its near end attaches
    /// to the parent's far end), or `None` for a trunk branch starting at the
    /// driver output. Must be smaller than this branch's own index.
    pub parent: Option<usize>,
    /// Total branch resistance.
    pub total_resistance: Resistance,
    /// Total branch inductance.
    pub total_inductance: Inductance,
    /// Total branch capacitance.
    pub total_capacitance: Capacitance,
    /// Number of lumped segments approximating this branch.
    pub segments: usize,
    /// Receiver capacitance at the branch's far end (zero for pure junction
    /// branches).
    pub sink_capacitance: Capacitance,
}

/// Description of a CMOS gate driving a branching RLC net.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeSpec {
    /// The branches, in topological order (every parent precedes its child).
    pub branches: Vec<TreeBranch>,
    /// Segment topology used for every branch.
    pub style: SegmentStyle,
    /// Driver equivalent output resistance `Rtr` (zero allowed).
    pub driver_resistance: Resistance,
    /// Step amplitude (the supply voltage).
    pub supply: Voltage,
}

impl TreeSpec {
    /// An empty tree with a 1 V supply and π segments; push branches onto
    /// [`TreeSpec::branches`].
    pub fn new(driver_resistance: Resistance) -> Self {
        Self {
            branches: Vec::new(),
            style: SegmentStyle::Pi,
            driver_resistance,
            supply: Voltage::from_volts(1.0),
        }
    }

    fn validate(&self) -> Result<(), CircuitError> {
        if self.branches.is_empty() {
            return Err(CircuitError::InvalidValue { what: "tree branch count", value: 0.0 });
        }
        let check = |value: f64, what: &'static str| -> Result<(), CircuitError> {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                Err(CircuitError::InvalidValue { what, value })
            }
        };
        check(self.supply.volts(), "supply voltage")?;
        if !(self.driver_resistance.ohms() >= 0.0) || !self.driver_resistance.ohms().is_finite() {
            return Err(CircuitError::InvalidValue {
                what: "driver resistance",
                value: self.driver_resistance.ohms(),
            });
        }
        for (i, b) in self.branches.iter().enumerate() {
            if let Some(p) = b.parent {
                if p >= i {
                    return Err(CircuitError::InvalidValue {
                        what: "tree branch parent (must precede the branch)",
                        value: p as f64,
                    });
                }
            }
            check(b.total_resistance.ohms(), "branch resistance")?;
            check(b.total_inductance.henries(), "branch inductance")?;
            check(b.total_capacitance.farads(), "branch capacitance")?;
            if b.segments == 0 {
                return Err(CircuitError::InvalidValue {
                    what: "branch segment count",
                    value: 0.0,
                });
            }
            if !(b.sink_capacitance.farads() >= 0.0) || !b.sink_capacitance.farads().is_finite() {
                return Err(CircuitError::InvalidValue {
                    what: "sink capacitance",
                    value: b.sink_capacitance.farads(),
                });
            }
        }
        Ok(())
    }

    /// One flag per branch: `true` when some other branch hangs off it — the
    /// single source of truth for sink detection.
    fn has_child(&self) -> Vec<bool> {
        let mut has_child = vec![false; self.branches.len()];
        for b in &self.branches {
            if let Some(p) = b.parent {
                has_child[p] = true;
            }
        }
        has_child
    }

    /// Returns `true` if no other branch hangs off branch `i` — its far end
    /// is a sink.
    pub fn is_leaf(&self, i: usize) -> bool {
        !self.branches.iter().any(|b| b.parent == Some(i))
    }

    /// The branch indices along the path from the root down to branch `i`
    /// (inclusive), in root-first order.
    pub fn path_from_root(&self, i: usize) -> Vec<usize> {
        let mut path = vec![i];
        let mut cur = i;
        while let Some(p) = self.branches[cur].parent {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Total number of lumped segments across all branches.
    pub fn total_segments(&self) -> usize {
        self.branches.iter().map(|b| b.segments).sum()
    }

    /// Builds the step-driven tree circuit described by this specification.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] for empty trees, out-of-order
    /// parent references or non-positive impedances (driver resistance and
    /// sink capacitances may be zero).
    pub fn build(&self) -> Result<TreeNet, CircuitError> {
        self.validate()?;
        let mut circuit = Circuit::new();
        let gnd = circuit.ground();
        let source_node = circuit.add_node();
        let source = circuit.add_voltage_source(
            source_node,
            gnd,
            SourceWaveform::Step { amplitude: self.supply, delay: Time::ZERO },
        )?;
        let root = if self.driver_resistance.ohms() > 0.0 {
            let node = circuit.add_node();
            circuit.add_resistor(source_node, node, self.driver_resistance)?;
            node
        } else {
            source_node
        };

        let mut branch_ends: Vec<NodeId> = Vec::with_capacity(self.branches.len());
        for branch in &self.branches {
            let start = match branch.parent {
                Some(p) => branch_ends[p],
                None => root,
            };
            let n = branch.segments;
            let r_seg = branch.total_resistance / n as f64;
            let l_seg = branch.total_inductance / n as f64;
            let c_seg = branch.total_capacitance / n as f64;
            let mut prev = start;
            for _ in 0..n {
                match self.style {
                    SegmentStyle::Pi => {
                        circuit.add_capacitor(prev, gnd, c_seg / 2.0)?;
                        let mid = circuit.add_node();
                        let next = circuit.add_node();
                        circuit.add_resistor(prev, mid, r_seg)?;
                        circuit.add_inductor(mid, next, l_seg)?;
                        circuit.add_capacitor(next, gnd, c_seg / 2.0)?;
                        prev = next;
                    }
                    SegmentStyle::LSection => {
                        let mid = circuit.add_node();
                        let next = circuit.add_node();
                        circuit.add_resistor(prev, mid, r_seg)?;
                        circuit.add_inductor(mid, next, l_seg)?;
                        circuit.add_capacitor(next, gnd, c_seg)?;
                        prev = next;
                    }
                }
            }
            if branch.sink_capacitance.farads() > 0.0 {
                circuit.add_capacitor(prev, gnd, branch.sink_capacitance)?;
            }
            branch_ends.push(prev);
        }

        let has_child = self.has_child();
        let sinks = (0..self.branches.len())
            .filter(|&i| !has_child[i])
            .map(|i| TreeSink { branch: i, node: branch_ends[i] })
            .collect();

        Ok(TreeNet { circuit, source, root, branch_ends, sinks, spec: self.clone() })
    }

    /// Path totals (resistance, inductance, capacitance *of the path
    /// branches only*) from the root to the far end of branch `i`.
    pub fn path_totals(&self, i: usize) -> (Resistance, Inductance, Capacitance) {
        let mut r = Resistance::ZERO;
        let mut l = Inductance::ZERO;
        let mut c = Capacitance::ZERO;
        for &b in &self.path_from_root(i) {
            let branch = &self.branches[b];
            r += branch.total_resistance;
            l += branch.total_inductance;
            c += branch.total_capacitance;
        }
        (r, l, c)
    }

    /// A conservative timestep for transient analysis (the fastest segment
    /// mode resolved with ~8 points, like the ladder heuristic).
    pub fn suggested_timestep(&self) -> Time {
        let horizon = self.suggested_stop_time().seconds();
        let mut dt = horizon / 2000.0;
        for b in &self.branches {
            let segment_tof = (b.total_inductance.henries() * b.total_capacitance.farads()).sqrt()
                / b.segments as f64;
            dt = dt.min(segment_tof / 8.0);
        }
        Time::from_seconds(dt.max(horizon / 200_000.0))
    }

    /// A stop time long enough for every sink to cross 50% in every damping
    /// regime: several RC constants plus several round trips of the slowest
    /// root-to-sink path, with the total tree capacitance behind the driver.
    pub fn suggested_stop_time(&self) -> Time {
        let total_cap: f64 = self
            .branches
            .iter()
            .map(|b| b.total_capacitance.farads() + b.sink_capacitance.farads())
            .sum();
        let has_child = self.has_child();
        let mut worst = 0.0f64;
        for (i, _) in has_child.iter().enumerate().filter(|&(_, &parent)| !parent) {
            let (r, l, c) = self.path_totals(i);
            let ct = c.farads() + self.branches[i].sink_capacitance.farads();
            let rc = (r.ohms() + self.driver_resistance.ohms()) * total_cap.max(ct);
            let tof = (l.henries() * ct).sqrt();
            worst = worst.max(4.0 * rc + 10.0 * tof);
        }
        Time::from_seconds(worst)
    }
}

/// One sink (leaf far-end) of a built tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeSink {
    /// Index of the leaf branch.
    pub branch: usize,
    /// The sink node in the netlist.
    pub node: NodeId,
}

/// A built tree circuit plus its interesting nodes.
#[derive(Debug, Clone)]
pub struct TreeNet {
    /// The assembled netlist.
    pub circuit: Circuit,
    /// The step source driving the tree.
    pub source: SourceId,
    /// The root node (after the driver resistance).
    pub root: NodeId,
    /// Far-end node of every branch, indexed like the spec's branches.
    pub branch_ends: Vec<NodeId>,
    /// The sinks (far ends of leaf branches).
    pub sinks: Vec<TreeSink>,
    spec: TreeSpec,
}

impl TreeNet {
    /// The specification this tree was built from.
    pub fn spec(&self) -> &TreeSpec {
        &self.spec
    }
}

/// Timing measurements at one sink of a simulated tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinkMeasurement {
    /// Index of the leaf branch this sink terminates.
    pub branch: usize,
    /// 50% propagation delay at this sink.
    pub delay_50: Time,
    /// 10%–90% rise time at this sink.
    pub rise_time: Time,
    /// Overshoot above the supply at this sink, in per cent.
    pub overshoot_percent: f64,
}

/// Per-sink timing of one transient run over a tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeDelayReport {
    /// One measurement per sink, in leaf-branch order.
    pub sinks: Vec<SinkMeasurement>,
    /// Which solver kernel factorised the system.
    pub backend: ResolvedBackend,
}

impl TreeDelayReport {
    /// The sink with the largest 50% delay — the delay that matters for the
    /// net.
    ///
    /// # Panics
    ///
    /// Never panics on a report from [`measure_tree_delays`], which always
    /// measures at least one sink.
    pub fn worst_sink(&self) -> &SinkMeasurement {
        self.sinks
            .iter()
            .max_by(|a, b| a.delay_50.seconds().total_cmp(&b.delay_50.seconds()))
            .expect("a measured tree has at least one sink")
    }

    /// Skew between the slowest and fastest sink.
    pub fn sink_spread(&self) -> Time {
        let max = self.sinks.iter().map(|s| s.delay_50.seconds()).fold(f64::MIN, f64::max);
        let min = self.sinks.iter().map(|s| s.delay_50.seconds()).fold(f64::MAX, f64::min);
        Time::from_seconds(max - min)
    }

    /// The largest overshoot over all sinks, in per cent.
    pub fn worst_overshoot_percent(&self) -> f64 {
        self.sinks.iter().map(|s| s.overshoot_percent).fold(0.0, f64::max)
    }
}

/// Builds, simulates and measures a step-driven tree in one call.
///
/// One transient run covers every sink; if some sink has not crossed 50% by
/// the suggested horizon the run is retried with a longer one.
///
/// # Errors
///
/// Propagates construction/analysis errors, or [`CircuitError::Measurement`]
/// if some sink never crosses 50% even after extending the horizon.
pub fn measure_tree_delays(spec: &TreeSpec) -> Result<TreeDelayReport, CircuitError> {
    let net = spec.build()?;
    let mut stop = spec.suggested_stop_time();
    let mut last_error = None;
    for _ in 0..4 {
        let step = spec.suggested_timestep().min(stop / 2000.0);
        let options = TransientOptions::new(stop, step);
        let result = run_transient(&net.circuit, &options)?;
        match measure_sinks(&net, &result) {
            Ok(sinks) => return Ok(TreeDelayReport { sinks, backend: result.backend() }),
            Err(e) => {
                last_error = Some(e);
                stop *= 4.0;
            }
        }
    }
    Err(last_error.unwrap_or(CircuitError::Measurement {
        reason: "tree sinks never crossed 50% of the supply".to_owned(),
    }))
}

fn measure_sinks(
    net: &TreeNet,
    result: &crate::transient::TransientResult,
) -> Result<Vec<SinkMeasurement>, CircuitError> {
    let supply = net.spec().supply;
    let mut out = Vec::with_capacity(net.sinks.len());
    for sink in &net.sinks {
        let wave = result.node_voltage(sink.node);
        out.push(SinkMeasurement {
            branch: sink.branch,
            delay_50: wave.delay_50(supply)?,
            rise_time: wave.rise_time(supply)?,
            overshoot_percent: wave.overshoot_percent(supply),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladder::{measure_step_delay, LadderSpec};

    fn branch(parent: Option<usize>, scale: f64, sink_ff: f64) -> TreeBranch {
        TreeBranch {
            parent,
            total_resistance: Resistance::from_ohms(250.0 * scale),
            total_inductance: Inductance::from_nanohenries(5.0 * scale),
            total_capacitance: Capacitance::from_picofarads(0.5 * scale),
            segments: 10,
            sink_capacitance: Capacitance::from_femtofarads(sink_ff),
        }
    }

    /// Trunk + two symmetric leaves.
    fn y_tree() -> TreeSpec {
        let mut spec = TreeSpec::new(Resistance::from_ohms(250.0));
        spec.branches.push(branch(None, 1.0, 0.0));
        spec.branches.push(branch(Some(0), 0.5, 50.0));
        spec.branches.push(branch(Some(0), 0.5, 50.0));
        spec
    }

    #[test]
    fn build_wires_branches_to_their_parents() {
        let spec = y_tree();
        let net = spec.build().unwrap();
        assert_eq!(net.branch_ends.len(), 3);
        assert_eq!(net.sinks.len(), 2);
        assert!(net.sinks.iter().all(|s| s.branch != 0), "the trunk is not a sink");
        assert_eq!(net.spec(), &spec);
        // π style: per segment 1 R + 1 L + 2 C, plus source, driver R and two
        // sink capacitors.
        assert_eq!(net.circuit.elements().len(), 1 + 1 + spec.total_segments() * 4 + 2);
    }

    #[test]
    fn invalid_trees_are_rejected() {
        let empty = TreeSpec::new(Resistance::from_ohms(100.0));
        assert!(empty.build().is_err());

        let mut forward_parent = y_tree();
        forward_parent.branches[0].parent = Some(2);
        assert!(forward_parent.build().is_err());

        let mut bad_r = y_tree();
        bad_r.branches[1].total_resistance = Resistance::ZERO;
        assert!(bad_r.build().is_err());

        let mut bad_segments = y_tree();
        bad_segments.branches[2].segments = 0;
        assert!(bad_segments.build().is_err());

        let mut bad_sink = y_tree();
        bad_sink.branches[1].sink_capacitance = Capacitance::from_farads(f64::NAN);
        assert!(bad_sink.build().is_err());
    }

    #[test]
    fn paths_and_totals_follow_the_topology() {
        let spec = y_tree();
        assert_eq!(spec.path_from_root(2), vec![0, 2]);
        assert!(spec.is_leaf(1) && spec.is_leaf(2) && !spec.is_leaf(0));
        let (r, l, c) = spec.path_totals(1);
        assert!((r.ohms() - 375.0).abs() < 1e-9);
        assert!((l.henries() - 7.5e-9).abs() < 1e-20);
        assert!((c.farads() - 0.75e-12).abs() < 1e-24);
    }

    #[test]
    fn symmetric_sinks_see_identical_delay() {
        let report = measure_tree_delays(&y_tree()).unwrap();
        assert_eq!(report.sinks.len(), 2);
        let d1 = report.sinks[0].delay_50.seconds();
        let d2 = report.sinks[1].delay_50.seconds();
        assert!((d1 - d2).abs() < 1e-4 * d1.max(d2), "symmetric sinks must match: {d1} vs {d2}");
        assert!(report.sink_spread().seconds() < 1e-4 * d1);
        assert!(report.worst_sink().delay_50.seconds() > 0.0);
    }

    #[test]
    fn asymmetric_tree_reports_the_long_path_as_worst() {
        let mut spec = y_tree();
        // Make branch 2 four times longer: its sink must be the worst.
        spec.branches[2] = branch(Some(0), 2.0, 50.0);
        let report = measure_tree_delays(&spec).unwrap();
        assert_eq!(report.worst_sink().branch, 2);
        assert!(report.sink_spread().seconds() > 0.0);
        assert!(report.worst_overshoot_percent() >= 0.0);
    }

    #[test]
    fn single_branch_tree_matches_the_equivalent_ladder() {
        // A tree with one branch is exactly a ladder; the two builders must
        // produce the same 50% delay.
        let mut spec = TreeSpec::new(Resistance::from_ohms(250.0));
        spec.branches.push(TreeBranch {
            parent: None,
            total_resistance: Resistance::from_ohms(500.0),
            total_inductance: Inductance::from_nanohenries(10.0),
            total_capacitance: Capacitance::from_picofarads(1.0),
            segments: 40,
            sink_capacitance: Capacitance::from_picofarads(0.1),
        });
        let tree = measure_tree_delays(&spec).unwrap();

        let ladder = LadderSpec::new(
            Resistance::from_ohms(500.0),
            Inductance::from_nanohenries(10.0),
            Capacitance::from_picofarads(1.0),
            Resistance::from_ohms(250.0),
            Capacitance::from_picofarads(0.1),
        );
        let reference = measure_step_delay(&ladder).unwrap();

        let tree_delay = tree.worst_sink().delay_50.seconds();
        let ladder_delay = reference.delay_50.seconds();
        let err = (tree_delay - ladder_delay).abs() / ladder_delay;
        assert!(err < 0.02, "tree {tree_delay} vs ladder {ladder_delay}, err {err}");
    }

    #[test]
    fn wide_trees_resolve_to_the_sparse_backend() {
        // A flat 24-way fan-out: the MNA bandwidth blows past the banded
        // limit, so Auto must route to the sparse kernel.
        let mut spec = TreeSpec::new(Resistance::from_ohms(100.0));
        spec.branches.push(branch(None, 1.0, 0.0));
        for _ in 0..24 {
            spec.branches.push(branch(Some(0), 0.5, 20.0));
        }
        let report = measure_tree_delays(&spec).unwrap();
        assert_eq!(report.backend, ResolvedBackend::Sparse);
        assert_eq!(report.sinks.len(), 24);
    }
}
