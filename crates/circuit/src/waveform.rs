//! Sampled waveforms and timing measurements.
//!
//! Transient analysis produces node voltages sampled on a uniform time grid.
//! [`Waveform`] wraps those samples and provides the measurements the paper's
//! experiments need: 50% propagation delay, rise time, overshoot and final
//! value.

use rlckit_units::{Time, Voltage};

use crate::error::CircuitError;

/// A voltage waveform sampled at monotonically increasing times.
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl Waveform {
    /// Creates a waveform from raw samples (times in seconds, values in volts).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Measurement`] if the slices are empty, have
    /// different lengths, or the times are not strictly increasing.
    pub fn from_samples(times: Vec<f64>, values: Vec<f64>) -> Result<Self, CircuitError> {
        if times.is_empty() || times.len() != values.len() {
            return Err(CircuitError::Measurement {
                reason: format!(
                    "times and values must be non-empty and equal length (got {} and {})",
                    times.len(),
                    values.len()
                ),
            });
        }
        if times.windows(2).any(|w| w[1] <= w[0]) {
            return Err(CircuitError::Measurement {
                reason: "sample times must be strictly increasing".to_owned(),
            });
        }
        Ok(Self { times, values })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if the waveform has no samples (never true for a
    /// successfully constructed waveform).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample times in seconds.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values in volts.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value at an arbitrary time by linear interpolation.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Measurement`] if `t` lies outside the sampled range.
    pub fn value_at(&self, t: Time) -> Result<Voltage, CircuitError> {
        rlckit_numeric::interp::linear(&self.times, &self.values, t.seconds())
            .map(Voltage::from_volts)
            .map_err(|e| CircuitError::Measurement { reason: e.to_string() })
    }

    /// Value of the last sample.
    pub fn final_value(&self) -> Voltage {
        Voltage::from_volts(*self.values.last().expect("waveform is never empty"))
    }

    /// Largest sample value and the time at which it occurs.
    pub fn peak(&self) -> (Time, Voltage) {
        let (t, v) = rlckit_numeric::interp::peak(&self.times, &self.values)
            .expect("waveform is never empty");
        (Time::from_seconds(t), Voltage::from_volts(v))
    }

    /// Time of the first upward crossing of `level` volts.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Measurement`] if the waveform never crosses the level.
    pub fn first_crossing(&self, level: f64) -> Result<Time, CircuitError> {
        rlckit_numeric::interp::first_rising_crossing(&self.times, &self.values, level)
            .map(Time::from_seconds)
            .map_err(|e| CircuitError::Measurement { reason: e.to_string() })
    }

    /// Time of the last upward crossing of `level` volts (useful for ringing
    /// waveforms that cross the level several times).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Measurement`] if the waveform never crosses the level.
    pub fn last_crossing(&self, level: f64) -> Result<Time, CircuitError> {
        rlckit_numeric::interp::last_rising_crossing(&self.times, &self.values, level)
            .map(Time::from_seconds)
            .map_err(|e| CircuitError::Measurement { reason: e.to_string() })
    }

    /// 50% propagation delay relative to an input step at `t = 0`.
    ///
    /// This is the paper's delay definition: the time at which the output
    /// first reaches half of `swing` (the input step amplitude).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Measurement`] if the waveform never reaches 50%.
    pub fn delay_50(&self, swing: Voltage) -> Result<Time, CircuitError> {
        self.first_crossing(0.5 * swing.volts())
    }

    /// 10%–90% rise time of the waveform relative to `swing`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Measurement`] if either threshold is never reached.
    pub fn rise_time(&self, swing: Voltage) -> Result<Time, CircuitError> {
        let t10 = self.first_crossing(0.1 * swing.volts())?;
        let t90 = self.first_crossing(0.9 * swing.volts())?;
        Ok(t90 - t10)
    }

    /// Overshoot above the final steady-state value, in per cent of `swing`.
    ///
    /// Returns zero for monotone (overdamped) responses.
    pub fn overshoot_percent(&self, swing: Voltage) -> f64 {
        let (_, peak) = self.peak();
        let excess = peak.volts() - swing.volts();
        if excess <= 0.0 {
            0.0
        } else {
            excess / swing.volts() * 100.0
        }
    }

    /// Returns `true` if the waveform stays within `tolerance × swing` of the
    /// final value after time `t`.
    pub fn is_settled_after(&self, t: Time, swing: Voltage, tolerance: f64) -> bool {
        let target = swing.volts();
        let band = tolerance * target.abs();
        self.times
            .iter()
            .zip(self.values.iter())
            .filter(|(ti, _)| **ti >= t.seconds())
            .all(|(_, v)| (v - target).abs() <= band)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc_like() -> Waveform {
        // 1 - e^{-t} sampled on [0, 10].
        let times: Vec<f64> = (0..=1000).map(|i| i as f64 * 0.01).collect();
        let values: Vec<f64> = times.iter().map(|t| 1.0 - (-t).exp()).collect();
        Waveform::from_samples(times, values).unwrap()
    }

    fn ringing(zeta: f64) -> Waveform {
        // Underdamped second-order step response with damping ratio `zeta`.
        let wd = (1.0 - zeta * zeta).sqrt();
        let times: Vec<f64> = (0..=4000).map(|i| i as f64 * 0.005).collect();
        let values: Vec<f64> = times
            .iter()
            .map(|t| 1.0 - (-zeta * t).exp() * ((wd * t).cos() + zeta / wd * (wd * t).sin()))
            .collect();
        Waveform::from_samples(times, values).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(Waveform::from_samples(vec![], vec![]).is_err());
        assert!(Waveform::from_samples(vec![0.0, 1.0], vec![0.0]).is_err());
        assert!(Waveform::from_samples(vec![0.0, 0.0], vec![0.0, 1.0]).is_err());
        let w = Waveform::from_samples(vec![0.0, 1.0], vec![0.0, 1.0]).unwrap();
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        assert_eq!(w.times().len(), 2);
        assert_eq!(w.values().len(), 2);
    }

    #[test]
    fn interpolated_value() {
        let w = Waveform::from_samples(vec![0.0, 1.0], vec![0.0, 2.0]).unwrap();
        let v = w.value_at(Time::from_seconds(0.25)).unwrap();
        assert!((v.volts() - 0.5).abs() < 1e-12);
        assert!(w.value_at(Time::from_seconds(2.0)).is_err());
    }

    #[test]
    fn delay_of_rc_response() {
        let w = rc_like();
        // 50% crossing of 1 - e^{-t} is at t = ln 2.
        let d = w.delay_50(Voltage::from_volts(1.0)).unwrap();
        assert!((d.seconds() - std::f64::consts::LN_2).abs() < 1e-3);
        // Rise time 10% -> 90% is ln(0.9/0.1) = ln 9.
        let rt = w.rise_time(Voltage::from_volts(1.0)).unwrap();
        assert!((rt.seconds() - 9.0f64.ln()).abs() < 1e-3);
        assert_eq!(w.overshoot_percent(Voltage::from_volts(1.0)), 0.0);
        assert!((w.final_value().volts() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn ringing_overshoot_and_crossings() {
        // ζ = 0.05 rings hard enough to dip back below 50% after the first
        // overshoot, so the first and last 50% crossings differ.
        let w = ringing(0.05);
        let overshoot = w.overshoot_percent(Voltage::from_volts(1.0));
        // Theoretical overshoot is exp(-πζ/sqrt(1-ζ²)) ≈ 85.4%.
        assert!((overshoot - 85.45).abs() < 1.0, "overshoot = {overshoot}");
        let first = w.first_crossing(0.5).unwrap();
        let last = w.last_crossing(0.5).unwrap();
        assert!(first.seconds() < last.seconds());
        // For an underdamped response the first 50% crossing is earlier than
        // the RC-like response's ln 2 ... sanity check it is positive and small.
        assert!(first.seconds() > 0.0 && first.seconds() < 2.0);
    }

    #[test]
    fn settling_detection() {
        let w = ringing(0.2);
        assert!(!w.is_settled_after(Time::from_seconds(0.5), Voltage::from_volts(1.0), 0.02));
        assert!(w.is_settled_after(Time::from_seconds(18.0), Voltage::from_volts(1.0), 0.05));
    }

    #[test]
    fn missing_crossing_is_an_error() {
        let w = Waveform::from_samples(vec![0.0, 1.0], vec![0.0, 0.1]).unwrap();
        assert!(w.first_crossing(0.5).is_err());
        assert!(w.delay_50(Voltage::from_volts(1.0)).is_err());
        assert!(w.rise_time(Voltage::from_volts(1.0)).is_err());
    }

    #[test]
    fn peak_of_monotone_waveform_is_last_sample() {
        let w = rc_like();
        let (t, v) = w.peak();
        assert!((t.seconds() - 10.0).abs() < 1e-9);
        assert!((v.volts() - w.final_value().volts()).abs() < 1e-12);
    }
}
