//! Independent source waveforms.
//!
//! The paper drives its lines with "a fast rising signal that can be
//! approximated by a step signal"; the [`SourceWaveform::Step`] variant is the
//! workhorse, with ramp, pulse and piece-wise-linear shapes available for
//! studying finite rise times.

use rlckit_units::{Time, Voltage};

use crate::error::CircuitError;

/// Time-dependent value of an independent source.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceWaveform {
    /// A constant value for all time.
    Dc {
        /// The constant level.
        level: Voltage,
    },
    /// An ideal step: 0 before `delay`, `amplitude` afterwards.
    Step {
        /// Final level after the step.
        amplitude: Voltage,
        /// Time at which the step occurs.
        delay: Time,
    },
    /// A saturating ramp: 0 before `delay`, rising linearly to `amplitude`
    /// over `rise_time`, constant afterwards.
    Ramp {
        /// Final level after the ramp completes.
        amplitude: Voltage,
        /// Time at which the ramp starts.
        delay: Time,
        /// Duration of the linear rise.
        rise_time: Time,
    },
    /// A single trapezoidal pulse.
    Pulse {
        /// Level during the pulse.
        amplitude: Voltage,
        /// Time at which the leading edge starts.
        delay: Time,
        /// Leading/trailing edge duration.
        edge_time: Time,
        /// Time the pulse stays at `amplitude` between the edges.
        width: Time,
    },
    /// Piece-wise linear waveform through the given `(time, value)` points.
    ///
    /// Before the first point the value is the first point's value; after the
    /// last point it is the last point's value. Points must be sorted by time.
    PieceWiseLinear {
        /// Corner points of the waveform.
        points: Vec<(Time, Voltage)>,
    },
}

impl SourceWaveform {
    /// A unit step at `t = 0` — the canonical input of the paper.
    pub fn unit_step() -> Self {
        Self::Step { amplitude: Voltage::from_volts(1.0), delay: Time::ZERO }
    }

    /// Value of the waveform at time `t` (volts).
    pub fn value_at(&self, t: Time) -> Voltage {
        let ts = t.seconds();
        match self {
            Self::Dc { level } => *level,
            Self::Step { amplitude, delay } => {
                if ts > delay.seconds() {
                    *amplitude
                } else {
                    Voltage::ZERO
                }
            }
            Self::Ramp { amplitude, delay, rise_time } => {
                let t0 = delay.seconds();
                let tr = rise_time.seconds();
                if ts <= t0 {
                    Voltage::ZERO
                } else if tr <= 0.0 || ts >= t0 + tr {
                    *amplitude
                } else {
                    *amplitude * ((ts - t0) / tr)
                }
            }
            Self::Pulse { amplitude, delay, edge_time, width } => {
                let t0 = delay.seconds();
                let te = edge_time.seconds().max(0.0);
                let tw = width.seconds().max(0.0);
                if ts <= t0 {
                    Voltage::ZERO
                } else if ts < t0 + te {
                    if te > 0.0 {
                        *amplitude * ((ts - t0) / te)
                    } else {
                        *amplitude
                    }
                } else if ts <= t0 + te + tw {
                    *amplitude
                } else if ts < t0 + 2.0 * te + tw {
                    *amplitude * (1.0 - (ts - t0 - te - tw) / te)
                } else {
                    Voltage::ZERO
                }
            }
            Self::PieceWiseLinear { points } => {
                if points.is_empty() {
                    return Voltage::ZERO;
                }
                if ts <= points[0].0.seconds() {
                    return points[0].1;
                }
                if ts >= points[points.len() - 1].0.seconds() {
                    return points[points.len() - 1].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = (w[0].0.seconds(), w[0].1);
                    let (t1, v1) = (w[1].0.seconds(), w[1].1);
                    if ts >= t0 && ts <= t1 {
                        if t1 <= t0 {
                            return v1;
                        }
                        let frac = (ts - t0) / (t1 - t0);
                        return v0.lerp(v1, frac);
                    }
                }
                points[points.len() - 1].1
            }
        }
    }

    /// Validates that every level is finite, every duration is finite and
    /// non-negative, and piece-wise-linear corner times are finite and
    /// non-decreasing.
    ///
    /// Called by [`Circuit::add_voltage_source`](crate::Circuit::add_voltage_source)
    /// and [`Circuit::add_current_source`](crate::Circuit::add_current_source),
    /// so analyses never see NaN or infinite right-hand sides.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), CircuitError> {
        let finite = |v: f64, what: &'static str| -> Result<(), CircuitError> {
            if v.is_finite() {
                Ok(())
            } else {
                Err(CircuitError::InvalidValue { what, value: v })
            }
        };
        let duration = |v: f64, what: &'static str| -> Result<(), CircuitError> {
            if v.is_finite() && v >= 0.0 {
                Ok(())
            } else {
                Err(CircuitError::InvalidValue { what, value: v })
            }
        };
        match self {
            Self::Dc { level } => finite(level.volts(), "source DC level"),
            Self::Step { amplitude, delay } => {
                finite(amplitude.volts(), "source step amplitude")?;
                finite(delay.seconds(), "source step delay")
            }
            Self::Ramp { amplitude, delay, rise_time } => {
                finite(amplitude.volts(), "source ramp amplitude")?;
                finite(delay.seconds(), "source ramp delay")?;
                duration(rise_time.seconds(), "source ramp rise time")
            }
            Self::Pulse { amplitude, delay, edge_time, width } => {
                finite(amplitude.volts(), "source pulse amplitude")?;
                finite(delay.seconds(), "source pulse delay")?;
                duration(edge_time.seconds(), "source pulse edge time")?;
                duration(width.seconds(), "source pulse width")
            }
            Self::PieceWiseLinear { points } => {
                for (t, v) in points {
                    finite(t.seconds(), "source PWL corner time")?;
                    finite(v.volts(), "source PWL corner value")?;
                }
                if let Some(w) = points.windows(2).find(|w| w[1].0.seconds() < w[0].0.seconds()) {
                    return Err(CircuitError::InvalidValue {
                        what: "source PWL corner times (must be non-decreasing)",
                        value: w[1].0.seconds(),
                    });
                }
                Ok(())
            }
        }
    }

    /// Final (t → ∞) value of the waveform.
    pub fn final_value(&self) -> Voltage {
        match self {
            Self::Dc { level } => *level,
            Self::Step { amplitude, .. } | Self::Ramp { amplitude, .. } => *amplitude,
            Self::Pulse { .. } => Voltage::ZERO,
            Self::PieceWiseLinear { points } => {
                points.last().map(|(_, v)| *v).unwrap_or(Voltage::ZERO)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ns: f64) -> Time {
        Time::from_nanoseconds(ns)
    }

    #[test]
    fn dc_is_constant() {
        let w = SourceWaveform::Dc { level: Voltage::from_volts(2.5) };
        assert_eq!(w.value_at(at(0.0)).volts(), 2.5);
        assert_eq!(w.value_at(at(100.0)).volts(), 2.5);
        assert_eq!(w.final_value().volts(), 2.5);
    }

    #[test]
    fn step_switches_after_delay() {
        let w = SourceWaveform::Step { amplitude: Voltage::from_volts(1.0), delay: at(1.0) };
        assert_eq!(w.value_at(at(0.5)).volts(), 0.0);
        assert_eq!(w.value_at(at(1.0)).volts(), 0.0);
        assert_eq!(w.value_at(at(1.001)).volts(), 1.0);
        assert_eq!(w.final_value().volts(), 1.0);
        let unit = SourceWaveform::unit_step();
        assert_eq!(unit.value_at(Time::from_picoseconds(1.0)).volts(), 1.0);
        assert_eq!(unit.value_at(Time::ZERO).volts(), 0.0);
    }

    #[test]
    fn ramp_rises_linearly() {
        let w = SourceWaveform::Ramp {
            amplitude: Voltage::from_volts(2.0),
            delay: at(1.0),
            rise_time: at(2.0),
        };
        assert_eq!(w.value_at(at(1.0)).volts(), 0.0);
        assert!((w.value_at(at(2.0)).volts() - 1.0).abs() < 1e-12);
        assert_eq!(w.value_at(at(3.0)).volts(), 2.0);
        assert_eq!(w.value_at(at(10.0)).volts(), 2.0);
    }

    #[test]
    fn ramp_with_zero_rise_time_is_a_step() {
        let w = SourceWaveform::Ramp {
            amplitude: Voltage::from_volts(1.0),
            delay: Time::ZERO,
            rise_time: Time::ZERO,
        };
        assert_eq!(w.value_at(at(0.001)).volts(), 1.0);
    }

    #[test]
    fn pulse_shape() {
        let w = SourceWaveform::Pulse {
            amplitude: Voltage::from_volts(1.0),
            delay: at(1.0),
            edge_time: at(1.0),
            width: at(2.0),
        };
        assert_eq!(w.value_at(at(0.5)).volts(), 0.0);
        assert!((w.value_at(at(1.5)).volts() - 0.5).abs() < 1e-12);
        assert_eq!(w.value_at(at(3.0)).volts(), 1.0);
        assert!((w.value_at(at(4.5)).volts() - 0.5).abs() < 1e-12);
        assert_eq!(w.value_at(at(6.0)).volts(), 0.0);
        assert_eq!(w.final_value().volts(), 0.0);
    }

    #[test]
    fn piecewise_linear_interpolates_and_clamps() {
        let w = SourceWaveform::PieceWiseLinear {
            points: vec![
                (at(1.0), Voltage::from_volts(0.0)),
                (at(2.0), Voltage::from_volts(1.0)),
                (at(4.0), Voltage::from_volts(0.5)),
            ],
        };
        assert_eq!(w.value_at(at(0.0)).volts(), 0.0);
        assert!((w.value_at(at(1.5)).volts() - 0.5).abs() < 1e-12);
        assert!((w.value_at(at(3.0)).volts() - 0.75).abs() < 1e-12);
        assert_eq!(w.value_at(at(5.0)).volts(), 0.5);
        assert_eq!(w.final_value().volts(), 0.5);
    }

    #[test]
    fn empty_piecewise_linear_is_zero() {
        let w = SourceWaveform::PieceWiseLinear { points: vec![] };
        assert_eq!(w.value_at(at(1.0)).volts(), 0.0);
        assert_eq!(w.final_value().volts(), 0.0);
    }
}
