//! The circuit-side face of the pluggable solver backend.
//!
//! [`FactoredMna`] couples a backend-erased factorisation
//! ([`FactoredSolver`]) with whatever unknown relabelling it was assembled
//! under, so analyses can keep thinking in logical (node/branch) order:
//! right-hand sides go in logical, solutions come out logical, and the
//! permutation bookkeeping stays here.
//!
//! The backend decides the assembly route. Dense and banded kernels factor
//! the band-assembled matrix under the bandwidth-reducing Cuthill–McKee
//! relabelling; the sparse kernel factors a compressed-sparse-column assembly
//! in logical order and applies its own fill-reducing (minimum-degree)
//! ordering internally, reusing the [`MnaSystem`]'s lazily computed symbolic
//! phase across every factorisation of the same circuit — DC initial
//! condition, transient stepping matrix and each AC frequency point.
//!
//! DC, AC and transient analysis all factor through this type.

use rlckit_numeric::banded::BandedMatrix;
use rlckit_numeric::matrix::Scalar;
use rlckit_numeric::ordering::{gather, scatter};
use rlckit_numeric::solver::{FactoredSolver, ResolvedBackend, SolverBackend};
use rlckit_numeric::sparse::SparseLuFactor;

use crate::error::CircuitError;
use crate::mna::MnaSystem;

/// A factorised MNA system matrix plus the unknown relabelling it was
/// assembled under.
#[derive(Debug, Clone)]
pub struct FactoredMna<T: Scalar = f64> {
    solver: FactoredSolver<T>,
    /// Packing permutation of the assembled rows, or `None` when the solver
    /// operates directly in logical order (the sparse path).
    perm: Option<Vec<usize>>,
}

impl<T: Scalar> FactoredMna<T> {
    /// Factorises a band-assembled system matrix.
    ///
    /// `a` must come from the same [`MnaSystem`]'s `assemble_real` /
    /// `assemble_complex`, so that its rows follow `mna.permutation()`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::SingularSystem`] tagged with `stage` if the
    /// matrix cannot be factorised.
    pub fn factor(
        mna: &MnaSystem,
        a: &BandedMatrix<T>,
        backend: SolverBackend,
        stage: &'static str,
    ) -> Result<Self, CircuitError> {
        let solver = FactoredSolver::factor(a, backend)
            .map_err(|_| CircuitError::SingularSystem { stage })?;
        Ok(Self { solver, perm: Some(mna.permutation().to_vec()) })
    }

    /// Solves `A·x = b` with both `b` and the returned `x` in logical
    /// (node/branch) order.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not equal the system dimension.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        match &self.perm {
            Some(perm) => {
                let packed = scatter(perm, b);
                let solution = self.solver.solve(&packed);
                gather(perm, &solution)
            }
            None => self.solver.solve(b),
        }
    }

    /// Solves `A·X = B` for many right-hand sides with the one stored
    /// factorisation, everything in logical order.
    ///
    /// One blocked substitution pass instead of a solve per column — the
    /// multi-port/multi-excitation path (MIMO transfer matrices, sweep
    /// cells, AC ports) on every backend.
    ///
    /// # Panics
    ///
    /// Panics if any right-hand side's length differs from the dimension.
    pub fn solve_many(&self, rhs: &[Vec<T>]) -> Vec<Vec<T>> {
        match &self.perm {
            Some(perm) => {
                let packed: Vec<Vec<T>> = rhs.iter().map(|b| scatter(perm, b)).collect();
                self.solver.solve_many(&packed).iter().map(|x| gather(perm, x)).collect()
            }
            None => self.solver.solve_many(rhs),
        }
    }

    /// The kernel the backend dispatch selected (dense, banded or sparse).
    pub fn backend(&self) -> ResolvedBackend {
        self.solver.backend()
    }

    /// Access to the underlying backend-erased solver (packed order for the
    /// dense/banded paths, logical order for the sparse path).
    pub fn packed_solver(&self) -> &FactoredSolver<T> {
        &self.solver
    }
}

impl FactoredMna<f64> {
    /// Re-derives the factors for new scalars `(gs, cs)` of the same system,
    /// warm where the kernel allows it.
    ///
    /// On the sparse path this is a value-only refactorisation: the
    /// scatter-map assembly rewrites the values of the shared union pattern
    /// in place and [`FactoredSolver::refactor_csc`] reuses the frozen pivot
    /// sequence and fill pattern — no symbolic work, no pivot search, no
    /// factor-storage allocation. Dense and banded kernels factor afresh
    /// (they have no symbolic phase to reuse) but stay on their kernel.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::SingularSystem`] tagged with `stage` if the
    /// new matrix cannot be factorised; the previous factors are lost.
    pub fn refactor_real(
        &mut self,
        mna: &MnaSystem,
        gs: f64,
        cs: f64,
        stage: &'static str,
    ) -> Result<(), CircuitError> {
        if self.perm.is_none() && self.solver.backend() == ResolvedBackend::Sparse {
            let a = mna.assemble_csc_real(gs, cs);
            return self
                .solver
                .refactor_csc(&a)
                .map_err(|_| CircuitError::SingularSystem { stage });
        }
        let a = mna.assemble_real(gs, cs);
        *self = FactoredMna::factor(mna, &a, force_backend(self.solver.backend()), stage)?;
        Ok(())
    }
}

impl FactoredMna<rlckit_numeric::complex::Complex> {
    /// Re-derives the factors for a new complex frequency `s` of the same
    /// system — the per-frequency step of an AC sweep — warm where the
    /// kernel allows it, exactly like [`FactoredMna::refactor_real`].
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::SingularSystem`] tagged with `stage` if the
    /// new matrix cannot be factorised; the previous factors are lost.
    pub fn refactor_complex(
        &mut self,
        mna: &MnaSystem,
        s: rlckit_numeric::complex::Complex,
        stage: &'static str,
    ) -> Result<(), CircuitError> {
        if self.perm.is_none() && self.solver.backend() == ResolvedBackend::Sparse {
            let a = mna.assemble_csc_complex(s);
            return self
                .solver
                .refactor_csc(&a)
                .map_err(|_| CircuitError::SingularSystem { stage });
        }
        let a = mna.assemble_complex(s);
        *self = FactoredMna::factor(mna, &a, force_backend(self.solver.backend()), stage)?;
        Ok(())
    }
}

/// Pins an already-resolved kernel as an explicit backend request, so a
/// refactorisation can never hop kernels mid-analysis.
fn force_backend(resolved: ResolvedBackend) -> SolverBackend {
    match resolved {
        ResolvedBackend::Dense => SolverBackend::Dense,
        ResolvedBackend::Banded => SolverBackend::Banded,
        ResolvedBackend::Sparse => SolverBackend::Sparse,
    }
}

/// Resolves the effective kernel for a system before any assembly happens,
/// so the sparse path never materialises band storage (which would be
/// `O(n·bandwidth)` — quadratic on tree-shaped circuits).
pub(crate) fn resolve_backend(mna: &MnaSystem, backend: SolverBackend) -> ResolvedBackend {
    let (kl, ku) = mna.bandwidth();
    backend.resolve(mna.dim(), kl, ku)
}

/// Factorises `gs·G + cs·C` of a system with the requested backend.
///
/// Convenience wrapper used by the DC and transient analyses. The backend is
/// resolved *before* assembly: the sparse kernel receives a
/// compressed-sparse-column matrix in logical order (reusing the system's
/// symbolic phase), the dense/banded kernels the band assembly under the
/// bandwidth-reducing relabelling.
///
/// # Errors
///
/// Returns [`CircuitError::SingularSystem`] tagged with `stage` if the matrix
/// cannot be factorised.
pub fn factor_real(
    mna: &MnaSystem,
    gs: f64,
    cs: f64,
    backend: SolverBackend,
    stage: &'static str,
) -> Result<FactoredMna<f64>, CircuitError> {
    let factored = if resolve_backend(mna, backend) == ResolvedBackend::Sparse {
        let a = mna.assemble_csc_real(gs, cs);
        // When the process-global pattern cache is active (it is disabled by
        // default), this both consults and seeds it; otherwise it is exactly
        // a fresh `SparseLuFactor::factor` against the shared symbolic.
        let factor = crate::pattern_cache::factor_real(&a, mna.sparse_symbolic())
            .map_err(|_| CircuitError::SingularSystem { stage })?;
        FactoredMna { solver: FactoredSolver::from_sparse_with_matrix(factor, &a), perm: None }
    } else {
        let a = mna.assemble_real(gs, cs);
        FactoredMna::factor(mna, &a, backend, stage)?
    };
    if rlckit_telemetry::enabled() {
        // One condition estimate per factorisation (a handful of extra
        // solves against the factors we just built) feeds the health report.
        factored.packed_solver().condest_health();
    }
    Ok(factored)
}

/// Factorises the complex system `G + s·C` with the requested backend,
/// routing assembly exactly like [`factor_real`].
///
/// # Errors
///
/// Returns [`CircuitError::SingularSystem`] tagged with `stage` if the matrix
/// cannot be factorised.
pub fn factor_complex(
    mna: &MnaSystem,
    s: rlckit_numeric::complex::Complex,
    backend: SolverBackend,
    stage: &'static str,
) -> Result<FactoredMna<rlckit_numeric::complex::Complex>, CircuitError> {
    if resolve_backend(mna, backend) == ResolvedBackend::Sparse {
        let a = mna.assemble_csc_complex(s);
        let factor = SparseLuFactor::factor(&a, mna.sparse_symbolic())
            .map_err(|_| CircuitError::SingularSystem { stage })?;
        return Ok(FactoredMna {
            solver: FactoredSolver::from_sparse_with_matrix(factor, &a),
            perm: None,
        });
    }
    let a = mna.assemble_complex(s);
    FactoredMna::factor(mna, &a, backend, stage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Circuit;
    use crate::source::SourceWaveform;
    use rlckit_numeric::complex::Complex;
    use rlckit_units::{Capacitance, Inductance, Resistance, Time};

    /// A little RLC chain with enough unknowns for the banded path to engage.
    fn chain(segments: usize) -> Circuit {
        let mut c = Circuit::new();
        let gnd = c.ground();
        let input = c.add_node();
        c.add_voltage_source(input, gnd, SourceWaveform::unit_step()).unwrap();
        let mut prev = input;
        for _ in 0..segments {
            let mid = c.add_node();
            let next = c.add_node();
            c.add_resistor(prev, mid, Resistance::from_ohms(10.0)).unwrap();
            c.add_inductor(mid, next, Inductance::from_picohenries(50.0)).unwrap();
            c.add_capacitor(next, gnd, Capacitance::from_femtofarads(20.0)).unwrap();
            prev = next;
        }
        c
    }

    #[test]
    fn dense_and_banded_backends_agree_on_dc() {
        let circuit = chain(30);
        let mna = MnaSystem::build(&circuit).unwrap();
        let mut b = vec![0.0; mna.dim()];
        mna.rhs_at(Time::from_picoseconds(1.0), &mut b);

        let dense = factor_real(&mna, 1.0, 0.0, SolverBackend::Dense, "test").unwrap();
        let banded = factor_real(&mna, 1.0, 0.0, SolverBackend::Banded, "test").unwrap();
        assert_eq!(dense.backend(), ResolvedBackend::Dense);
        assert_eq!(banded.backend(), ResolvedBackend::Banded);

        let xd = dense.solve(&b);
        let xb = banded.solve(&b);
        for (d, bd) in xd.iter().zip(xb.iter()) {
            assert!((d - bd).abs() < 1e-9, "dense {d} vs banded {bd}");
        }
    }

    #[test]
    fn auto_uses_banded_for_ladders() {
        let circuit = chain(30);
        let mna = MnaSystem::build(&circuit).unwrap();
        let auto = factor_real(&mna, 1.0, 1e12, SolverBackend::Auto, "test").unwrap();
        assert_eq!(auto.backend(), ResolvedBackend::Banded);
        assert_eq!(auto.packed_solver().dim(), mna.dim());
    }

    #[test]
    fn complex_factorisation_dispatches_too() {
        let circuit = chain(20);
        let mna = MnaSystem::build(&circuit).unwrap();
        let s = Complex::new(0.0, 1e10);
        let a = mna.assemble_complex(s);
        let banded = FactoredMna::factor(&mna, &a, SolverBackend::Banded, "test").unwrap();
        let dense = FactoredMna::factor(&mna, &a, SolverBackend::Dense, "test").unwrap();
        let b = mna.unit_excitation(crate::netlist::SourceId(0)).unwrap();
        let xb = banded.solve(&b);
        let xd = dense.solve(&b);
        for (u, v) in xb.iter().zip(xd.iter()) {
            assert!((*u - *v).abs() < 1e-9);
        }
    }

    #[test]
    fn singular_system_reports_the_stage() {
        // A lone capacitor has a singular G-only system? No — GMIN saves it.
        // Instead factor 0·G + 0·C, which is exactly singular.
        let circuit = chain(2);
        let mna = MnaSystem::build(&circuit).unwrap();
        let err = factor_real(&mna, 0.0, 0.0, SolverBackend::Auto, "unit test").unwrap_err();
        assert!(matches!(err, CircuitError::SingularSystem { stage: "unit test" }));
    }

    #[test]
    fn sparse_backend_agrees_with_banded_on_dc_and_complex() {
        let circuit = chain(25);
        let mna = MnaSystem::build(&circuit).unwrap();
        let mut b = vec![0.0; mna.dim()];
        mna.rhs_at(Time::from_picoseconds(1.0), &mut b);

        let sparse = factor_real(&mna, 1.0, 0.0, SolverBackend::Sparse, "test").unwrap();
        let banded = factor_real(&mna, 1.0, 0.0, SolverBackend::Banded, "test").unwrap();
        assert_eq!(sparse.backend(), ResolvedBackend::Sparse);
        assert_eq!(sparse.packed_solver().dim(), mna.dim());
        let xs = sparse.solve(&b);
        let xb = banded.solve(&b);
        for (s, bd) in xs.iter().zip(xb.iter()) {
            assert!((s - bd).abs() < 1e-9, "sparse {s} vs banded {bd}");
        }

        let s = Complex::new(0.0, 2e10);
        let sparse_c = factor_complex(&mna, s, SolverBackend::Sparse, "test").unwrap();
        let banded_c = factor_complex(&mna, s, SolverBackend::Banded, "test").unwrap();
        let bc = mna.unit_excitation(crate::netlist::SourceId(0)).unwrap();
        for (u, v) in sparse_c.solve(&bc).iter().zip(banded_c.solve(&bc).iter()) {
            assert!((*u - *v).abs() < 1e-9);
        }
    }

    #[test]
    fn solve_many_matches_solve_on_every_backend() {
        let circuit = chain(25);
        let mna = MnaSystem::build(&circuit).unwrap();
        let rhs: Vec<Vec<f64>> = (0..3)
            .map(|k| (0..mna.dim()).map(|i| ((i + 7 * k) as f64 * 0.11).sin()).collect())
            .collect();
        for backend in [SolverBackend::Dense, SolverBackend::Banded, SolverBackend::Sparse] {
            let f = factor_real(&mna, 1.0, 1e12, backend, "test").unwrap();
            let many = f.solve_many(&rhs);
            for (b, x) in rhs.iter().zip(many.iter()) {
                let one = f.solve(b);
                for (m, o) in x.iter().zip(one.iter()) {
                    assert!((m - o).abs() < 1e-12, "{backend:?}: solve_many {m} vs solve {o}");
                }
            }
        }
    }

    #[test]
    fn refactor_tracks_new_scalars_on_every_backend() {
        let circuit = chain(25);
        let mna = MnaSystem::build(&circuit).unwrap();
        let mut b = vec![0.0; mna.dim()];
        mna.rhs_at(Time::from_picoseconds(1.0), &mut b);
        for backend in [SolverBackend::Dense, SolverBackend::Banded, SolverBackend::Sparse] {
            let mut f = factor_real(&mna, 1.0, 0.0, backend, "test").unwrap();
            let kernel = f.backend();
            f.refactor_real(&mna, 1.0, 1e12, "test").unwrap();
            assert_eq!(f.backend(), kernel, "refactor must stay on its kernel");
            let warm = f.solve(&b);
            let fresh = factor_real(&mna, 1.0, 1e12, backend, "test").unwrap().solve(&b);
            for (w, fr) in warm.iter().zip(fresh.iter()) {
                assert!((w - fr).abs() < 1e-12, "{backend:?}: refactor {w} vs fresh {fr}");
            }
        }
    }

    #[test]
    fn refactor_complex_tracks_new_frequency() {
        let circuit = chain(25);
        let mna = MnaSystem::build(&circuit).unwrap();
        let bc = mna.unit_excitation(crate::netlist::SourceId(0)).unwrap();
        for backend in [SolverBackend::Dense, SolverBackend::Banded, SolverBackend::Sparse] {
            let mut f = factor_complex(&mna, Complex::new(0.0, 1e9), backend, "test").unwrap();
            let s2 = Complex::new(0.0, 3e10);
            f.refactor_complex(&mna, s2, "test").unwrap();
            let warm = f.solve(&bc);
            let fresh = factor_complex(&mna, s2, backend, "test").unwrap().solve(&bc);
            for (w, fr) in warm.iter().zip(fresh.iter()) {
                assert!((*w - *fr).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn refactor_reports_singular_with_the_stage() {
        let circuit = chain(4);
        let mna = MnaSystem::build(&circuit).unwrap();
        let mut f = factor_real(&mna, 1.0, 0.0, SolverBackend::Sparse, "test").unwrap();
        let err = f.refactor_real(&mna, 0.0, 0.0, "warm stage").unwrap_err();
        assert!(matches!(err, CircuitError::SingularSystem { stage: "warm stage" }));
    }

    #[test]
    fn sparse_backend_reports_singular_systems_like_the_others() {
        let circuit = chain(3);
        let mna = MnaSystem::build(&circuit).unwrap();
        for backend in [SolverBackend::Dense, SolverBackend::Banded, SolverBackend::Sparse] {
            let err = factor_real(&mna, 0.0, 0.0, backend, "parity").unwrap_err();
            assert!(
                matches!(err, CircuitError::SingularSystem { stage: "parity" }),
                "backend {backend:?} must reject the zero matrix"
            );
        }
    }
}
