//! Error type for sweep construction, execution and persistence.

use std::fmt;

/// Errors produced while building, executing or persisting a sweep.
#[derive(Debug)]
pub enum SweepError {
    /// The sweep specification is malformed (empty axis, mismatched zip
    /// lengths, zero cells, …).
    Spec {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An evaluator failed on one scenario.
    Evaluation {
        /// Human-readable description of the model/simulation failure.
        reason: String,
    },
    /// A cache or sink file could not be read or written.
    Io(std::io::Error),
    /// A cache file exists but is not in the expected format.
    CacheFormat {
        /// What was wrong with the file.
        reason: String,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Spec { reason } => write!(f, "invalid sweep specification: {reason}"),
            Self::Evaluation { reason } => write!(f, "scenario evaluation failed: {reason}"),
            Self::Io(e) => write!(f, "sweep I/O error: {e}"),
            Self::CacheFormat { reason } => write!(f, "malformed sweep cache: {reason}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SweepError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

macro_rules! from_model_error {
    ($($ty:ty),+ $(,)?) => {
        $(impl From<$ty> for SweepError {
            fn from(e: $ty) -> Self {
                Self::Evaluation { reason: e.to_string() }
            }
        })+
    };
}

from_model_error!(
    rlckit_circuit::CircuitError,
    rlckit_core::CoreError,
    rlckit_coupling::CouplingError,
    rlckit_interconnect::error::InterconnectError,
    rlckit_reduce::ReduceError,
    rlckit_repeater::RepeaterError,
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let spec = SweepError::Spec { reason: "empty axis".into() };
        assert!(spec.to_string().contains("empty axis"));
        let eval = SweepError::Evaluation { reason: "no crossing".into() };
        assert!(eval.to_string().contains("no crossing"));
        let io = SweepError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().contains("gone"));
        assert!(std::error::Error::source(&io).is_some());
        let fmt = SweepError::CacheFormat { reason: "bad header".into() };
        assert!(fmt.to_string().contains("bad header"));
        assert!(std::error::Error::source(&fmt).is_none());
    }
}
