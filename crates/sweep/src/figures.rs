//! Paper-figure reproduction pipeline: the sweeps behind the committed
//! `figures/FIG_*.csv` artifacts.
//!
//! Each builder returns a [`SweepResult`] for one paper-style dataset:
//!
//! 1. [`delay_error_surface`] — the RC models' delay error against the
//!    paper's Eq. (9) over a line-length × driver-strength grid (the Table 1 /
//!    Figure 2 story: RC-only estimates drift badly as inductance matters);
//! 2. [`repeater_optimum_vs_inductance`] — the optimal repeater count `k` and
//!    size `h` (RC vs RLC closed forms) as the per-unit-length inductance
//!    grows (the Figure 4 / Table 2 story: inductance wants fewer, smaller
//!    repeaters) plus the delay/area/energy penalties of ignoring it;
//! 3. [`bus_worst_case_pushout`] — worst-case-switching delay push-out and
//!    victim noise on a coupled bus as the pitch tightens, with and without
//!    grounded shields (the PR 2 crosstalk extension).
//!
//! The grids are deliberately **smoke-sized**: every dataset regenerates in
//! seconds in release mode, so CI can re-run the whole pipeline and fail on
//! any drift between the code and the committed CSVs. Pass more cells through
//! your own [`SweepSpec`] when you need plot-quality resolution.

use std::path::Path;

use crate::error::SweepError;
use crate::eval::{
    BusCrosstalkEvaluator, DelayModelEvaluator, ReducedDelayEvaluator, RepeaterOptimumEvaluator,
    TreeDelayEvaluator,
};
use crate::exec::{run_sweep, SweepOptions, SweepResult};
use crate::scenario::{Param, Scenario, TechnologyNode};
use crate::sink::CsvSink;
use crate::spec::{Axis, SweepSpec};

/// Metadata of one figure dataset: its artifact file and what it shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Figure {
    /// Stable dataset name.
    pub name: &'static str,
    /// Artifact file name under `figures/`.
    pub file: &'static str,
    /// One-line description of what the dataset reproduces.
    pub description: &'static str,
}

/// The committed figure datasets, in pipeline order.
pub const FIGURES: [Figure; 5] = [
    Figure {
        name: "delay_error_surface",
        file: "FIG_delay_error_surface.csv",
        description: "RC-model delay error vs Eq. (9) over line length x driver strength",
    },
    Figure {
        name: "repeater_optimum_vs_inductance",
        file: "FIG_repeater_optimum_vs_inductance.csv",
        description: "optimal repeater (h, k) and RC-design penalties vs inductance per length",
    },
    Figure {
        name: "bus_worst_case_pushout",
        file: "FIG_bus_worst_case_pushout.csv",
        description: "coupled-bus worst-case delay push-out vs pitch, with and without shields",
    },
    Figure {
        name: "mor_accuracy_vs_order",
        file: "FIG_mor_accuracy_vs_order.csv",
        description: "reduced-order delay/overshoot error vs Krylov order, against the transient",
    },
    Figure {
        name: "tree_worst_sink_delay",
        file: "FIG_tree_worst_sink_delay.csv",
        description: "worst-sink delay and RC-design penalty of a branching net vs fan-out and L",
    },
];

/// The sweep behind `FIG_delay_error_surface.csv`: Eq. (9) against the RC
/// baselines on the 0.25 µm global wire, over length × driver size.
pub fn delay_error_surface_spec() -> SweepSpec {
    SweepSpec::new(Scenario::default())
        .axis(Axis::new("length_mm", [2.0, 5.0, 10.0, 20.0, 30.0, 50.0].map(Param::LineLengthMm)))
        .axis(Axis::new("h", [10.0, 25.0, 50.0, 100.0, 200.0].map(Param::DriverSize)))
}

/// Builds the delay-error-surface dataset.
///
/// # Errors
///
/// Propagates sweep/spec errors; the evaluator itself cannot fail on this grid.
pub fn delay_error_surface(options: &SweepOptions) -> Result<SweepResult, SweepError> {
    run_sweep(&delay_error_surface_spec(), &DelayModelEvaluator, options)
}

/// The sweep behind `FIG_repeater_optimum_vs_inductance.csv`: a fixed 30 mm
/// wire whose per-unit-length inductance sweeps from negligible to strongly
/// inductive (the paper's `T_{L/R}` knob).
pub fn repeater_optimum_vs_inductance_spec() -> SweepSpec {
    let base = Scenario { line_length_mm: 30.0, ..Scenario::default() };
    SweepSpec::new(base).axis(Axis::new(
        "l_nh_per_mm",
        [0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0, 1.5, 2.0].map(Param::InductanceNhPerMm),
    ))
}

/// Builds the repeater-optimum-vs-inductance dataset.
///
/// # Errors
///
/// Propagates sweep/spec errors; the evaluator itself cannot fail on this grid.
pub fn repeater_optimum_vs_inductance(options: &SweepOptions) -> Result<SweepResult, SweepError> {
    run_sweep(&repeater_optimum_vs_inductance_spec(), &RepeaterOptimumEvaluator, options)
}

/// The sweep behind `FIG_bus_worst_case_pushout.csv`: a 3-wire 0.18 µm bus
/// whose pitch tightens along a **zipped** axis (coupling capacitance and
/// inductive coupling grow together, as they do physically), crossed with
/// shield insertion.
pub fn bus_worst_case_pushout_spec() -> SweepSpec {
    let base = Scenario {
        technology: TechnologyNode::N180,
        line_length_mm: 3.0,
        driver_size: 40.0,
        bus_lines: 3,
        ladder_sections: 8,
        ..Scenario::default()
    };
    let pitch = Axis::zipped(
        "pitch",
        ["wide", "nominal", "tight", "minimum"].map(str::to_owned),
        [
            vec![Param::CouplingCapFfPerUm(0.04), Param::InductiveCoupling(0.2)],
            vec![Param::CouplingCapFfPerUm(0.08), Param::InductiveCoupling(0.3)],
            vec![Param::CouplingCapFfPerUm(0.12), Param::InductiveCoupling(0.4)],
            vec![Param::CouplingCapFfPerUm(0.16), Param::InductiveCoupling(0.5)],
        ],
    )
    .expect("static pitch axis is well-formed");
    SweepSpec::new(base).axis(pitch).axis(Axis::new("shielded", [false, true].map(Param::Shielded)))
}

/// Builds the bus worst-case push-out dataset (transient simulations; the
/// slowest of the three figures, still seconds in release mode).
///
/// # Errors
///
/// Propagates sweep/spec errors and the first simulation failure, if any.
pub fn bus_worst_case_pushout(options: &SweepOptions) -> Result<SweepResult, SweepError> {
    let result = run_sweep(&bus_worst_case_pushout_spec(), &BusCrosstalkEvaluator, options)?;
    if let Some((index, error)) = result.first_error() {
        return Err(SweepError::Evaluation {
            reason: format!("bus figure cell {index} failed: {error}"),
        });
    }
    Ok(result)
}

/// The sweep behind `FIG_mor_accuracy_vs_order.csv`: the PRIMA reduction of
/// the paper's driven line at growing Krylov order `q`, each cell comparing
/// the closed-form reduced `delay_50`/overshoot against the full transient
/// of the same ladder (the accuracy half of the MOR story; `BENCH_mor.json`
/// is the speed half).
pub fn mor_accuracy_vs_order_spec() -> SweepSpec {
    // The paper's Fig. 1 line (R = 500 Ω, L = 10 nH, C = 1 pF over 10 mm)
    // via explicit overrides: a representative RLC regime where the MOR
    // error-vs-order story is clean. Nearly lossless tech wires are wave-
    // dominated and converge slowly in `q` — a separate (documented) story.
    let base = Scenario {
        resistance_ohm_per_mm: Some(50.0),
        inductance_nh_per_mm: Some(1.0),
        capacitance_ff_per_um: Some(0.1),
        ladder_sections: 24,
        ..Scenario::default()
    };
    // q starts at 2 — the paper's own two-pole order. An order-1 congruence
    // projection of an RLC pencil is degenerate (the lone basis vector can
    // make vᵀG'v ≈ 0, a spurious near-zero pole), so it carries no signal.
    SweepSpec::new(base).axis(Axis::new("q", [2usize, 3, 4, 6, 8, 10].map(Param::ReductionOrder)))
}

/// Builds the MOR accuracy-vs-order dataset (one transient reference per
/// cell; seconds in release mode).
///
/// # Errors
///
/// Propagates sweep/spec errors and the first reduction or simulation
/// failure, if any.
pub fn mor_accuracy_vs_order(options: &SweepOptions) -> Result<SweepResult, SweepError> {
    let result = run_sweep(&mor_accuracy_vs_order_spec(), &ReducedDelayEvaluator, options)?;
    if let Some((index, error)) = result.first_error() {
        return Err(SweepError::Evaluation {
            reason: format!("MOR figure cell {index} failed: {error}"),
        });
    }
    Ok(result)
}

/// The sweep behind `FIG_tree_worst_sink_delay.csv`: symmetric 3-level
/// routing trees whose root-to-sink paths are the paper's Fig. 1 regime over
/// 10 mm, across fan-out (1 = the uniform-line baseline) and per-unit-length
/// inductance. Worst-sink delay, sink skew and the per-path repeater
/// penalties come from one sparse-backend transient per cell.
pub fn tree_worst_sink_delay_spec() -> SweepSpec {
    let base = Scenario {
        resistance_ohm_per_mm: Some(50.0),
        inductance_nh_per_mm: Some(1.0),
        capacitance_ff_per_um: Some(0.1),
        tree_levels: 3,
        ..Scenario::default()
    };
    SweepSpec::new(base)
        .axis(Axis::new("fanout", [1usize, 2, 3].map(Param::TreeFanout)))
        .axis(Axis::new("l_nh_per_mm", [0.1, 0.5, 1.0, 2.0].map(Param::InductanceNhPerMm)))
}

/// Builds the tree worst-sink-delay dataset (one transient simulation per
/// cell on the sparse backend; seconds in release mode).
///
/// # Errors
///
/// Propagates sweep/spec errors and the first simulation failure, if any.
pub fn tree_worst_sink_delay(options: &SweepOptions) -> Result<SweepResult, SweepError> {
    let result = run_sweep(&tree_worst_sink_delay_spec(), &TreeDelayEvaluator, options)?;
    if let Some((index, error)) = result.first_error() {
        return Err(SweepError::Evaluation {
            reason: format!("tree figure cell {index} failed: {error}"),
        });
    }
    Ok(result)
}

/// Builds the dataset of `FIGURES[index]`.
fn build_figure(index: usize, options: &SweepOptions) -> Result<SweepResult, SweepError> {
    match index {
        0 => delay_error_surface(options),
        1 => repeater_optimum_vs_inductance(options),
        2 => bus_worst_case_pushout(options),
        3 => mor_accuracy_vs_order(options),
        4 => tree_worst_sink_delay(options),
        _ => unreachable!("FIGURES and build_figure must stay in sync"),
    }
}

/// Builds every figure dataset, in [`FIGURES`] order.
///
/// # Errors
///
/// Propagates the first builder failure.
pub fn build_all(options: &SweepOptions) -> Result<Vec<(Figure, SweepResult)>, SweepError> {
    FIGURES.iter().enumerate().map(|(i, &figure)| Ok((figure, build_figure(i, options)?))).collect()
}

/// Writes every figure CSV into `dir`, returning the written paths.
///
/// # Errors
///
/// Propagates builder and I/O errors.
pub fn write_all(
    options: &SweepOptions,
    dir: &Path,
) -> Result<Vec<std::path::PathBuf>, SweepError> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for (figure, result) in build_all(options)? {
        let path = dir.join(figure.file);
        CsvSink.write(&result, &path)?;
        written.push(path);
    }
    Ok(written)
}

/// Regenerates every figure in memory and compares against the committed
/// CSVs in `dir`. Returns the names of drifted or missing artifacts (empty
/// means everything matches byte-for-byte).
///
/// # Errors
///
/// Propagates builder and I/O errors (a missing file is reported as drift,
/// not an error).
pub fn check_all(options: &SweepOptions, dir: &Path) -> Result<Vec<&'static str>, SweepError> {
    let mut drifted = Vec::new();
    for (i, figure) in FIGURES.iter().enumerate() {
        // A missing artifact is drift on its own — no need to pay for the
        // sweep that would only confirm there is nothing to compare against.
        let Ok(committed) = std::fs::read_to_string(dir.join(figure.file)) else {
            drifted.push(figure.file);
            continue;
        };
        if CsvSink.render(&build_figure(i, options)?) != committed {
            drifted.push(figure.file);
        }
    }
    Ok(drifted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_figures_have_the_paper_shape() {
        let options = SweepOptions::with_threads(2);
        let surface = delay_error_surface(&options).unwrap();
        assert_eq!(surface.rows.len(), 30);
        assert!(surface.first_error().is_none());

        let optimum = repeater_optimum_vs_inductance(&options).unwrap();
        assert_eq!(optimum.rows.len(), 11);
        assert!(optimum.first_error().is_none());
        // k_rlc (column 4) must fall monotonically as inductance grows, and the
        // area penalty (column 8) must grow.
        let k: Vec<f64> = optimum.rows.iter().map(|r| r.values.as_ref().unwrap()[4]).collect();
        assert!(k.windows(2).all(|w| w[1] <= w[0] + 1e-12), "k_rlc must not grow with L: {k:?}");
        let first = optimum.rows.first().unwrap().values.as_ref().unwrap()[8];
        let last = optimum.rows.last().unwrap().values.as_ref().unwrap()[8];
        assert!(last > first, "area penalty must grow with inductance");
    }

    #[test]
    fn figure_specs_expand_to_smoke_sized_grids() {
        assert_eq!(delay_error_surface_spec().len(), 30);
        assert_eq!(repeater_optimum_vs_inductance_spec().len(), 11);
        assert_eq!(bus_worst_case_pushout_spec().len(), 8);
        assert_eq!(mor_accuracy_vs_order_spec().len(), 6);
        assert_eq!(tree_worst_sink_delay_spec().len(), 12);
        assert_eq!(FIGURES.len(), 5);
    }

    #[test]
    fn check_reports_missing_artifacts_as_drift() {
        // Point at an empty temp dir: every artifact is missing => one drift
        // per figure.
        // Uses only the two closed-form figures' grid via a stub dir; the bus
        // figure must also run, so keep this test release-friendly but valid
        // in debug: the 8-cell bus grid at 8 sections is the debug-time cost
        // of one coupling-crate integration test.
        let dir =
            std::env::temp_dir().join(format!("rlckit-sweep-figcheck-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let drifted = check_all(&SweepOptions::default(), &dir).unwrap();
        assert_eq!(drifted.len(), FIGURES.len());
        // Writing then re-checking must be clean.
        write_all(&SweepOptions::default(), &dir).unwrap();
        let drifted = check_all(&SweepOptions::default(), &dir).unwrap();
        assert!(drifted.is_empty(), "freshly written figures drifted: {drifted:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
