//! Declarative sweep specifications: cartesian grids of (possibly zipped) axes.
//!
//! A [`SweepSpec`] is a base [`Scenario`] plus an ordered list of [`Axis`]
//! values. Expansion takes the cartesian product of the axes in declaration
//! order (the last axis varies fastest — row-major, like nested `for` loops),
//! producing one [`SweepCell`] per grid point with a deterministic index.
//! An axis whose values each carry *several* [`Param`] assignments is a
//! *zipped* axis: its parameters advance together instead of multiplying the
//! grid (e.g. a "pitch" axis that tightens coupling capacitance and inductive
//! coupling in lock-step).

use crate::error::SweepError;
use crate::scenario::{Param, Scenario};

/// One value of an axis: a display label plus the parameter assignments it
/// applies (one for a plain axis, several for a zipped axis).
#[derive(Debug, Clone, PartialEq)]
pub struct AxisValue {
    /// Label used for this value in the axis column of emitted tables.
    pub label: String,
    /// Parameter assignments applied to the base scenario.
    pub params: Vec<Param>,
}

/// One sweep dimension: a named, ordered list of values.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    name: String,
    values: Vec<AxisValue>,
}

impl Axis {
    /// A plain axis: one [`Param`] per value, labelled by the value itself.
    pub fn new(name: impl Into<String>, values: impl IntoIterator<Item = Param>) -> Self {
        let values =
            values.into_iter().map(|p| AxisValue { label: p.label(), params: vec![p] }).collect();
        Self { name: name.into(), values }
    }

    /// A zipped axis: each value applies several parameters together. Labels
    /// are taken from `labels`; the parameter rows advance in lock-step.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Spec`] if `labels` and `rows` differ in length or
    /// any row is empty.
    pub fn zipped(
        name: impl Into<String>,
        labels: impl IntoIterator<Item = String>,
        rows: impl IntoIterator<Item = Vec<Param>>,
    ) -> Result<Self, SweepError> {
        let name = name.into();
        let labels: Vec<String> = labels.into_iter().collect();
        let rows: Vec<Vec<Param>> = rows.into_iter().collect();
        if labels.len() != rows.len() {
            return Err(SweepError::Spec {
                reason: format!(
                    "zipped axis '{name}' has {} labels but {} parameter rows",
                    labels.len(),
                    rows.len()
                ),
            });
        }
        for (label, row) in labels.iter().zip(rows.iter()) {
            if row.is_empty() {
                return Err(SweepError::Spec {
                    reason: format!("zipped axis '{name}' value '{label}' sets no parameters"),
                });
            }
        }
        let values = labels
            .into_iter()
            .zip(rows)
            .map(|(label, params)| AxisValue { label, params })
            .collect();
        Ok(Self { name, values })
    }

    /// The axis name (the column header in emitted tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The axis values in sweep order.
    pub fn values(&self) -> &[AxisValue] {
        &self.values
    }
}

/// One expanded grid point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Deterministic row-major index of this cell in the expanded grid.
    pub index: usize,
    /// The fully resolved scenario for this cell.
    pub scenario: Scenario,
    /// One label per axis, aligned with [`SweepSpec::axis_names`].
    pub labels: Vec<String>,
}

/// A declarative sweep: a base scenario and the axes that vary around it.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    base: Scenario,
    axes: Vec<Axis>,
}

impl SweepSpec {
    /// Starts a sweep around a base scenario.
    pub fn new(base: Scenario) -> Self {
        Self { base, axes: Vec::new() }
    }

    /// Adds the next (slower-varying) axis; builder style.
    pub fn axis(mut self, axis: Axis) -> Self {
        self.axes.push(axis);
        self
    }

    /// The base scenario the axes mutate.
    pub fn base(&self) -> &Scenario {
        &self.base
    }

    /// Axis names in declaration order (the label columns of every emitter).
    pub fn axis_names(&self) -> Vec<String> {
        self.axes.iter().map(|a| a.name.clone()).collect()
    }

    /// Number of grid cells the spec expands to (product of axis lengths).
    pub fn len(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// Returns `true` if expansion would produce no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into scenario cells in deterministic row-major order
    /// (first axis slowest, last axis fastest).
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Spec`] if there are no axes or any axis is empty.
    pub fn expand(&self) -> Result<Vec<SweepCell>, SweepError> {
        if self.axes.is_empty() {
            return Err(SweepError::Spec { reason: "sweep has no axes".into() });
        }
        for axis in &self.axes {
            if axis.values.is_empty() {
                return Err(SweepError::Spec {
                    reason: format!("axis '{}' has no values", axis.name),
                });
            }
        }
        let total = self.len();
        let mut cells = Vec::with_capacity(total);
        let mut cursor = vec![0usize; self.axes.len()];
        for index in 0..total {
            let mut scenario = self.base.clone();
            let mut labels = Vec::with_capacity(self.axes.len());
            for (axis, &i) in self.axes.iter().zip(cursor.iter()) {
                let value = &axis.values[i];
                for p in &value.params {
                    scenario.apply(p);
                }
                labels.push(value.label.clone());
            }
            cells.push(SweepCell { index, scenario, labels });
            // Odometer increment: last axis fastest.
            for d in (0..cursor.len()).rev() {
                cursor[d] += 1;
                if cursor[d] < self.axes[d].values.len() {
                    break;
                }
                cursor[d] = 0;
            }
        }
        Ok(cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::TechnologyNode;

    #[test]
    fn cartesian_expansion_is_row_major() {
        let spec = SweepSpec::new(Scenario::default())
            .axis(Axis::new("length_mm", [Param::LineLengthMm(5.0), Param::LineLengthMm(10.0)]))
            .axis(Axis::new(
                "h",
                [Param::DriverSize(25.0), Param::DriverSize(50.0), Param::DriverSize(100.0)],
            ));
        assert_eq!(spec.len(), 6);
        assert!(!spec.is_empty());
        assert_eq!(spec.axis_names(), ["length_mm", "h"]);
        let cells = spec.expand().unwrap();
        assert_eq!(cells.len(), 6);
        // Last axis varies fastest.
        assert_eq!(cells[0].labels, ["5", "25"]);
        assert_eq!(cells[1].labels, ["5", "50"]);
        assert_eq!(cells[3].labels, ["10", "25"]);
        assert_eq!(cells[3].scenario.line_length_mm, 10.0);
        assert_eq!(cells[3].scenario.driver_size, 25.0);
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
        }
    }

    #[test]
    fn zipped_axis_advances_parameters_together() {
        let pitch = Axis::zipped(
            "pitch",
            ["tight".to_owned(), "loose".to_owned()],
            [
                vec![Param::CouplingCapFfPerUm(0.2), Param::InductiveCoupling(0.5)],
                vec![Param::CouplingCapFfPerUm(0.05), Param::InductiveCoupling(0.2)],
            ],
        )
        .unwrap();
        let spec = SweepSpec::new(Scenario::default()).axis(pitch);
        let cells = spec.expand().unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].scenario.coupling_cap_ff_per_um, 0.2);
        assert_eq!(cells[0].scenario.inductive_coupling, 0.5);
        assert_eq!(cells[1].scenario.coupling_cap_ff_per_um, 0.05);
        assert_eq!(cells[1].scenario.inductive_coupling, 0.2);
        assert_eq!(cells[1].labels, ["loose"]);
    }

    #[test]
    fn zipped_axis_rejects_mismatched_or_empty_rows() {
        assert!(Axis::zipped("p", ["a".to_owned()], []).is_err());
        assert!(Axis::zipped("p", ["a".to_owned()], [vec![]]).is_err());
    }

    #[test]
    fn degenerate_specs_are_rejected() {
        assert!(SweepSpec::new(Scenario::default()).expand().is_err());
        let empty_axis = Axis::new("x", []);
        let spec = SweepSpec::new(Scenario::default()).axis(empty_axis);
        assert!(spec.is_empty());
        assert!(spec.expand().is_err());
    }

    #[test]
    fn base_scenario_fields_survive_unrelated_axes() {
        let base = Scenario { technology: TechnologyNode::N130, ..Scenario::default() };
        let spec = SweepSpec::new(base).axis(Axis::new("h", [Param::DriverSize(10.0)]));
        assert_eq!(spec.base().technology, TechnologyNode::N130);
        let cells = spec.expand().unwrap();
        assert_eq!(cells[0].scenario.technology, TechnologyNode::N130);
    }
}
