//! Content-hash result cache: re-runs only compute changed cells.
//!
//! Every computed row is memoised under a 64-bit FNV-1a key covering the
//! evaluator name, its column list and every field of the resolved
//! [`Scenario`]. The cache persists to a plain
//! text file whose values are stored as hexadecimal `f64` bit patterns, so a
//! round-trip through disk is **bit-exact** — a cache hit replays the very
//! bytes the original run produced.
//!
//! Two persistence shapes share that format:
//!
//! * [`SweepCache`] — one whole-sweep file, loaded and saved as a unit; the
//!   shape `run_sweep_cached` uses for figure regeneration;
//! * [`ResultStore`] — a **directory of one-record files** with an LRU byte
//!   budget, built for long-running services (the `rlckit-server` daemon)
//!   where results accumulate across many requests and the store must bound
//!   its own footprint. Records are written atomically (temp file + rename)
//!   and a truncated or corrupt record is treated as a miss and deleted,
//!   never an error.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use crate::error::SweepError;
use crate::eval::Evaluator;
use crate::scenario::{Fnv64, Scenario};

/// Magic first line of the on-disk cache format.
const HEADER: &str = "rlckit-sweep-cache v1";

/// Computes the cache key of one (evaluator, scenario) pair.
pub fn cache_key(evaluator: &dyn Evaluator, scenario: &Scenario) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(evaluator.name());
    for c in evaluator.columns() {
        h.write_str(c);
    }
    scenario.hash_into(&mut h);
    h.finish()
}

/// A memo of computed metric rows, optionally persisted to disk.
#[derive(Debug, Clone, Default)]
pub struct SweepCache {
    path: Option<PathBuf>,
    entries: HashMap<u64, Vec<f64>>,
}

impl SweepCache {
    /// An empty cache that lives only in memory.
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// Loads a cache from `path`; a missing file yields an empty cache bound
    /// to that path (so [`SweepCache::save`] creates it).
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Io`] on read failures other than "not found" and
    /// [`SweepError::CacheFormat`] if the file exists but cannot be parsed.
    pub fn load(path: impl Into<PathBuf>) -> Result<Self, SweepError> {
        let path = path.into();
        let body = match std::fs::read_to_string(&path) {
            Ok(body) => body,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Self { path: Some(path), entries: HashMap::new() });
            }
            Err(e) => return Err(SweepError::Io(e)),
        };
        let mut lines = body.lines();
        if lines.next() != Some(HEADER) {
            return Err(SweepError::CacheFormat {
                reason: format!("{} does not start with '{HEADER}'", path.display()),
            });
        }
        let mut entries = HashMap::new();
        for (n, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split(' ');
            let key =
                fields.next().and_then(|k| u64::from_str_radix(k, 16).ok()).ok_or_else(|| {
                    SweepError::CacheFormat {
                        reason: format!("line {}: missing or invalid key", n + 2),
                    }
                })?;
            let values = fields
                .map(|v| u64::from_str_radix(v, 16).map(f64::from_bits))
                .collect::<Result<Vec<f64>, _>>()
                .map_err(|_| SweepError::CacheFormat {
                    reason: format!("line {}: invalid value bits", n + 2),
                })?;
            entries.insert(key, values);
        }
        Ok(Self { path: Some(path), entries })
    }

    /// Writes the cache back to the path it was loaded from (no-op for an
    /// in-memory cache). Entries are written in sorted key order so the file
    /// itself is deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Io`] if the file cannot be written.
    pub fn save(&self) -> Result<(), SweepError> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let mut keys: Vec<&u64> = self.entries.keys().collect();
        keys.sort();
        let mut out = String::with_capacity(64 * self.entries.len());
        out.push_str(HEADER);
        out.push('\n');
        for key in keys {
            out.push_str(&format!("{key:016x}"));
            for v in &self.entries[key] {
                out.push_str(&format!(" {:016x}", v.to_bits()));
            }
            out.push('\n');
        }
        std::fs::write(path, out)?;
        Ok(())
    }

    /// Looks up a previously computed row.
    pub fn get(&self, key: u64) -> Option<&Vec<f64>> {
        self.entries.get(&key)
    }

    /// Memoises a computed row.
    pub fn insert(&mut self, key: u64, values: Vec<f64>) {
        self.entries.insert(key, values);
    }

    /// Number of memoised rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing is memoised yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The backing file, if this cache persists.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }
}

/// Magic first line of every [`ResultStore`] record file.
const RECORD_HEADER: &str = "rlckit-result v1";

/// Default byte budget of a [`ResultStore`] (64 MiB — roughly 500k rows).
pub const DEFAULT_STORE_BUDGET: u64 = 64 * 1024 * 1024;

/// Cumulative [`ResultStore`] statistics, for service `stats` endpoints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from a stored record.
    pub hits: u64,
    /// Lookups with no (usable) record.
    pub misses: u64,
    /// Records deleted to stay within the byte budget.
    pub evictions: u64,
    /// Records dropped because they were truncated or corrupt.
    pub corrupt: u64,
}

/// Per-record bookkeeping inside the [`ResultStore`] index.
#[derive(Debug, Clone, Copy)]
struct RecordMeta {
    bytes: u64,
    /// Monotonic recency stamp for LRU eviction.
    stamp: u64,
}

/// A disk-backed, byte-budgeted result store: one hex-`f64` record file per
/// key, least-recently-used eviction, crash-tolerant reads.
///
/// Unlike [`SweepCache`] (one file, loaded/saved as a unit), the store is
/// incremental: every [`ResultStore::insert`] lands on disk immediately via
/// a temp-file + rename, so a crash never leaves a half-written record under
/// a live name, and a separate process observing the directory only ever
/// sees complete records. Reads that encounter a truncated or corrupt
/// record delete it and report a miss — the store never panics or errors on
/// bad record contents.
///
/// Recency survives restarts only approximately: on open, records are
/// stamped in sorted key order (deterministic), and real recency accrues
/// from subsequent hits and inserts.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    budget_bytes: u64,
    index: HashMap<u64, RecordMeta>,
    next_stamp: u64,
    stats: StoreStats,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `dir` with the given
    /// byte budget, indexing every existing `*.rec` record.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Io`] if the directory cannot be created or
    /// scanned. Unparseable record *file names* are ignored (foreign files
    /// are left alone); unparseable record *contents* surface lazily as
    /// misses on first read.
    pub fn open(dir: impl Into<PathBuf>, budget_bytes: u64) -> Result<Self, SweepError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut keyed: Vec<(u64, u64)> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(hex) = name.strip_suffix(".rec") else { continue };
            let Ok(key) = u64::from_str_radix(hex, 16) else { continue };
            let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
            keyed.push((key, bytes));
        }
        // Deterministic initial recency: ascending key order.
        keyed.sort_unstable();
        let mut index = HashMap::with_capacity(keyed.len());
        let mut next_stamp = 0;
        for (key, bytes) in keyed {
            index.insert(key, RecordMeta { bytes, stamp: next_stamp });
            next_stamp += 1;
        }
        let mut store = Self { dir, budget_bytes, index, next_stamp, stats: StoreStats::default() };
        store.evict_to_budget();
        Ok(store)
    }

    /// The record file of `key`.
    fn record_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.rec"))
    }

    /// Looks up a stored row, returning the bit-exact values the original
    /// insert wrote. A missing, truncated or corrupt record is a miss (a
    /// bad record is also deleted so it cannot waste budget).
    pub fn get(&mut self, key: u64) -> Option<Vec<f64>> {
        if !self.index.contains_key(&key) {
            self.stats.misses += 1;
            return None;
        }
        let path = self.record_path(key);
        match std::fs::read_to_string(&path).ok().and_then(|body| parse_record(&body)) {
            Some(values) => {
                let stamp = self.bump_stamp();
                if let Some(meta) = self.index.get_mut(&key) {
                    meta.stamp = stamp;
                }
                self.stats.hits += 1;
                rlckit_telemetry::counter_add("sweep.store_hits", 1);
                Some(values)
            }
            None => {
                let _ = std::fs::remove_file(&path);
                self.index.remove(&key);
                self.stats.misses += 1;
                self.stats.corrupt += 1;
                rlckit_telemetry::counter_add("sweep.store_corrupt", 1);
                None
            }
        }
    }

    /// Persists a row under `key` (atomically: temp file, then rename),
    /// then evicts least-recently-used records until the store is within
    /// its byte budget. The most recent insert is never evicted.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Io`] if the record cannot be written.
    pub fn insert(&mut self, key: u64, values: &[f64]) -> Result<(), SweepError> {
        let mut body = String::with_capacity(RECORD_HEADER.len() + 1 + 17 * values.len());
        body.push_str(RECORD_HEADER);
        body.push('\n');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                body.push(' ');
            }
            body.push_str(&format!("{:016x}", v.to_bits()));
        }
        body.push('\n');
        let path = self.record_path(key);
        let tmp = self.dir.join(format!("{key:016x}.tmp"));
        std::fs::write(&tmp, &body)?;
        std::fs::rename(&tmp, &path)?;
        let stamp = self.bump_stamp();
        self.index.insert(key, RecordMeta { bytes: body.len() as u64, stamp });
        self.evict_to_budget();
        Ok(())
    }

    fn bump_stamp(&mut self) -> u64 {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        stamp
    }

    /// Deletes least-recently-used records (ties broken on the smaller key,
    /// unreachable with monotonic stamps but kept deterministic) until the
    /// indexed total fits the budget. At least one record is always kept.
    fn evict_to_budget(&mut self) {
        while self.index.len() > 1 && self.total_bytes() > self.budget_bytes {
            let Some(victim) =
                self.index.iter().min_by_key(|(k, m)| (m.stamp, **k)).map(|(k, _)| *k)
            else {
                return;
            };
            let _ = std::fs::remove_file(self.record_path(victim));
            self.index.remove(&victim);
            self.stats.evictions += 1;
            rlckit_telemetry::counter_add("sweep.store_evictions", 1);
        }
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns `true` when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Sum of the indexed record sizes in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.index.values().map(|m| m.bytes).sum()
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// A copy of the cumulative hit/miss/eviction statistics.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }
}

/// Parses one record body; `None` on any malformation (wrong header, bad
/// hex, missing trailing newline — i.e. a truncated write).
fn parse_record(body: &str) -> Option<Vec<f64>> {
    let rest = body.strip_prefix(RECORD_HEADER)?.strip_prefix('\n')?;
    let line = rest.strip_suffix('\n')?;
    if line.contains('\n') {
        return None;
    }
    if line.is_empty() {
        return Some(Vec::new());
    }
    line.split(' ')
        .map(
            |v| {
                if v.len() == 16 {
                    u64::from_str_radix(v, 16).ok().map(f64::from_bits)
                } else {
                    None
                }
            },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::DelayModelEvaluator;

    #[test]
    fn keys_separate_scenarios_and_evaluators() {
        let a = Scenario::default();
        let b = Scenario { line_length_mm: 11.0, ..Scenario::default() };
        let k_a = cache_key(&DelayModelEvaluator, &a);
        assert_eq!(k_a, cache_key(&DelayModelEvaluator, &a.clone()));
        assert_ne!(k_a, cache_key(&DelayModelEvaluator, &b));
        assert_ne!(k_a, cache_key(&crate::eval::RepeaterOptimumEvaluator, &a));
    }

    #[test]
    fn disk_round_trip_is_bit_exact() {
        let dir = std::env::temp_dir().join(format!("rlckit-sweep-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.txt");
        let mut cache = SweepCache::load(&path).unwrap();
        assert!(cache.is_empty());
        // Values with awkward bit patterns: subnormal, negative zero, π.
        let row = vec![f64::MIN_POSITIVE / 2.0, -0.0, std::f64::consts::PI, 1.0e300];
        cache.insert(42, row.clone());
        cache.insert(7, vec![]);
        cache.save().unwrap();

        let back = SweepCache::load(&path).unwrap();
        assert_eq!(back.len(), 2);
        let got = back.get(42).unwrap();
        assert_eq!(got.len(), row.len());
        for (a, b) in got.iter().zip(row.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "round-trip must preserve bits");
        }
        assert!(back.get(7).unwrap().is_empty());
        assert!(back.get(1).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_files_are_rejected() {
        let dir = std::env::temp_dir().join(format!("rlckit-sweep-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.txt");
        std::fs::write(&path, "not a cache\n").unwrap();
        assert!(matches!(SweepCache::load(&path), Err(SweepError::CacheFormat { .. })));
        std::fs::write(&path, format!("{HEADER}\nzzzz 01\n")).unwrap();
        assert!(SweepCache::load(&path).is_err());
        std::fs::write(&path, format!("{HEADER}\n00000000000000ff nope\n")).unwrap();
        assert!(SweepCache::load(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn store_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rlckit-store-{tag}-{}", std::process::id()))
    }

    #[test]
    fn result_store_round_trips_bit_exactly_and_persists() {
        let dir = store_dir("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let row = vec![f64::MIN_POSITIVE / 2.0, -0.0, std::f64::consts::PI, 1.0e300];
        {
            let mut store = ResultStore::open(&dir, DEFAULT_STORE_BUDGET).unwrap();
            assert!(store.is_empty());
            store.insert(42, &row).unwrap();
            store.insert(7, &[]).unwrap();
            let got = store.get(42).unwrap();
            for (a, b) in got.iter().zip(row.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // A fresh handle over the same directory sees the same records.
        let mut store = ResultStore::open(&dir, DEFAULT_STORE_BUDGET).unwrap();
        assert_eq!(store.len(), 2);
        let got = store.get(42).unwrap();
        for (a, b) in got.iter().zip(row.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "reopen must preserve bits");
        }
        assert!(store.get(7).unwrap().is_empty());
        assert!(store.get(1).is_none());
        assert_eq!(store.stats().hits, 2);
        assert_eq!(store.stats().misses, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn result_store_evicts_lru_under_byte_pressure() {
        let dir = store_dir("evict");
        let _ = std::fs::remove_dir_all(&dir);
        // Each record is ~90 bytes; budget for roughly two of them.
        let mut store = ResultStore::open(&dir, 200).unwrap();
        store.insert(1, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        store.insert(2, &[5.0, 6.0, 7.0, 8.0]).unwrap();
        // Touch key 1 so key 2 is the least recently used.
        assert!(store.get(1).is_some());
        store.insert(3, &[9.0, 10.0, 11.0, 12.0]).unwrap();
        assert!(store.stats().evictions >= 1);
        assert!(store.total_bytes() <= 200);
        assert!(store.get(2).is_none(), "LRU record must have been evicted");
        assert!(store.get(3).is_some(), "the newest record survives");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn result_store_treats_corruption_as_a_miss() {
        let dir = store_dir("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = ResultStore::open(&dir, DEFAULT_STORE_BUDGET).unwrap();
        store.insert(5, &[1.5, 2.5]).unwrap();
        let path = store.dir().join(format!("{:016x}.rec", 5u64));
        // Truncated mid-write: no trailing newline.
        std::fs::write(&path, format!("{RECORD_HEADER}\n3ff8000000000")).unwrap();
        assert!(store.get(5).is_none(), "truncated record is a miss");
        assert_eq!(store.stats().corrupt, 1);
        assert!(!path.exists(), "corrupt record must be deleted");
        // Wrong header entirely.
        store.insert(6, &[1.0]).unwrap();
        let path6 = store.dir().join(format!("{:016x}.rec", 6u64));
        std::fs::write(&path6, "not a record\n").unwrap();
        assert!(store.get(6).is_none());
        // Bad hex in an otherwise well-formed record.
        store.insert(7, &[1.0]).unwrap();
        let path7 = store.dir().join(format!("{:016x}.rec", 7u64));
        std::fs::write(&path7, format!("{RECORD_HEADER}\nzzzzzzzzzzzzzzzz\n")).unwrap();
        assert!(store.get(7).is_none());
        assert_eq!(store.stats().corrupt, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn in_memory_cache_save_is_a_no_op() {
        let mut cache = SweepCache::in_memory();
        cache.insert(1, vec![1.0]);
        assert!(cache.path().is_none());
        cache.save().unwrap();
        assert_eq!(cache.len(), 1);
    }
}
