//! Content-hash result cache: re-runs only compute changed cells.
//!
//! Every computed row is memoised under a 64-bit FNV-1a key covering the
//! evaluator name, its column list and every field of the resolved
//! [`Scenario`]. The cache persists to a plain
//! text file whose values are stored as hexadecimal `f64` bit patterns, so a
//! round-trip through disk is **bit-exact** — a cache hit replays the very
//! bytes the original run produced.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use crate::error::SweepError;
use crate::eval::Evaluator;
use crate::scenario::{Fnv64, Scenario};

/// Magic first line of the on-disk cache format.
const HEADER: &str = "rlckit-sweep-cache v1";

/// Computes the cache key of one (evaluator, scenario) pair.
pub fn cache_key(evaluator: &dyn Evaluator, scenario: &Scenario) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(evaluator.name());
    for c in evaluator.columns() {
        h.write_str(c);
    }
    scenario.hash_into(&mut h);
    h.finish()
}

/// A memo of computed metric rows, optionally persisted to disk.
#[derive(Debug, Clone, Default)]
pub struct SweepCache {
    path: Option<PathBuf>,
    entries: HashMap<u64, Vec<f64>>,
}

impl SweepCache {
    /// An empty cache that lives only in memory.
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// Loads a cache from `path`; a missing file yields an empty cache bound
    /// to that path (so [`SweepCache::save`] creates it).
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Io`] on read failures other than "not found" and
    /// [`SweepError::CacheFormat`] if the file exists but cannot be parsed.
    pub fn load(path: impl Into<PathBuf>) -> Result<Self, SweepError> {
        let path = path.into();
        let body = match std::fs::read_to_string(&path) {
            Ok(body) => body,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Self { path: Some(path), entries: HashMap::new() });
            }
            Err(e) => return Err(SweepError::Io(e)),
        };
        let mut lines = body.lines();
        if lines.next() != Some(HEADER) {
            return Err(SweepError::CacheFormat {
                reason: format!("{} does not start with '{HEADER}'", path.display()),
            });
        }
        let mut entries = HashMap::new();
        for (n, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split(' ');
            let key =
                fields.next().and_then(|k| u64::from_str_radix(k, 16).ok()).ok_or_else(|| {
                    SweepError::CacheFormat {
                        reason: format!("line {}: missing or invalid key", n + 2),
                    }
                })?;
            let values = fields
                .map(|v| u64::from_str_radix(v, 16).map(f64::from_bits))
                .collect::<Result<Vec<f64>, _>>()
                .map_err(|_| SweepError::CacheFormat {
                    reason: format!("line {}: invalid value bits", n + 2),
                })?;
            entries.insert(key, values);
        }
        Ok(Self { path: Some(path), entries })
    }

    /// Writes the cache back to the path it was loaded from (no-op for an
    /// in-memory cache). Entries are written in sorted key order so the file
    /// itself is deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Io`] if the file cannot be written.
    pub fn save(&self) -> Result<(), SweepError> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let mut keys: Vec<&u64> = self.entries.keys().collect();
        keys.sort();
        let mut out = String::with_capacity(64 * self.entries.len());
        out.push_str(HEADER);
        out.push('\n');
        for key in keys {
            out.push_str(&format!("{key:016x}"));
            for v in &self.entries[key] {
                out.push_str(&format!(" {:016x}", v.to_bits()));
            }
            out.push('\n');
        }
        std::fs::write(path, out)?;
        Ok(())
    }

    /// Looks up a previously computed row.
    pub fn get(&self, key: u64) -> Option<&Vec<f64>> {
        self.entries.get(&key)
    }

    /// Memoises a computed row.
    pub fn insert(&mut self, key: u64, values: Vec<f64>) {
        self.entries.insert(key, values);
    }

    /// Number of memoised rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing is memoised yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The backing file, if this cache persists.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::DelayModelEvaluator;

    #[test]
    fn keys_separate_scenarios_and_evaluators() {
        let a = Scenario::default();
        let b = Scenario { line_length_mm: 11.0, ..Scenario::default() };
        let k_a = cache_key(&DelayModelEvaluator, &a);
        assert_eq!(k_a, cache_key(&DelayModelEvaluator, &a.clone()));
        assert_ne!(k_a, cache_key(&DelayModelEvaluator, &b));
        assert_ne!(k_a, cache_key(&crate::eval::RepeaterOptimumEvaluator, &a));
    }

    #[test]
    fn disk_round_trip_is_bit_exact() {
        let dir = std::env::temp_dir().join(format!("rlckit-sweep-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.txt");
        let mut cache = SweepCache::load(&path).unwrap();
        assert!(cache.is_empty());
        // Values with awkward bit patterns: subnormal, negative zero, π.
        let row = vec![f64::MIN_POSITIVE / 2.0, -0.0, std::f64::consts::PI, 1.0e300];
        cache.insert(42, row.clone());
        cache.insert(7, vec![]);
        cache.save().unwrap();

        let back = SweepCache::load(&path).unwrap();
        assert_eq!(back.len(), 2);
        let got = back.get(42).unwrap();
        assert_eq!(got.len(), row.len());
        for (a, b) in got.iter().zip(row.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "round-trip must preserve bits");
        }
        assert!(back.get(7).unwrap().is_empty());
        assert!(back.get(1).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_files_are_rejected() {
        let dir = std::env::temp_dir().join(format!("rlckit-sweep-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.txt");
        std::fs::write(&path, "not a cache\n").unwrap();
        assert!(matches!(SweepCache::load(&path), Err(SweepError::CacheFormat { .. })));
        std::fs::write(&path, format!("{HEADER}\nzzzz 01\n")).unwrap();
        assert!(SweepCache::load(&path).is_err());
        std::fs::write(&path, format!("{HEADER}\n00000000000000ff nope\n")).unwrap();
        assert!(SweepCache::load(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn in_memory_cache_save_is_a_no_op() {
        let mut cache = SweepCache::in_memory();
        cache.insert(1, vec![1.0]);
        assert!(cache.path().is_none());
        cache.save().unwrap();
        assert_eq!(cache.len(), 1);
    }
}
