//! The figure pipeline: regenerates (or drift-checks) the committed
//! `figures/FIG_*.csv` paper datasets.
//!
//! ```sh
//! cargo run --release -p rlckit-sweep --bin figures            # rewrite figures/
//! cargo run --release -p rlckit-sweep --bin figures -- --check # fail on drift (CI)
//! ```
//!
//! Options: `--check` compares instead of writing; `--out DIR` overrides the
//! output directory (default: the workspace `figures/`); `--threads N` sets
//! the sweep worker count. The grids are smoke-sized on purpose — the whole
//! pipeline is a few seconds in release mode — so CI can afford to re-run it
//! on every push and fail if any committed artifact drifts from the code.

use std::path::PathBuf;
use std::process::ExitCode;

use rlckit_sweep::exec::SweepOptions;
use rlckit_sweep::figures::{check_all, write_all, FIGURES};

struct Args {
    check: bool,
    out: PathBuf,
    threads: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let default_out = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../figures");
    let mut args = Args { check: false, out: default_out, threads: None };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => args.check = true,
            "--out" => {
                args.out = PathBuf::from(it.next().ok_or("--out needs a directory argument")?);
            }
            "--threads" => {
                let n = it.next().ok_or("--threads needs a count argument")?;
                args.threads = Some(n.parse().map_err(|_| format!("invalid thread count '{n}'"))?);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("figures: {e}");
            eprintln!("usage: figures [--check] [--out DIR] [--threads N]");
            return ExitCode::FAILURE;
        }
    };
    let options = match args.threads {
        Some(n) => SweepOptions::with_threads(n),
        None => SweepOptions::default(),
    };

    // With RLCKIT_PROFILE=1 the sweeps below feed the telemetry registry;
    // dump the summary table after the pipeline so a profiled figures run
    // doubles as a quick where-does-the-time-go report.
    let print_profile = || {
        if rlckit_telemetry::enabled() {
            print!("{}", rlckit_telemetry::Collector::snapshot().summary());
        }
    };

    if args.check {
        match check_all(&options, &args.out) {
            Ok(drifted) if drifted.is_empty() => {
                println!("figures: all {} committed datasets match", FIGURES.len());
                print_profile();
                ExitCode::SUCCESS
            }
            Ok(drifted) => {
                for file in &drifted {
                    eprintln!("figures: DRIFT in {}", args.out.join(file).display());
                }
                eprintln!(
                    "figures: {} of {} datasets drifted — regenerate with \
                     `cargo run --release -p rlckit-sweep --bin figures` and commit",
                    drifted.len(),
                    FIGURES.len()
                );
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("figures: check failed: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        match write_all(&options, &args.out) {
            Ok(paths) => {
                for (figure, path) in FIGURES.iter().zip(paths.iter()) {
                    println!("wrote {} — {}", path.display(), figure.description);
                }
                print_profile();
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("figures: generation failed: {e}");
                ExitCode::FAILURE
            }
        }
    }
}
