//! The [`Evaluator`] trait plus built-in evaluators wiring every subsystem of
//! the workspace — delay models (`rlckit-core`), repeater insertion
//! (`rlckit-repeater`) and coupled buses (`rlckit-coupling`) — into the sweep
//! engine.
//!
//! An evaluator maps one resolved [`Scenario`] to a fixed row of named `f64`
//! metrics. Evaluators must be pure functions of the scenario ([`Sync`], no
//! interior mutability): the executor calls them from worker threads and the
//! cache assumes a scenario always produces the same row.

use rlckit_circuit::ladder::{measure_step_delay, LadderSpec};
use rlckit_circuit::mesh::measure_mesh_delay;
use rlckit_circuit::tree::measure_tree_delays;
use rlckit_circuit::SolverBackend;
use rlckit_core::load::GateRlcLoad;
use rlckit_core::model::propagation_delay;
use rlckit_core::rc_models;
use rlckit_coupling::bus::{CoupledBus, UniformBusSpec};
use rlckit_coupling::crosstalk::crosstalk_metrics;
use rlckit_coupling::netlist::BusDrive;
use rlckit_coupling::repeater::evaluate_bus_repeaters;
use rlckit_interconnect::{DistributedLine, MeshGeometry, RoutingTree, Technology};
use rlckit_netlist::{measure_sram_read, SramArraySpec};
use rlckit_reduce::reduce_ladder;
use rlckit_repeater::comparison;
use rlckit_repeater::tree::evaluate_tree_repeaters;
use rlckit_repeater::RepeaterProblem;
use rlckit_units::{CapacitancePerLength, InductancePerLength, Length, ResistancePerLength};

use crate::error::SweepError;
use crate::scenario::Scenario;

/// Maps one scenario to a fixed-width row of named metrics.
///
/// Implementations must be deterministic: the executor memoises rows by a
/// content hash of the scenario and replays them on later runs.
pub trait Evaluator: Sync {
    /// Stable evaluator name (part of the cache key).
    fn name(&self) -> &'static str;

    /// Metric column names, in the order [`Evaluator::evaluate`] returns them.
    fn columns(&self) -> &'static [&'static str];

    /// Computes the metric row for one scenario.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Evaluation`] when the scenario cannot be built or
    /// measured (invalid parameters, no 50% crossing, …).
    fn evaluate(&self, scenario: &Scenario) -> Result<Vec<f64>, SweepError>;
}

/// Builds the scenario's distributed line: the technology's wide global wire
/// with any per-unit-length overrides applied.
pub fn scenario_line(s: &Scenario) -> Result<DistributedLine, SweepError> {
    let tech = s.technology.technology();
    let base = tech.global_wire;
    let r = s
        .resistance_ohm_per_mm
        .map(ResistancePerLength::from_ohms_per_millimeter)
        .unwrap_or(base.resistance);
    let l = s
        .inductance_nh_per_mm
        .map(InductancePerLength::from_nanohenries_per_millimeter)
        .unwrap_or(base.inductance);
    let c = s
        .capacitance_ff_per_um
        .map(CapacitancePerLength::from_femtofarads_per_micrometer)
        .unwrap_or(base.capacitance);
    Ok(DistributedLine::new(r, l, c, Length::from_millimeters(s.line_length_mm))?)
}

/// Builds the scenario's coupled bus from the same wire parameters plus the
/// bus-layout fields (`bus_lines`, coupling values, shielding).
pub fn scenario_bus(s: &Scenario) -> Result<CoupledBus, SweepError> {
    let line = scenario_line(s)?;
    // Inductive coupling falls off ~0.43× per pitch of separation (the repo's
    // bus idiom: 0.35 → 0.15 in the examples). Shield interleaving doubles the
    // conductor count, and shields do NOT remove mutual inductance — signal
    // pairs then sit at separations 2, 4, … — so the falloff vector must cover
    // every separation of the *built* conductor set, not just the signal count.
    let conductors = if s.shielded { 2 * s.bus_lines.max(1) - 1 } else { s.bus_lines };
    let inductive_coupling: Vec<f64> =
        (1..conductors.max(2)).map(|d| s.inductive_coupling * 0.43f64.powi(d as i32 - 1)).collect();
    let spec = UniformBusSpec {
        lines: s.bus_lines,
        resistance: line.resistance_per_length(),
        self_inductance: line.inductance_per_length(),
        ground_capacitance: line.capacitance_per_length(),
        coupling_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(
            s.coupling_cap_ff_per_um,
        ),
        inductive_coupling,
        length: Length::from_millimeters(s.line_length_mm),
    };
    Ok(if s.shielded { spec.build_shielded()? } else { spec.build()? })
}

/// Builds the scenario's single-line ladder specification: the scenario wire
/// driven by the size-`h` buffer, discretised into `ladder_sections`
/// π-segments per millimetre-independent section count.
pub fn scenario_ladder_spec(s: &Scenario) -> Result<LadderSpec, SweepError> {
    let tech = s.technology.technology();
    let line = scenario_line(s)?;
    let mut spec = LadderSpec::new(
        line.total_resistance(),
        line.total_inductance(),
        line.total_capacitance(),
        tech.buffer_resistance(s.driver_size)?,
        tech.buffer_capacitance(s.driver_size)?,
    );
    spec.segments = s.ladder_sections.max(1);
    spec.supply = tech.supply;
    Ok(spec)
}

fn scenario_drive(s: &Scenario) -> Result<(Technology, BusDrive), SweepError> {
    let tech = s.technology.technology();
    let drive = BusDrive::new(
        tech.buffer_resistance(s.driver_size)?,
        tech.buffer_capacitance(s.driver_size)?,
        tech.supply,
    )
    .with_sections(s.ladder_sections);
    Ok((tech, drive))
}

/// Closed-form delay models (`rlckit-core`): the paper's Eq. (9) against the
/// RC baselines it improves on, for the scenario line driven by a size-`h`
/// buffer.
#[derive(Debug, Clone, Copy, Default)]
pub struct DelayModelEvaluator;

impl Evaluator for DelayModelEvaluator {
    fn name(&self) -> &'static str {
        "delay_model"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "rlc_delay_ps",
            "elmore_delay_ps",
            "sakurai_delay_ps",
            "lumped_rc_delay_ps",
            "elmore_error_pct",
            "sakurai_error_pct",
            "lumped_rc_error_pct",
            "zeta",
        ]
    }

    fn evaluate(&self, s: &Scenario) -> Result<Vec<f64>, SweepError> {
        let tech = s.technology.technology();
        let line = scenario_line(s)?;
        let load = GateRlcLoad::from_line(
            &line,
            tech.buffer_resistance(s.driver_size)?,
            tech.buffer_capacitance(s.driver_size)?,
        )?;
        let rlc = propagation_delay(&load).picoseconds();
        let elmore = rc_models::elmore_delay(&load).picoseconds();
        let sakurai = rc_models::sakurai_delay(&load).picoseconds();
        let lumped = rc_models::lumped_rc_delay(&load).picoseconds();
        let err = |rc: f64| 100.0 * (rc - rlc) / rlc;
        Ok(vec![rlc, elmore, sakurai, lumped, err(elmore), err(sakurai), err(lumped), load.zeta()])
    }
}

/// Repeater insertion (`rlckit-repeater`): the Bakoglu RC and Ismail–Friedman
/// RLC optima for the scenario line, plus the delay/area/energy penalties of
/// designing RC-only (Eqs. 14–18).
#[derive(Debug, Clone, Copy, Default)]
pub struct RepeaterOptimumEvaluator;

impl Evaluator for RepeaterOptimumEvaluator {
    fn name(&self) -> &'static str {
        "repeater_optimum"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "t_l_over_r",
            "h_rc",
            "k_rc",
            "h_rlc",
            "k_rlc",
            "rc_delay_ps",
            "rlc_delay_ps",
            "delay_penalty_pct",
            "area_penalty_pct",
            "energy_penalty_pct",
        ]
    }

    fn evaluate(&self, s: &Scenario) -> Result<Vec<f64>, SweepError> {
        let tech = s.technology.technology();
        let line = scenario_line(s)?;
        let problem = RepeaterProblem::for_line(&line, &tech)?;
        let cmp = comparison::compare(&problem)?;
        Ok(vec![
            cmp.t_l_over_r,
            cmp.rc_design.size,
            cmp.rc_design.sections,
            cmp.rlc_design.size,
            cmp.rlc_design.sections,
            cmp.rc_design.total_delay.picoseconds(),
            cmp.rlc_design.total_delay.picoseconds(),
            cmp.delay_increase_percent,
            cmp.area_increase_percent,
            cmp.energy_increase_percent,
        ])
    }
}

/// An explicit repeater design point (`rlckit-repeater`): evaluates
/// `tpdtotal(h, k)` at the scenario's `driver_size` and `sections` — the
/// knobs an `(h, k)` sweep axis drives directly — plus the area/energy of
/// that design and its delay overhead against the closed-form RLC optimum.
#[derive(Debug, Clone, Copy, Default)]
pub struct RepeaterDesignPointEvaluator;

impl Evaluator for RepeaterDesignPointEvaluator {
    fn name(&self) -> &'static str {
        "repeater_design_point"
    }

    fn columns(&self) -> &'static [&'static str] {
        &["total_delay_ps", "area_um2", "energy_fj", "delay_vs_optimum_pct"]
    }

    fn evaluate(&self, s: &Scenario) -> Result<Vec<f64>, SweepError> {
        let tech = s.technology.technology();
        let line = scenario_line(s)?;
        let problem = RepeaterProblem::for_line(&line, &tech)?;
        let design = problem.design(s.driver_size, s.sections)?;
        let optimum = problem.rlc_optimum();
        let delay = design.total_delay.picoseconds();
        let opt = optimum.total_delay.picoseconds();
        Ok(vec![
            delay,
            problem.repeater_area(&design).square_micrometers(),
            problem.switching_energy(&design).joules() * 1e15,
            100.0 * (delay - opt) / opt,
        ])
    }
}

/// Reduced-order delay evaluation (`rlckit-reduce`): the order-`q` PRIMA
/// model's closed-form `delay_50`/overshoot/settling against the full
/// transient simulation of the same ladder — the accuracy-vs-order story
/// behind `FIG_mor_accuracy_vs_order.csv` and the speed story behind
/// `BENCH_mor.json`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReducedDelayEvaluator;

impl Evaluator for ReducedDelayEvaluator {
    fn name(&self) -> &'static str {
        "reduced_delay"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "order",
            "reduced_delay_ps",
            "transient_delay_ps",
            "delay_error_pct",
            "reduced_overshoot_pct",
            "transient_overshoot_pct",
            "settling_ps",
        ]
    }

    fn evaluate(&self, s: &Scenario) -> Result<Vec<f64>, SweepError> {
        let spec = scenario_ladder_spec(s)?;
        let reduced = reduce_ladder(&spec, s.reduction_order, SolverBackend::Auto)?;
        let metrics = reduced.metrics()?;
        let full = measure_step_delay(&spec)?;
        let fast = metrics.delay_50.picoseconds();
        let reference = full.delay_50.picoseconds();
        Ok(vec![
            s.reduction_order as f64,
            fast,
            reference,
            100.0 * (fast - reference).abs() / reference,
            metrics.overshoot_percent,
            full.overshoot_percent,
            metrics.settling_time.picoseconds(),
        ])
    }
}

/// Coupled-bus crosstalk (`rlckit-coupling`): transient simulation of the
/// victim-quiet, odd-mode and even-mode patterns plus the isolated-line
/// baseline, on the scenario bus. The victim is the middle signal wire.
#[derive(Debug, Clone, Copy, Default)]
pub struct BusCrosstalkEvaluator;

impl Evaluator for BusCrosstalkEvaluator {
    fn name(&self) -> &'static str {
        "bus_crosstalk"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "isolated_delay_ps",
            "even_delay_ps",
            "odd_delay_ps",
            "pushout_ps",
            "pullin_ps",
            "pushout_pct",
            "noise_frac",
        ]
    }

    fn evaluate(&self, s: &Scenario) -> Result<Vec<f64>, SweepError> {
        let bus = scenario_bus(s)?;
        let (tech, drive) = scenario_drive(s)?;
        let victim = bus.signal_count() / 2;
        let m = crosstalk_metrics(&bus, victim, &drive)?;
        Ok(vec![
            m.isolated_delay.picoseconds(),
            m.even_mode_delay.picoseconds(),
            m.odd_mode_delay.picoseconds(),
            m.pushout().picoseconds(),
            m.pullin().picoseconds(),
            100.0 * m.pushout().seconds() / m.isolated_delay.seconds(),
            m.noise_fraction(tech.supply),
        ])
    }
}

/// Bus-aware repeater evaluation (`rlckit-coupling`): how far worst-case
/// (odd-mode) switching pushes the paper's closed-form repeater optimum for
/// the victim wire, and where the simulated worst-case optimum moves.
#[derive(Debug, Clone, Copy, Default)]
pub struct BusRepeaterEvaluator;

impl Evaluator for BusRepeaterEvaluator {
    fn name(&self) -> &'static str {
        "bus_repeater"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "k_isolated",
            "k_bus",
            "section_shift",
            "even_total_ps",
            "worst_total_ps",
            "bus_worst_total_ps",
            "pushout_frac",
        ]
    }

    fn evaluate(&self, s: &Scenario) -> Result<Vec<f64>, SweepError> {
        let bus = scenario_bus(s)?;
        let tech = s.technology.technology();
        let victim = bus.signal_count() / 2;
        let shift = evaluate_bus_repeaters(&bus, victim, &tech, s.ladder_sections)?;
        Ok(vec![
            shift.isolated_optimum.rounded_sections() as f64,
            shift.bus_sections as f64,
            shift.section_shift() as f64,
            shift.even_mode_delay.picoseconds(),
            shift.worst_case_delay.picoseconds(),
            shift.bus_worst_case_delay.picoseconds(),
            shift.pushout_fraction(),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::TechnologyNode;

    #[test]
    fn delay_model_rows_match_their_columns() {
        let eval = DelayModelEvaluator;
        let row = eval.evaluate(&Scenario::default()).unwrap();
        assert_eq!(row.len(), eval.columns().len());
        let rlc = row[0];
        let elmore = row[1];
        assert!(rlc > 0.0 && elmore > rlc, "Elmore must be pessimistic on the default wire");
        assert!(row[4] > 0.0, "Elmore error percentage must be positive");
    }

    #[test]
    fn repeater_optimum_shows_the_paper_shift() {
        let eval = RepeaterOptimumEvaluator;
        let s = Scenario { line_length_mm: 50.0, ..Scenario::default() };
        let row = eval.evaluate(&s).unwrap();
        assert_eq!(row.len(), eval.columns().len());
        let (k_rc, k_rlc) = (row[2], row[4]);
        assert!(k_rlc < k_rc, "inductance must reduce the optimal repeater count");
        assert!(row[7] > 0.0 && row[8] > 0.0, "penalties must be positive");
    }

    #[test]
    fn line_overrides_replace_the_technology_wire() {
        let s = Scenario {
            resistance_ohm_per_mm: Some(3.0),
            inductance_nh_per_mm: Some(0.7),
            capacitance_ff_per_um: Some(0.3),
            line_length_mm: 10.0,
            ..Scenario::default()
        };
        let line = scenario_line(&s).unwrap();
        assert!((line.total_resistance().ohms() - 30.0).abs() < 1e-9);
        assert!((line.total_inductance().nanohenries() - 7.0).abs() < 1e-9);
        assert!((line.total_capacitance().picofarads() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn scenario_bus_respects_layout_fields() {
        let s = Scenario { bus_lines: 2, line_length_mm: 1.0, ..Scenario::default() };
        let bus = scenario_bus(&s).unwrap();
        assert_eq!(bus.signal_count(), 2);
        assert_eq!(bus.conductors(), 2);
        let shielded = scenario_bus(&Scenario { shielded: true, ..s }).unwrap();
        assert_eq!(shielded.signal_count(), 2);
        assert_eq!(shielded.conductors(), 3, "a shield is interleaved");
    }

    #[test]
    fn inductive_coupling_survives_shield_interleaving() {
        // Shields remove capacitive neighbours, not mutual inductance: the
        // signal pair of a shielded 2-line bus sits at separation 2 and must
        // keep the documented k1·0.43^(d−1) falloff.
        let s = Scenario {
            bus_lines: 2,
            line_length_mm: 1.0,
            inductive_coupling: 0.35,
            shielded: true,
            ..Scenario::default()
        };
        let bus = scenario_bus(&s).unwrap();
        let k = bus.coupling_coefficient(0, 2);
        assert!((k - 0.35 * 0.43).abs() < 1e-12, "signal-signal k = {k}");
        // Unshielded 4-line bus: separation 3 keeps a geometric tail too.
        let s = Scenario { bus_lines: 4, line_length_mm: 1.0, ..Scenario::default() };
        let bus = scenario_bus(&s).unwrap();
        let k = bus.coupling_coefficient(0, 3);
        assert!((k - 0.35 * 0.43 * 0.43).abs() < 1e-12, "separation-3 k = {k}");
    }

    #[test]
    fn repeater_design_point_consumes_the_sections_axis() {
        let eval = RepeaterDesignPointEvaluator;
        let base = Scenario { line_length_mm: 50.0, driver_size: 50.0, ..Scenario::default() };
        let one = eval.evaluate(&Scenario { sections: 1.0, ..base.clone() }).unwrap();
        let four = eval.evaluate(&Scenario { sections: 4.0, ..base }).unwrap();
        assert_eq!(one.len(), eval.columns().len());
        assert_ne!(one[0], four[0], "the sections axis must change the design point");
        assert!(four[1] > one[1], "more repeaters must cost more area");
        assert!(four[2] > one[2], "more repeaters must switch more energy");
        assert!(one[3] >= 0.0 && four[3] >= 0.0, "no design beats the optimum");
    }

    #[test]
    fn bus_crosstalk_orders_the_three_delays() {
        // Tiny bus so the debug-profile transient stays quick.
        let s = Scenario {
            technology: TechnologyNode::N180,
            bus_lines: 2,
            line_length_mm: 2.0,
            driver_size: 40.0,
            ladder_sections: 4,
            ..Scenario::default()
        };
        let eval = BusCrosstalkEvaluator;
        let row = eval.evaluate(&s).unwrap();
        assert_eq!(row.len(), eval.columns().len());
        let (isolated, even, odd) = (row[0], row[1], row[2]);
        assert!(odd > isolated && isolated > even, "odd {odd} / iso {isolated} / even {even}");
        assert!(row[5] > 0.0, "push-out percentage must be positive");
        assert!(row[6] > 0.0 && row[6] < 1.0, "noise fraction in (0, 1)");
    }

    #[test]
    fn reduced_delay_tracks_the_transient_at_moderate_order() {
        // Coarse ladder + q = 6 keeps the debug-profile cost of the
        // reference transient small; the reduced delay must sit within a
        // few per cent of it and the error column must be consistent. The
        // wire overrides pin the paper's RLC regime (R = 500 Ω, 10 nH,
        // 1 pF): on nearly lossless tech wires the delay is wave-dominated
        // and converges slowly in `q` — a documented MOR limitation, not
        // what this test is about.
        let s = Scenario {
            line_length_mm: 5.0,
            resistance_ohm_per_mm: Some(100.0),
            inductance_nh_per_mm: Some(2.0),
            capacitance_ff_per_um: Some(0.2),
            ladder_sections: 10,
            reduction_order: 6,
            ..Scenario::default()
        };
        let eval = ReducedDelayEvaluator;
        let row = eval.evaluate(&s).unwrap();
        assert_eq!(row.len(), eval.columns().len());
        assert_eq!(row[0], 6.0, "order column echoes the scenario");
        let (fast, reference, err_pct) = (row[1], row[2], row[3]);
        assert!(fast > 0.0 && reference > 0.0);
        assert!(err_pct < 3.0, "order-6 delay error {err_pct}% too large");
        assert!((err_pct - 100.0 * (fast - reference).abs() / reference).abs() < 1e-9);
        assert!(row[6] > fast, "settling time must exceed the 50% delay");
    }

    #[test]
    fn mesh_delay_rows_match_their_columns_and_grow_with_the_grid() {
        let base = Scenario {
            technology: TechnologyNode::N180,
            line_length_mm: 2.0,
            driver_size: 40.0,
            mesh_rows: 4,
            mesh_cols: 4,
            ..Scenario::default()
        };
        let eval = MeshDelayEvaluator;
        let small = eval.evaluate(&base).unwrap();
        assert_eq!(small.len(), eval.columns().len());
        assert!(small[0] > 0.0 && small[1] > 0.0, "delay and rise time positive");
        assert_eq!(small[3], 18.0, "4×4 grid + pad + source branch");
        // The grid spans the same line length, so refining it adds unknowns
        // while the total wire stays in the same ballpark (52 segments of
        // pitch L/7 vs 24 of pitch L/3).
        let wide = eval.evaluate(&Scenario { mesh_rows: 4, mesh_cols: 8, ..base }).unwrap();
        assert_eq!(wide[3], 34.0);
        assert!((wide[4] / small[4] - 52.0 / 7.0 * 3.0 / 24.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_scenarios_surface_as_evaluation_errors() {
        let s = Scenario { line_length_mm: -1.0, ..Scenario::default() };
        assert!(matches!(DelayModelEvaluator.evaluate(&s), Err(SweepError::Evaluation { .. })));
        let s = Scenario { driver_size: 0.0, ..Scenario::default() };
        assert!(DelayModelEvaluator.evaluate(&s).is_err());
    }

    #[test]
    fn sram_read_rows_match_their_columns_and_grow_with_the_array() {
        let eval = SramReadEvaluator;
        let small = eval.evaluate(&Scenario { sram_rows: 2, sram_cols: 2, ..Scenario::default() });
        let small = small.unwrap();
        assert_eq!(small.len(), eval.columns().len());
        assert!(small[0] > 0.0 && small[1] > 0.0, "delay and rise time positive");
        assert_eq!(small[2], 15.0, "3·rows·cols + 3 unknowns");
        assert_eq!(small[3], 4.0);
        let wide =
            eval.evaluate(&Scenario { sram_rows: 4, sram_cols: 4, ..Scenario::default() }).unwrap();
        assert_eq!(wide[2], 51.0);
        assert!(wide[0] > small[0], "a longer wordline/bitline path reads slower");
        // Degenerate arrays surface as evaluation errors, not panics.
        let bad = eval.evaluate(&Scenario { sram_rows: 0, sram_cols: 4, ..Scenario::default() });
        assert!(matches!(bad, Err(SweepError::Evaluation { .. })));
    }
}

/// The branching-tree workload (`rlckit-interconnect` → `rlckit-circuit` →
/// `rlckit-repeater`): a symmetric routing tree whose every root-to-sink
/// path is electrically the scenario line, simulated once for per-sink
/// timing (tree MNA systems route to the sparse solver backend) and
/// evaluated per path with the paper's repeater closed forms.
#[derive(Debug, Clone, Copy, Default)]
pub struct TreeDelayEvaluator;

impl Evaluator for TreeDelayEvaluator {
    fn name(&self) -> &'static str {
        "tree_delay"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "worst_sink_delay_ps",
            "sink_spread_ps",
            "worst_overshoot_pct",
            "sinks",
            "repeater_rlc_delay_ps",
            "repeater_rc_delay_ps",
            "rc_penalty_pct",
        ]
    }

    fn evaluate(&self, s: &Scenario) -> Result<Vec<f64>, SweepError> {
        let tech = s.technology.technology();
        let line = scenario_line(s)?;
        let tree = RoutingTree::symmetric(
            &line,
            s.tree_levels,
            s.tree_fanout,
            tech.buffer_capacitance(s.driver_size)?,
        )?;
        let spec = tree.to_tree_spec(
            tech.buffer_resistance(s.driver_size)?,
            tech.supply,
            s.ladder_sections.max(1),
        )?;
        let report = measure_tree_delays(&spec)?;
        let repeaters = evaluate_tree_repeaters(&tree, &tech)?;
        let worst = report.worst_sink();
        Ok(vec![
            worst.delay_50.picoseconds(),
            report.sink_spread().picoseconds(),
            report.worst_overshoot_percent(),
            report.sinks.len() as f64,
            repeaters.worst_sink_delay_rlc().picoseconds(),
            repeaters.worst_sink_delay_rc().picoseconds(),
            repeaters.rc_design_penalty_percent(),
        ])
    }
}

/// The power/clock-mesh workload (`rlckit-interconnect` → `rlckit-circuit`):
/// a `mesh_rows × mesh_cols` grid of scenario wire spanning the scenario
/// line length along its longer side, driven at the near corner by the
/// size-`h` buffer and measured at the far corner. Grid MNA systems force
/// genuine fill, so this is the sweep-level face of the sparse kernel's
/// AMD-plus-refactorization path.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeshDelayEvaluator;

impl Evaluator for MeshDelayEvaluator {
    fn name(&self) -> &'static str {
        "mesh_delay"
    }

    fn columns(&self) -> &'static [&'static str] {
        &["far_corner_delay_ps", "rise_time_ps", "overshoot_pct", "unknowns", "total_wire_mm"]
    }

    fn evaluate(&self, s: &Scenario) -> Result<Vec<f64>, SweepError> {
        let tech = s.technology.technology();
        let line = scenario_line(s)?;
        let span = s.mesh_rows.max(s.mesh_cols).saturating_sub(1).max(1);
        let pitch = line.with_length(line.length() / span as f64)?;
        let mesh = MeshGeometry::new(s.mesh_rows, s.mesh_cols, pitch)?;
        let spec = mesh.to_mesh_spec(tech.buffer_resistance(s.driver_size)?, tech.supply, false)?;
        let report = measure_mesh_delay(&spec)?;
        Ok(vec![
            report.delay_50.picoseconds(),
            report.rise_time.picoseconds(),
            report.overshoot_percent,
            spec.unknown_count() as f64,
            mesh.total_wire_length().millimeters(),
        ])
    }
}

/// The netlist-frontend workload (`rlckit-netlist` → `rlckit-circuit`): a
/// `sram_rows × sram_cols` SRAM bitline/wordline array emitted as a SPICE
/// deck, lowered back through the parser, and simulated for the far-corner
/// read delay. Unlike every other evaluator this one reaches the MNA stamps
/// through deck text, so sweeping it continuously exercises the
/// parse → lower → simulate path end to end.
#[derive(Debug, Clone, Copy, Default)]
pub struct SramReadEvaluator;

impl Evaluator for SramReadEvaluator {
    fn name(&self) -> &'static str {
        "sram_read"
    }

    fn columns(&self) -> &'static [&'static str] {
        &["read_delay_ps", "rise_time_ps", "unknowns", "cells"]
    }

    fn evaluate(&self, s: &Scenario) -> Result<Vec<f64>, SweepError> {
        let spec = SramArraySpec::new(s.sram_rows, s.sram_cols);
        let report = measure_sram_read(&spec, SolverBackend::Auto)?;
        Ok(vec![
            report.delay_50.picoseconds(),
            report.rise_time.picoseconds(),
            report.unknowns as f64,
            (s.sram_rows * s.sram_cols) as f64,
        ])
    }
}
