//! Structured emitters for sweep results: CSV and flat JSON.
//!
//! Both sinks render a [`SweepResult`] deterministically — same result, same
//! bytes — which is what lets the committed figure artifacts double as drift
//! detectors in CI. Floats are rendered with Rust's shortest round-trip
//! `Display`, so re-parsing a CSV recovers the exact values.

use std::fmt::Write as _;
use std::path::Path;

use crate::error::SweepError;
use crate::exec::SweepResult;

/// Renders sweep results as CSV: one axis column per axis, then one metric
/// column per evaluator column. Cells of failed rows are left empty.
#[derive(Debug, Clone, Copy, Default)]
pub struct CsvSink;

impl CsvSink {
    /// Renders the result as a CSV document (with header row).
    pub fn render(&self, result: &SweepResult) -> String {
        let mut out = String::new();
        let mut header: Vec<&str> = result.axis_names.iter().map(String::as_str).collect();
        header.extend(result.columns.iter().map(String::as_str));
        let _ = writeln!(out, "{}", header.join(","));
        for row in &result.rows {
            let mut cells: Vec<String> = row.labels.iter().map(|l| csv_field(l)).collect();
            match &row.values {
                Ok(values) => cells.extend(values.iter().map(|v| format!("{v}"))),
                Err(_) => cells.extend(std::iter::repeat_n(String::new(), result.columns.len())),
            }
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }

    /// Renders and writes the result to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Io`] if the file cannot be written.
    pub fn write(&self, result: &SweepResult, path: &Path) -> Result<(), SweepError> {
        std::fs::write(path, self.render(result))?;
        Ok(())
    }
}

/// Renders sweep results as a flat JSON document mirroring the CSV layout,
/// with per-row error messages preserved.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonSink;

impl JsonSink {
    /// Renders the result as a JSON document.
    pub fn render(&self, result: &SweepResult) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"evaluator\": \"{}\",", escape_json(&result.evaluator));
        let _ = writeln!(out, "  \"axes\": [{}],", quoted_list(&result.axis_names));
        let _ = writeln!(out, "  \"columns\": [{}],", quoted_list(&result.columns));
        let _ = writeln!(
            out,
            "  \"cache_hits\": {}, \"computed\": {},",
            result.cache_hits, result.computed
        );
        let _ = writeln!(out, "  \"rows\": [");
        for (i, row) in result.rows.iter().enumerate() {
            let comma = if i + 1 < result.rows.len() { "," } else { "" };
            let labels = quoted_list(&row.labels);
            match &row.values {
                Ok(values) => {
                    let values: Vec<String> = values.iter().map(|v| json_number(*v)).collect();
                    let _ = writeln!(
                        out,
                        "    {{\"labels\": [{labels}], \"values\": [{}]}}{comma}",
                        values.join(", ")
                    );
                }
                Err(e) => {
                    let _ = writeln!(
                        out,
                        "    {{\"labels\": [{labels}], \"error\": \"{}\"}}{comma}",
                        escape_json(e)
                    );
                }
            }
        }
        let _ = writeln!(out, "  ]");
        let _ = write!(out, "}}");
        out
    }

    /// Renders and writes the result to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Io`] if the file cannot be written.
    pub fn write(&self, result: &SweepResult, path: &Path) -> Result<(), SweepError> {
        std::fs::write(path, self.render(result))?;
        Ok(())
    }
}

/// Quotes a CSV field only when it contains a separator, quote or newline.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

fn quoted_list(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape_json(s))).collect();
    quoted.join(", ")
}

/// Escapes backslash, quote and control characters for JSON string literals.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a number so the output is always valid JSON (no NaN/inf literals).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::DelayModelEvaluator;
    use crate::exec::{run_sweep, SweepOptions};
    use crate::scenario::{Param, Scenario};
    use crate::spec::{Axis, SweepSpec};

    fn sample() -> SweepResult {
        let spec = SweepSpec::new(Scenario::default())
            .axis(Axis::new("length_mm", [5.0, 10.0].map(Param::LineLengthMm)))
            .axis(Axis::new("h", [100.0, -1.0].map(Param::DriverSize)));
        run_sweep(&spec, &DelayModelEvaluator, &SweepOptions::with_threads(1)).unwrap()
    }

    #[test]
    fn csv_has_axis_and_metric_columns_and_blank_error_cells() {
        let result = sample();
        let csv = CsvSink.render(&result);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("length_mm,h,rlc_delay_ps,"));
        assert_eq!(csv.lines().count(), 5, "header + 4 rows");
        // The h = -1 rows fail; their metric cells are empty.
        let bad_row = csv.lines().nth(2).unwrap();
        assert!(bad_row.starts_with("5,-1,"));
        assert!(bad_row.ends_with(",,,,,,,"), "bad row {bad_row:?} must have empty metrics");
    }

    #[test]
    fn csv_rendering_is_deterministic() {
        let result = sample();
        assert_eq!(CsvSink.render(&result), CsvSink.render(&result));
    }

    #[test]
    fn csv_fields_are_quoted_when_needed() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    fn json_mirrors_the_rows_and_keeps_errors() {
        let result = sample();
        let json = JsonSink.render(&result);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"evaluator\": \"delay_model\""));
        assert!(json.contains("\"axes\": [\"length_mm\", \"h\"]"));
        assert!(json.contains("\"error\": \""));
        assert!(json.contains("\"values\": ["));
        assert_eq!(escape_json("a\"\n\u{1}"), "a\\\"\\n\\u0001");
        assert_eq!(json_number(f64::NAN), "null");
    }

    #[test]
    fn sinks_write_files() {
        let dir = std::env::temp_dir().join(format!("rlckit-sweep-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let result = sample();
        let csv_path = dir.join("out.csv");
        let json_path = dir.join("out.json");
        CsvSink.write(&result, &csv_path).unwrap();
        JsonSink.write(&result, &json_path).unwrap();
        assert_eq!(std::fs::read_to_string(&csv_path).unwrap(), CsvSink.render(&result));
        assert_eq!(std::fs::read_to_string(&json_path).unwrap(), JsonSink.render(&result));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
