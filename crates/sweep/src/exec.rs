//! The multi-threaded sweep executor.
//!
//! Expanded cells are resolved against the content-hash cache first; the
//! misses then go through a chunked work-queue over `std::thread` (no
//! external dependencies — the workspace is offline). Workers claim chunks of
//! cells with a single atomic counter and write each result back into its
//! cell's slot, so the output ordering is **deterministic and identical for
//! every thread count**: row `i` of a [`SweepResult`] is always grid cell `i`
//! of the spec's row-major expansion, whether it was computed by one thread,
//! sixteen, or replayed from the cache.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::cache::{cache_key, SweepCache};
use crate::error::SweepError;
use crate::eval::Evaluator;
use crate::scenario::Scenario;
use crate::spec::SweepSpec;

/// A computed cell in flight between a worker and the result assembly:
/// `(cell index, cache key, outcome, wall seconds when profiling)`.
type ComputedCell = (usize, u64, Result<Vec<f64>, String>, Option<f64>);

/// Execution policy for one sweep run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    /// Worker thread count (at least 1).
    pub threads: usize,
    /// Cells claimed per queue pop; `0` picks a size that gives each worker
    /// several chunks for load balancing.
    pub chunk: usize,
}

impl Default for SweepOptions {
    /// One worker per available core, capped at 8; automatic chunking.
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get()).min(8);
        Self { threads, chunk: 0 }
    }
}

impl SweepOptions {
    /// A policy with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Self { threads: threads.max(1), chunk: 0 }
    }
}

/// One evaluated grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Row-major cell index (equals this row's position in the result).
    pub index: usize,
    /// One label per axis, aligned with [`SweepResult::axis_names`].
    pub labels: Vec<String>,
    /// The resolved scenario this row was evaluated at.
    pub scenario: Scenario,
    /// The metric row, or the evaluation error message for this cell (one bad
    /// cell does not abort a large sweep).
    pub values: Result<Vec<f64>, String>,
    /// Whether the row was replayed from the cache.
    pub from_cache: bool,
}

/// The complete, deterministically ordered outcome of one sweep run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Name of the evaluator that produced the metric columns.
    pub evaluator: String,
    /// Axis names, in spec declaration order.
    pub axis_names: Vec<String>,
    /// Metric column names, in evaluator order.
    pub columns: Vec<String>,
    /// One row per grid cell, in row-major cell order.
    pub rows: Vec<SweepRow>,
    /// Number of rows replayed from the cache.
    pub cache_hits: usize,
    /// Number of rows computed by the workers in this run.
    pub computed: usize,
    /// Wall-clock seconds per computed cell as `(cell index, seconds)`,
    /// sorted by cell index. Empty unless profiling
    /// ([`rlckit_telemetry::enabled`]) was active during the run; cached
    /// cells never appear (they cost no evaluation).
    pub cell_seconds: Vec<(usize, f64)>,
    /// Snapshot of the process-wide numerical-health registry taken when the
    /// run finished (cumulative across the process, like every telemetry
    /// registry). Empty unless profiling was active.
    pub health: rlckit_telemetry::HealthReport,
}

impl SweepResult {
    /// Returns the first per-cell evaluation error, if any cell failed.
    pub fn first_error(&self) -> Option<(usize, &str)> {
        self.rows.iter().find_map(|r| r.values.as_ref().err().map(|e| (r.index, e.as_str())))
    }

    /// Indices of every cell whose evaluation failed, in cell order.
    pub fn failed_cells(&self) -> Vec<usize> {
        self.rows.iter().filter(|r| r.values.is_err()).map(|r| r.index).collect()
    }

    /// The `k` slowest computed cells as `(cell index, seconds)`, slowest
    /// first (ties broken by cell index for determinism). Empty unless the
    /// run was profiled — see [`SweepResult::cell_seconds`].
    pub fn slowest_cells(&self, k: usize) -> Vec<(usize, f64)> {
        let mut ranked = self.cell_seconds.clone();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        ranked.truncate(k);
        ranked
    }
}

/// Runs a sweep without persistence (a throwaway in-memory cache).
///
/// # Errors
///
/// Returns [`SweepError::Spec`] for a degenerate spec. Per-cell evaluation
/// failures do not abort the run; they are recorded in each row's `values`.
pub fn run_sweep(
    spec: &SweepSpec,
    evaluator: &dyn Evaluator,
    options: &SweepOptions,
) -> Result<SweepResult, SweepError> {
    run_sweep_cached(spec, evaluator, options, &mut SweepCache::in_memory())
}

/// Runs a sweep against a result cache: cells whose content hash is already
/// memoised are replayed, only changed cells are computed (and then inserted
/// into the cache). Call [`SweepCache::save`] afterwards to persist.
///
/// # Errors
///
/// Returns [`SweepError::Spec`] for a degenerate spec. Per-cell evaluation
/// failures do not abort the run; they are recorded in each row's `values`
/// and never cached.
pub fn run_sweep_cached(
    spec: &SweepSpec,
    evaluator: &dyn Evaluator,
    options: &SweepOptions,
    cache: &mut SweepCache,
) -> Result<SweepResult, SweepError> {
    let _span = rlckit_telemetry::span("sweep.run");
    let cells = spec.expand()?;
    let threads = options.threads.max(1);

    // Resolve cache hits up front; collect the misses for the work queue.
    let mut slots: Vec<Option<Result<Vec<f64>, String>>> = vec![None; cells.len()];
    let mut pending: Vec<(usize, u64)> = Vec::new();
    for cell in &cells {
        let key = cache_key(evaluator, &cell.scenario);
        match cache.get(key) {
            Some(values) => slots[cell.index] = Some(Ok(values.clone())),
            None => pending.push((cell.index, key)),
        }
    }
    let cache_hits = cells.len() - pending.len();
    rlckit_telemetry::counter_add("sweep.cache_hits", cache_hits as u64);
    rlckit_telemetry::counter_add("sweep.cache_misses", pending.len() as u64);

    // Chunked work queue: one atomic cursor over the pending list. Chunks keep
    // queue traffic low on big grids while still giving each worker several
    // pops for load balancing on skewed cell costs.
    let chunk =
        if options.chunk > 0 { options.chunk } else { (pending.len() / (threads * 4)).max(1) };
    let computed: Mutex<Vec<ComputedCell>> = Mutex::new(Vec::with_capacity(pending.len()));
    let cursor = AtomicUsize::new(0);
    // Hoisted once per run: workers pay one branch per chunk, not an atomic
    // load per cell, and the per-worker clocks only exist while profiling.
    let profiling = rlckit_telemetry::enabled();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(pending.len().max(1)) {
            scope.spawn(|| loop {
                let wait_start = profiling.then(std::time::Instant::now);
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= pending.len() {
                    break;
                }
                let end = (start + chunk).min(pending.len());
                if let Some(t) = wait_start {
                    rlckit_telemetry::observe_seconds(
                        "sweep.worker_wait_seconds",
                        t.elapsed().as_secs_f64(),
                    );
                }
                let busy_start = profiling.then(std::time::Instant::now);
                let mut local = Vec::with_capacity(end - start);
                for &(index, key) in &pending[start..end] {
                    // The indexed span tags this cell in the timeline trace
                    // (`sweep.cell[i]`) while aggregating under `sweep.cell`
                    // in the profile registry.
                    let _cell_span = rlckit_telemetry::span_indexed("sweep.cell", index as u64);
                    let cell_start = profiling.then(std::time::Instant::now);
                    let outcome = evaluate_checked(evaluator, &cells[index].scenario);
                    let seconds = cell_start.map(|t| t.elapsed().as_secs_f64());
                    local.push((index, key, outcome, seconds));
                }
                if let Some(t) = busy_start {
                    rlckit_telemetry::observe_seconds(
                        "sweep.worker_busy_seconds",
                        t.elapsed().as_secs_f64(),
                    );
                }
                computed.lock().expect("worker panicked holding results").extend(local);
            });
        }
    });

    let computed = computed.into_inner().expect("worker panicked holding results");
    let computed_count = computed.len();
    debug_assert_eq!(computed_count, pending.len());
    rlckit_telemetry::counter_add("sweep.cells_evaluated", computed_count as u64);
    let mut cell_seconds: Vec<(usize, f64)> = Vec::new();
    for (index, key, outcome, seconds) in computed {
        if let Ok(values) = &outcome {
            cache.insert(key, values.clone());
        }
        if let Some(s) = seconds {
            cell_seconds.push((index, s));
        }
        slots[index] = Some(outcome);
    }
    cell_seconds.sort_unstable_by_key(|&(index, _)| index);

    let rows = cells
        .into_iter()
        .map(|cell| {
            let values = slots[cell.index].take().expect("every cell resolved or computed");
            // A row came from the cache iff it never entered the pending list
            // (which is sorted by cell index by construction).
            let from_cache = pending.binary_search_by_key(&cell.index, |&(i, _)| i).is_err();
            SweepRow {
                index: cell.index,
                labels: cell.labels,
                scenario: cell.scenario,
                values,
                from_cache,
            }
        })
        .collect();

    Ok(SweepResult {
        evaluator: evaluator.name().to_owned(),
        axis_names: spec.axis_names(),
        columns: evaluator.columns().iter().map(|c| (*c).to_owned()).collect(),
        rows,
        cache_hits,
        computed: computed_count,
        cell_seconds,
        health: if profiling {
            rlckit_telemetry::Collector::snapshot().health
        } else {
            rlckit_telemetry::HealthReport::default()
        },
    })
}

/// Evaluates one scenario and verifies the row width against the declared
/// columns, turning model errors into per-cell strings.
fn evaluate_checked(evaluator: &dyn Evaluator, scenario: &Scenario) -> Result<Vec<f64>, String> {
    match evaluator.evaluate(scenario) {
        Ok(values) if values.len() == evaluator.columns().len() => Ok(values),
        Ok(values) => Err(format!(
            "evaluator '{}' returned {} values for {} columns",
            evaluator.name(),
            values.len(),
            evaluator.columns().len()
        )),
        Err(e) => Err(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::DelayModelEvaluator;
    use crate::scenario::Param;
    use crate::spec::Axis;

    fn small_spec() -> SweepSpec {
        SweepSpec::new(Scenario::default())
            .axis(Axis::new("length_mm", [5.0, 10.0, 20.0].map(Param::LineLengthMm)))
            .axis(Axis::new("h", [25.0, 100.0].map(Param::DriverSize)))
    }

    #[test]
    fn rows_come_back_in_cell_order_with_matching_labels() {
        let result =
            run_sweep(&small_spec(), &DelayModelEvaluator, &SweepOptions::with_threads(3)).unwrap();
        assert_eq!(result.rows.len(), 6);
        assert_eq!(result.axis_names, ["length_mm", "h"]);
        assert_eq!(result.columns.len(), DelayModelEvaluator.columns().len());
        assert_eq!(result.cache_hits, 0);
        assert_eq!(result.computed, 6);
        assert!(result.first_error().is_none());
        for (i, row) in result.rows.iter().enumerate() {
            assert_eq!(row.index, i);
            assert!(!row.from_cache);
            assert_eq!(row.values.as_ref().unwrap().len(), result.columns.len());
        }
        assert_eq!(result.rows[0].labels, ["5", "25"]);
        assert_eq!(result.rows[5].labels, ["20", "100"]);
    }

    #[test]
    fn second_run_is_served_entirely_from_cache() {
        let spec = small_spec();
        let mut cache = SweepCache::in_memory();
        let opts = SweepOptions::with_threads(2);
        let first = run_sweep_cached(&spec, &DelayModelEvaluator, &opts, &mut cache).unwrap();
        assert_eq!(first.computed, 6);
        assert_eq!(cache.len(), 6);
        let second = run_sweep_cached(&spec, &DelayModelEvaluator, &opts, &mut cache).unwrap();
        assert_eq!(second.computed, 0);
        assert_eq!(second.cache_hits, 6);
        for (a, b) in first.rows.iter().zip(second.rows.iter()) {
            assert!(b.from_cache);
            let (va, vb) = (a.values.as_ref().unwrap(), b.values.as_ref().unwrap());
            for (x, y) in va.iter().zip(vb.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "cache replay must be bit-exact");
            }
        }
    }

    #[test]
    fn only_changed_cells_recompute_when_the_spec_grows() {
        let mut cache = SweepCache::in_memory();
        let opts = SweepOptions::with_threads(2);
        run_sweep_cached(&small_spec(), &DelayModelEvaluator, &opts, &mut cache).unwrap();
        // Add one more length: only the two new cells (2 driver sizes) compute.
        let grown = SweepSpec::new(Scenario::default())
            .axis(Axis::new("length_mm", [5.0, 10.0, 20.0, 40.0].map(Param::LineLengthMm)))
            .axis(Axis::new("h", [25.0, 100.0].map(Param::DriverSize)));
        let result = run_sweep_cached(&grown, &DelayModelEvaluator, &opts, &mut cache).unwrap();
        assert_eq!(result.cache_hits, 6);
        assert_eq!(result.computed, 2);
    }

    #[test]
    fn bad_cells_are_recorded_not_fatal_and_never_cached() {
        let spec = SweepSpec::new(Scenario::default())
            .axis(Axis::new("h", [100.0, -1.0, 50.0].map(Param::DriverSize)));
        let mut cache = SweepCache::in_memory();
        let opts = SweepOptions::with_threads(2);
        let result = run_sweep_cached(&spec, &DelayModelEvaluator, &opts, &mut cache).unwrap();
        assert_eq!(result.rows.len(), 3);
        assert!(result.rows[0].values.is_ok());
        assert!(result.rows[1].values.is_err());
        assert!(result.rows[2].values.is_ok());
        let (index, _) = result.first_error().unwrap();
        assert_eq!(index, 1);
        assert_eq!(result.failed_cells(), vec![1]);
        assert_eq!(cache.len(), 2, "failed cells must not be memoised");
    }

    #[test]
    fn profiled_runs_record_cell_seconds_and_rank_slowest() {
        let _serial = rlckit_telemetry::test_support::lock();
        let _on = rlckit_telemetry::Collector::enable();
        let result =
            run_sweep(&small_spec(), &DelayModelEvaluator, &SweepOptions::with_threads(2)).unwrap();
        assert_eq!(result.cell_seconds.len(), 6, "every computed cell is timed");
        assert!(result.cell_seconds.windows(2).all(|w| w[0].0 < w[1].0), "sorted by index");
        assert!(result.cell_seconds.iter().all(|&(_, s)| s >= 0.0));
        let slow = result.slowest_cells(3);
        assert_eq!(slow.len(), 3);
        assert!(slow[0].1 >= slow[1].1 && slow[1].1 >= slow[2].1, "slowest first");
        assert!(result.slowest_cells(100).len() == 6, "k larger than the grid is clamped");
        assert!(result.failed_cells().is_empty());
    }

    #[test]
    fn unprofiled_runs_carry_no_timing_or_health() {
        let _serial = rlckit_telemetry::test_support::lock();
        let _off = rlckit_telemetry::Collector::disable();
        let result =
            run_sweep(&small_spec(), &DelayModelEvaluator, &SweepOptions::with_threads(2)).unwrap();
        assert!(result.cell_seconds.is_empty());
        assert!(result.health.is_empty());
        assert!(result.slowest_cells(5).is_empty());
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let spec = small_spec();
        let one = run_sweep(&spec, &DelayModelEvaluator, &SweepOptions::with_threads(1)).unwrap();
        for threads in [2, 4, 7] {
            let many = run_sweep(&spec, &DelayModelEvaluator, &SweepOptions::with_threads(threads))
                .unwrap();
            assert_eq!(one, many, "{threads} threads must match the serial run");
        }
    }

    #[test]
    fn options_defaults_are_sane() {
        let d = SweepOptions::default();
        assert!(d.threads >= 1 && d.threads <= 8);
        assert_eq!(SweepOptions::with_threads(0).threads, 1);
    }
}
