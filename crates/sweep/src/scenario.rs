//! The scenario parameter space: one concrete, hashable operating point.
//!
//! A [`Scenario`] bundles everything the built-in evaluators can depend on —
//! technology node, line geometry, optional per-unit-length RLC overrides,
//! driver strength, repeater partitioning and the coupled-bus layout — with
//! engineering-unit defaults matching the paper's 0.25 µm setting. Sweep axes
//! mutate scenarios through the typed [`Param`] enum, and the result cache
//! keys on a stable FNV-1a content hash of the *resolved* scenario, so two
//! axes that produce the same operating point share one cache entry.

use rlckit_interconnect::Technology;

/// A built-in CMOS technology generation, named so scenarios stay hashable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TechnologyNode {
    /// The paper's contemporary 0.25 µm generation.
    QuarterMicron,
    /// A representative 0.18 µm generation.
    N180,
    /// A representative 0.13 µm generation.
    N130,
    /// A representative 90 nm generation.
    N90,
}

impl TechnologyNode {
    /// All built-in nodes, ordered from the paper's generation to the most scaled.
    pub const ROADMAP: [Self; 4] = [Self::QuarterMicron, Self::N180, Self::N130, Self::N90];

    /// The full [`Technology`] preset for this node.
    pub fn technology(self) -> Technology {
        match self {
            Self::QuarterMicron => Technology::quarter_micron(),
            Self::N180 => Technology::node_180nm(),
            Self::N130 => Technology::node_130nm(),
            Self::N90 => Technology::node_90nm(),
        }
    }

    /// Short display name (`"0.25um"`, `"90nm"`, …).
    pub fn name(self) -> &'static str {
        self.technology().name
    }

    fn tag(self) -> u8 {
        match self {
            Self::QuarterMicron => 0,
            Self::N180 => 1,
            Self::N130 => 2,
            Self::N90 => 3,
        }
    }
}

/// One concrete operating point of the sweep parameter space.
///
/// Fields carry the engineering units used throughout the workspace examples:
/// lengths in millimetres, resistance in Ω/mm, inductance in nH/mm and
/// capacitance in fF/µm (which equals pF/mm). `None` overrides fall back to
/// the technology's wide global wire class.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Technology generation providing buffers, supply and default wires.
    pub technology: TechnologyNode,
    /// Line (or bus) length in millimetres.
    pub line_length_mm: f64,
    /// Per-unit-length resistance override, Ω/mm.
    pub resistance_ohm_per_mm: Option<f64>,
    /// Per-unit-length inductance override, nH/mm.
    pub inductance_nh_per_mm: Option<f64>,
    /// Per-unit-length ground capacitance override, fF/µm.
    pub capacitance_ff_per_um: Option<f64>,
    /// Driver/repeater size `h` as a multiple of the minimum buffer.
    pub driver_size: f64,
    /// Repeater section count `k` (continuous, as in the paper's closed forms).
    pub sections: f64,
    /// Number of signal wires in the coupled bus.
    pub bus_lines: usize,
    /// Nearest-neighbour coupling capacitance, fF/µm.
    pub coupling_cap_ff_per_um: f64,
    /// Nearest-neighbour inductive coupling coefficient `k₁` (further
    /// separations fall off as `k₁·0.43^(d−1)`, the repo's bus idiom).
    pub inductive_coupling: f64,
    /// Whether grounded shields are interleaved between the signal wires.
    pub shielded: bool,
    /// π-sections per conductor used by the transient bus evaluators.
    pub ladder_sections: usize,
    /// Krylov reduction order `q` used by the reduced-order evaluators.
    pub reduction_order: usize,
    /// Levels of the symmetric routing tree used by the tree evaluators
    /// (each root-to-sink path spans the scenario line length).
    pub tree_levels: usize,
    /// Fan-out at every junction of the symmetric routing tree.
    pub tree_fanout: usize,
    /// Junction rows of the power/clock mesh used by the mesh evaluators
    /// (the grid spans the scenario line length along each side).
    pub mesh_rows: usize,
    /// Junction columns of the power/clock mesh used by the mesh evaluators.
    pub mesh_cols: usize,
    /// Wordline rows of the SRAM bitline/wordline array used by the SRAM
    /// read evaluator (the deck-lowered netlist workload).
    pub sram_rows: usize,
    /// Bitline columns of the SRAM bitline/wordline array.
    pub sram_cols: usize,
}

impl Default for Scenario {
    /// The paper's setting: a 10 mm wide global wire in 0.25 µm driven by a
    /// 100× buffer, and a 3-wire unshielded bus discretised into 8 sections.
    fn default() -> Self {
        Self {
            technology: TechnologyNode::QuarterMicron,
            line_length_mm: 10.0,
            resistance_ohm_per_mm: None,
            inductance_nh_per_mm: None,
            capacitance_ff_per_um: None,
            driver_size: 100.0,
            sections: 1.0,
            bus_lines: 3,
            coupling_cap_ff_per_um: 0.1,
            inductive_coupling: 0.35,
            shielded: false,
            ladder_sections: 8,
            reduction_order: 8,
            tree_levels: 3,
            tree_fanout: 2,
            mesh_rows: 8,
            mesh_cols: 8,
            sram_rows: 8,
            sram_cols: 8,
        }
    }
}

impl Scenario {
    /// Applies one parameter assignment.
    pub fn apply(&mut self, param: &Param) {
        match *param {
            Param::Technology(node) => self.technology = node,
            Param::LineLengthMm(v) => self.line_length_mm = v,
            Param::ResistanceOhmPerMm(v) => self.resistance_ohm_per_mm = Some(v),
            Param::InductanceNhPerMm(v) => self.inductance_nh_per_mm = Some(v),
            Param::CapacitanceFfPerUm(v) => self.capacitance_ff_per_um = Some(v),
            Param::DriverSize(v) => self.driver_size = v,
            Param::Sections(v) => self.sections = v,
            Param::BusLines(v) => self.bus_lines = v,
            Param::CouplingCapFfPerUm(v) => self.coupling_cap_ff_per_um = v,
            Param::InductiveCoupling(v) => self.inductive_coupling = v,
            Param::Shielded(v) => self.shielded = v,
            Param::LadderSections(v) => self.ladder_sections = v,
            Param::ReductionOrder(v) => self.reduction_order = v,
            Param::TreeLevels(v) => self.tree_levels = v,
            Param::TreeFanout(v) => self.tree_fanout = v,
            Param::MeshRows(v) => self.mesh_rows = v,
            Param::MeshCols(v) => self.mesh_cols = v,
            Param::SramRows(v) => self.sram_rows = v,
            Param::SramCols(v) => self.sram_cols = v,
        }
    }

    /// Feeds every field of the resolved scenario into a content hash.
    pub(crate) fn hash_into(&self, h: &mut Fnv64) {
        h.write_u8(self.technology.tag());
        h.write_f64(self.line_length_mm);
        h.write_opt_f64(self.resistance_ohm_per_mm);
        h.write_opt_f64(self.inductance_nh_per_mm);
        h.write_opt_f64(self.capacitance_ff_per_um);
        h.write_f64(self.driver_size);
        h.write_f64(self.sections);
        h.write_u64(self.bus_lines as u64);
        h.write_f64(self.coupling_cap_ff_per_um);
        h.write_f64(self.inductive_coupling);
        h.write_u8(u8::from(self.shielded));
        h.write_u64(self.ladder_sections as u64);
        h.write_u64(self.reduction_order as u64);
        h.write_u64(self.tree_levels as u64);
        h.write_u64(self.tree_fanout as u64);
        h.write_u64(self.mesh_rows as u64);
        h.write_u64(self.mesh_cols as u64);
        h.write_u64(self.sram_rows as u64);
        h.write_u64(self.sram_cols as u64);
    }
}

/// One typed parameter assignment — the value an axis sets on a [`Scenario`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Param {
    /// Select a technology generation.
    Technology(TechnologyNode),
    /// Line/bus length in millimetres.
    LineLengthMm(f64),
    /// Per-unit-length resistance override, Ω/mm.
    ResistanceOhmPerMm(f64),
    /// Per-unit-length inductance override, nH/mm.
    InductanceNhPerMm(f64),
    /// Per-unit-length ground capacitance override, fF/µm.
    CapacitanceFfPerUm(f64),
    /// Driver/repeater size `h`.
    DriverSize(f64),
    /// Repeater section count `k`.
    Sections(f64),
    /// Number of signal wires in the bus.
    BusLines(usize),
    /// Nearest-neighbour coupling capacitance, fF/µm.
    CouplingCapFfPerUm(f64),
    /// Nearest-neighbour inductive coupling coefficient.
    InductiveCoupling(f64),
    /// Interleave grounded shields between signal wires.
    Shielded(bool),
    /// Transient discretisation: π-sections per conductor.
    LadderSections(usize),
    /// Krylov reduction order `q` for the reduced-order evaluators.
    ReductionOrder(usize),
    /// Levels of the symmetric routing tree for the tree evaluators.
    TreeLevels(usize),
    /// Fan-out at every junction of the symmetric routing tree.
    TreeFanout(usize),
    /// Junction rows of the power/clock mesh for the mesh evaluators.
    MeshRows(usize),
    /// Junction columns of the power/clock mesh for the mesh evaluators.
    MeshCols(usize),
    /// Wordline rows of the SRAM array for the SRAM read evaluator.
    SramRows(usize),
    /// Bitline columns of the SRAM array for the SRAM read evaluator.
    SramCols(usize),
}

impl Param {
    /// Short value label used for the axis column of emitted tables
    /// (`"0.25um"`, `"10"`, `"true"`, …).
    pub fn label(&self) -> String {
        match *self {
            Self::Technology(node) => node.name().to_owned(),
            Self::LineLengthMm(v)
            | Self::ResistanceOhmPerMm(v)
            | Self::InductanceNhPerMm(v)
            | Self::CapacitanceFfPerUm(v)
            | Self::DriverSize(v)
            | Self::Sections(v)
            | Self::CouplingCapFfPerUm(v)
            | Self::InductiveCoupling(v) => format!("{v}"),
            Self::BusLines(v)
            | Self::LadderSections(v)
            | Self::ReductionOrder(v)
            | Self::TreeLevels(v)
            | Self::TreeFanout(v)
            | Self::MeshRows(v)
            | Self::MeshCols(v)
            | Self::SramRows(v)
            | Self::SramCols(v) => {
                format!("{v}")
            }
            Self::Shielded(v) => format!("{v}"),
        }
    }
}

/// A tiny 64-bit FNV-1a hasher — the stable content hash behind the result
/// cache (independent of `std`'s randomized `DefaultHasher`).
#[derive(Debug, Clone)]
pub(crate) struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x1_0000_0000_01B3;

    pub(crate) fn new() -> Self {
        Self { state: Self::OFFSET }
    }

    pub(crate) fn write_u8(&mut self, b: u8) {
        self.state ^= u64::from(b);
        self.state = self.state.wrapping_mul(Self::PRIME);
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    pub(crate) fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    pub(crate) fn write_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(v) => {
                self.write_u8(1);
                self.write_f64(v);
            }
            None => self.write_u8(0),
        }
    }

    pub(crate) fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        for b in s.bytes() {
            self.write_u8(b);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_apply_to_the_right_fields() {
        let mut s = Scenario::default();
        for p in [
            Param::Technology(TechnologyNode::N90),
            Param::LineLengthMm(25.0),
            Param::ResistanceOhmPerMm(2.0),
            Param::InductanceNhPerMm(0.4),
            Param::CapacitanceFfPerUm(0.25),
            Param::DriverSize(50.0),
            Param::Sections(3.0),
            Param::BusLines(5),
            Param::CouplingCapFfPerUm(0.08),
            Param::InductiveCoupling(0.2),
            Param::Shielded(true),
            Param::LadderSections(12),
            Param::ReductionOrder(6),
            Param::TreeLevels(4),
            Param::TreeFanout(3),
            Param::MeshRows(12),
            Param::MeshCols(16),
            Param::SramRows(32),
            Param::SramCols(16),
        ] {
            s.apply(&p);
        }
        assert_eq!(s.technology, TechnologyNode::N90);
        assert_eq!(s.line_length_mm, 25.0);
        assert_eq!(s.resistance_ohm_per_mm, Some(2.0));
        assert_eq!(s.inductance_nh_per_mm, Some(0.4));
        assert_eq!(s.capacitance_ff_per_um, Some(0.25));
        assert_eq!(s.driver_size, 50.0);
        assert_eq!(s.sections, 3.0);
        assert_eq!(s.bus_lines, 5);
        assert_eq!(s.coupling_cap_ff_per_um, 0.08);
        assert_eq!(s.inductive_coupling, 0.2);
        assert!(s.shielded);
        assert_eq!(s.ladder_sections, 12);
        assert_eq!(s.reduction_order, 6);
        assert_eq!(s.tree_levels, 4);
        assert_eq!(s.tree_fanout, 3);
        assert_eq!(s.mesh_rows, 12);
        assert_eq!(s.mesh_cols, 16);
        assert_eq!(s.sram_rows, 32);
        assert_eq!(s.sram_cols, 16);
    }

    #[test]
    fn content_hash_is_stable_and_field_sensitive() {
        let hash = |s: &Scenario| {
            let mut h = Fnv64::new();
            s.hash_into(&mut h);
            h.finish()
        };
        let a = Scenario::default();
        assert_eq!(hash(&a), hash(&a.clone()), "hash must be deterministic");
        let mut b = a.clone();
        b.line_length_mm += 1e-9;
        assert_ne!(hash(&a), hash(&b), "any bit change must move the hash");
        let mut c = a.clone();
        c.resistance_ohm_per_mm = Some(1.0);
        assert_ne!(hash(&a), hash(&c), "None vs Some must differ");
    }

    #[test]
    fn labels_render_compactly() {
        assert_eq!(Param::Technology(TechnologyNode::QuarterMicron).label(), "0.25um");
        assert_eq!(Param::LineLengthMm(10.0).label(), "10");
        assert_eq!(Param::BusLines(3).label(), "3");
        assert_eq!(Param::Shielded(true).label(), "true");
    }

    #[test]
    fn roadmap_nodes_resolve_to_distinct_presets() {
        let names: Vec<_> = TechnologyNode::ROADMAP.iter().map(|n| n.name()).collect();
        assert_eq!(names, ["0.25um", "0.18um", "0.13um", "90nm"]);
    }
}
