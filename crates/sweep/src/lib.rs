//! Parallel scenario sweeps and paper-figure reproduction for `rlckit`.
//!
//! The paper's headline results are *sweeps* — delay error against the RC
//! model across line length and driver strength, the shift of the optimal
//! repeater count and size as inductance grows, worst-case crosstalk across
//! bus pitch — yet each workspace example evaluates one hand-written
//! scenario. This crate makes whole grids first-class:
//!
//! * [`scenario`] — the typed parameter space ([`Scenario`], [`Param`],
//!   [`TechnologyNode`]) shared by every evaluator;
//! * [`spec`] — declarative [`SweepSpec`]s: cartesian products of plain and
//!   *zipped* [`Axis`] values, expanding to deterministically indexed cells;
//! * [`eval`] — the [`Evaluator`] trait plus built-ins wiring
//!   `rlckit-core`, `rlckit-repeater` and `rlckit-coupling` into the engine;
//! * [`exec`] — the multi-threaded chunked work-queue executor
//!   ([`run_sweep`], [`run_sweep_cached`]) with thread-count-independent
//!   result ordering;
//! * [`cache`] — the content-hash result caches: the whole-sweep
//!   [`SweepCache`] (re-runs replay memoised cells bit-exactly and only
//!   compute changed ones) and the service-grade disk-backed
//!   [`ResultStore`] with an LRU byte budget;
//! * [`sink`] — deterministic [`CsvSink`] / [`JsonSink`] emitters;
//! * [`figures`] — the builders behind the committed `figures/FIG_*.csv`
//!   paper datasets and the CI drift check.
//!
//! # Example: sweep the Elmore error across length and driver strength
//!
//! ```
//! use rlckit_sweep::prelude::*;
//!
//! # fn main() -> Result<(), rlckit_sweep::SweepError> {
//! let spec = SweepSpec::new(Scenario::default())
//!     .axis(Axis::new("length_mm", [5.0, 10.0, 20.0].map(Param::LineLengthMm)))
//!     .axis(Axis::new("h", [50.0, 100.0].map(Param::DriverSize)));
//! let result = run_sweep(&spec, &DelayModelEvaluator, &SweepOptions::with_threads(2))?;
//! assert_eq!(result.rows.len(), 6);
//! // Every cell: the paper's Eq. (9) delay plus the RC baselines and errors.
//! let csv = CsvSink.render(&result);
//! assert!(csv.starts_with("length_mm,h,rlc_delay_ps,"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod eval;
pub mod exec;
pub mod figures;
pub mod scenario;
pub mod sink;
pub mod spec;

pub use cache::{cache_key, ResultStore, StoreStats, SweepCache};
pub use error::SweepError;
pub use eval::{
    BusCrosstalkEvaluator, BusRepeaterEvaluator, DelayModelEvaluator, Evaluator,
    MeshDelayEvaluator, ReducedDelayEvaluator, RepeaterDesignPointEvaluator,
    RepeaterOptimumEvaluator, SramReadEvaluator, TreeDelayEvaluator,
};
pub use exec::{run_sweep, run_sweep_cached, SweepOptions, SweepResult, SweepRow};
pub use scenario::{Param, Scenario, TechnologyNode};
pub use sink::{CsvSink, JsonSink};
pub use spec::{Axis, AxisValue, SweepCell, SweepSpec};

/// Commonly used sweep types, re-exported for convenient glob imports.
pub mod prelude {
    pub use crate::cache::SweepCache;
    pub use crate::eval::{
        BusCrosstalkEvaluator, BusRepeaterEvaluator, DelayModelEvaluator, Evaluator,
        MeshDelayEvaluator, ReducedDelayEvaluator, RepeaterDesignPointEvaluator,
        RepeaterOptimumEvaluator, SramReadEvaluator, TreeDelayEvaluator,
    };
    pub use crate::exec::{run_sweep, run_sweep_cached, SweepOptions, SweepResult};
    pub use crate::scenario::{Param, Scenario, TechnologyNode};
    pub use crate::sink::{CsvSink, JsonSink};
    pub use crate::spec::{Axis, SweepSpec};
}
