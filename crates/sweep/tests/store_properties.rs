//! Property tests of the disk-backed [`ResultStore`]:
//!
//! 1. **Bit-exact round-trips under eviction pressure** — whatever `f64`
//!    payload goes in (including NaN, infinities and signed zeros) comes
//!    back with identical bit patterns, both immediately and through a
//!    close/reopen cycle, even when a tiny byte budget keeps evicting old
//!    records;
//! 2. **Corruption is a miss, never a panic** — any truncation of a record
//!    file turns the lookup into a clean miss that is counted, deletes the
//!    damaged file, and leaves the store fully usable.

use proptest::prelude::*;

use rlckit_sweep::cache::ResultStore;

/// A fresh per-test scratch directory (wiped before use).
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rlckit-store-prop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// An `f64` drawn from the full value zoo: finite magnitudes plus the
/// special values a record must preserve bit-for-bit.
fn arb_value() -> impl Strategy<Value = f64> {
    (0.0f64..1.0, -1e30f64..1e30).prop_map(|(sel, v)| {
        if sel < 0.05 {
            f64::NAN
        } else if sel < 0.10 {
            f64::INFINITY
        } else if sel < 0.15 {
            f64::NEG_INFINITY
        } else if sel < 0.20 {
            -0.0
        } else if sel < 0.25 {
            v * 1e-300 // subnormal territory
        } else {
            v
        }
    })
}

fn assert_bits_equal(got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.to_bits(), w.to_bits(), "stored f64 must round-trip bit-exactly");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn round_trips_are_bit_exact_under_eviction_pressure(
        rows in proptest::collection::vec(proptest::collection::vec(arb_value(), 6), 12),
    ) {
        let dir = scratch_dir("evict");
        // ~110 bytes per 6-value record: a 256-byte budget holds about two,
        // so most of the 12 inserts evict something.
        let mut store = ResultStore::open(&dir, 256).expect("store opens");
        for (i, row) in rows.iter().enumerate() {
            let key = i as u64 + 1;
            store.insert(key, row).expect("insert succeeds");
            let got = store.get(key).expect("the just-inserted record survives its own insert");
            assert_bits_equal(&got, row);
            prop_assert!(store.total_bytes() <= 256 || store.len() == 1);
        }
        prop_assert!(store.stats().evictions > 0, "the budget must have forced evictions");

        // Reopen: every record the eviction policy kept must still
        // round-trip bit-exactly.
        let survivors = store.len();
        prop_assert!(survivors >= 1);
        drop(store);
        let mut reopened = ResultStore::open(&dir, 256).expect("store reopens");
        prop_assert_eq!(reopened.len(), survivors);
        let mut found = 0;
        for (i, row) in rows.iter().enumerate() {
            if let Some(got) = reopened.get(i as u64 + 1) {
                assert_bits_equal(&got, row);
                found += 1;
            }
        }
        prop_assert_eq!(found, survivors);
        std::fs::remove_dir_all(&dir).expect("scratch dir removes");
    }

    #[test]
    fn truncated_records_are_counted_misses_not_panics(
        row in proptest::collection::vec(arb_value(), 5),
        cut in 0.0f64..1.0,
    ) {
        let dir = scratch_dir("corrupt");
        let mut store = ResultStore::open(&dir, 1 << 20).expect("store opens");
        store.insert(7, &row).expect("insert succeeds");

        // Truncate the record file to a strict prefix.
        let path = dir.join(format!("{:016x}.rec", 7));
        let body = std::fs::read(&path).expect("record file exists");
        let keep = ((body.len() - 1) as f64 * cut) as usize;
        std::fs::write(&path, &body[..keep]).expect("truncation writes");

        let misses_before = store.stats().corrupt;
        prop_assert!(store.get(7).is_none(), "a truncated record must read as a miss");
        prop_assert_eq!(store.stats().corrupt, misses_before + 1);
        prop_assert!(!path.exists(), "the damaged file must be deleted");

        // The store stays fully usable: the same key can be rewritten.
        store.insert(7, &row).expect("reinsert succeeds");
        let got = store.get(7).expect("reinserted record reads back");
        assert_bits_equal(&got, &row);
        std::fs::remove_dir_all(&dir).expect("scratch dir removes");
    }
}
