//! The sweep engine's two headline guarantees, property-tested:
//!
//! 1. **Thread-count independence** — a multi-threaded sweep returns exactly
//!    the rows of the single-threaded run, cell for cell, bit for bit;
//! 2. **Cache fidelity** — a second run over a warm cache computes nothing
//!    and renders byte-identical CSV/JSON, including through a disk round-trip.

use proptest::prelude::*;

use rlckit_sweep::cache::SweepCache;
use rlckit_sweep::eval::{DelayModelEvaluator, RepeaterOptimumEvaluator};
use rlckit_sweep::exec::{run_sweep, run_sweep_cached, SweepOptions, SweepResult};
use rlckit_sweep::scenario::{Param, Scenario, TechnologyNode};
use rlckit_sweep::sink::{CsvSink, JsonSink};
use rlckit_sweep::spec::{Axis, SweepSpec};

/// Builds a randomized spec: a technology axis, a length axis of `lengths`
/// values starting at `first_mm`, and a zipped wire axis scaling R and L
/// together — cartesian and zipped axes in one grid.
fn random_spec(first_mm: f64, lengths: usize, r_scale: f64) -> SweepSpec {
    let length_axis: Vec<Param> =
        (0..lengths).map(|i| Param::LineLengthMm(first_mm * (i + 1) as f64)).collect();
    let wire = Axis::zipped(
        "wire",
        ["narrow".to_owned(), "wide".to_owned()],
        [
            vec![Param::ResistanceOhmPerMm(r_scale), Param::InductanceNhPerMm(0.4)],
            vec![Param::ResistanceOhmPerMm(r_scale / 4.0), Param::InductanceNhPerMm(0.55)],
        ],
    )
    .expect("static zipped axis is well-formed");
    SweepSpec::new(Scenario::default())
        .axis(Axis::new(
            "node",
            [TechnologyNode::QuarterMicron, TechnologyNode::N130].map(Param::Technology),
        ))
        .axis(Axis::new("length_mm", length_axis))
        .axis(wire)
}

/// Asserts two results are equal cell-for-cell with bit-exact values.
fn assert_bitwise_equal(a: &SweepResult, b: &SweepResult) {
    assert_eq!(a.rows.len(), b.rows.len());
    for (ra, rb) in a.rows.iter().zip(b.rows.iter()) {
        assert_eq!(ra.index, rb.index);
        assert_eq!(ra.labels, rb.labels);
        assert_eq!(ra.scenario, rb.scenario);
        match (&ra.values, &rb.values) {
            (Ok(va), Ok(vb)) => {
                assert_eq!(va.len(), vb.len());
                for (x, y) in va.iter().zip(vb.iter()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "cell {} differs", ra.index);
                }
            }
            (Err(ea), Err(eb)) => assert_eq!(ea, eb),
            _ => panic!("cell {}: one run errored, the other did not", ra.index),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn multithreaded_sweep_equals_single_threaded_cell_for_cell(
        first_mm in 2.0f64..8.0,
        r_scale in 1.0f64..60.0,
        (lengths, threads) in (1.0f64..4.0, 2.0f64..9.0),
    ) {
        let spec = random_spec(first_mm, lengths as usize, r_scale);
        let serial = run_sweep(&spec, &DelayModelEvaluator, &SweepOptions::with_threads(1)).unwrap();
        let parallel = run_sweep(
            &spec,
            &DelayModelEvaluator,
            &SweepOptions { threads: threads as usize, chunk: 1 },
        )
        .unwrap();
        assert_bitwise_equal(&serial, &parallel);
        // And via the other closed-form evaluator, with automatic chunking.
        let serial =
            run_sweep(&spec, &RepeaterOptimumEvaluator, &SweepOptions::with_threads(1)).unwrap();
        let parallel = run_sweep(
            &spec,
            &RepeaterOptimumEvaluator,
            &SweepOptions::with_threads(threads as usize),
        )
        .unwrap();
        assert_bitwise_equal(&serial, &parallel);
    }

    #[test]
    fn warm_cache_replays_byte_identical_output(
        first_mm in 2.0f64..8.0,
        r_scale in 1.0f64..60.0,
    ) {
        let spec = random_spec(first_mm, 3, r_scale);
        let dir = std::env::temp_dir().join(format!(
            "rlckit-sweep-det-{}-{}",
            std::process::id(),
            (first_mm * 1e6) as u64 ^ (r_scale * 1e6) as u64,
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let cache_path = dir.join("cache.txt");

        let mut cache = SweepCache::load(&cache_path).unwrap();
        let opts = SweepOptions::with_threads(4);
        let first = run_sweep_cached(&spec, &DelayModelEvaluator, &opts, &mut cache).unwrap();
        assert_eq!(first.computed, spec.len());
        cache.save().unwrap();

        // Second run through a freshly loaded (disk round-tripped) cache.
        let mut cache = SweepCache::load(&cache_path).unwrap();
        let second = run_sweep_cached(&spec, &DelayModelEvaluator, &opts, &mut cache).unwrap();
        assert_eq!(second.computed, 0, "warm cache must compute nothing");
        assert_eq!(second.cache_hits, spec.len());
        assert!(second.rows.iter().all(|r| r.from_cache));

        assert_bitwise_equal(&first, &second);
        assert_eq!(CsvSink.render(&first), CsvSink.render(&second), "CSV must be byte-identical");
        let strip_counts = |s: &str| {
            // cache_hits/computed legitimately differ between the runs; the
            // data payload must not.
            s.lines().filter(|l| !l.contains("\"cache_hits\"")).collect::<Vec<_>>().join("\n")
        };
        assert_eq!(
            strip_counts(&JsonSink.render(&first)),
            strip_counts(&JsonSink.render(&second)),
            "JSON payload must be byte-identical"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
