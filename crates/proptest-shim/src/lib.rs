//! A minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build environment for this workspace has no network access, so the real
//! `proptest` cannot be fetched from crates.io. This shim implements the small
//! subset of its API that the workspace's property tests use:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`];
//! * strategies for `Range<f64>`, tuples of strategies (arity 2–5) and
//!   [`collection::vec`];
//! * the [`proptest!`] macro (including `#![proptest_config(...)]`),
//!   [`prop_assert!`] and [`prop_assert_eq!`];
//! * [`test_runner::Config`] re-exported as `ProptestConfig`.
//!
//! Values are drawn from a deterministic xorshift generator seeded per test
//! function, so failures are reproducible run-to-run. Unlike the real
//! proptest there is no shrinking: a failing case reports its case index and
//! seed and re-raises the panic.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Deterministic pseudo-random generator used to draw test values.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed (zero is remapped to a fixed constant).
    pub fn new(seed: u64) -> Self {
        Self { state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed } }
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Hashes a test name into a seed (FNV-1a), so each test draws its own
/// deterministic sequence.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced values through a function.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing fixed-length vectors of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Produces vectors of exactly `len` values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Runner configuration, mirroring `proptest::test_runner::Config`.
pub mod test_runner {
    /// Controls how many cases each property test runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to execute.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl Config {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each function runs its body for many randomly
/// drawn argument tuples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut rng = $crate::TestRng::new(seed);
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::new_value(&($strategy), &mut rng);)+
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest shim: case {} of {} failed in {} (seed {:#x})",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            seed
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(seed_from_name("x"));
        let mut b = TestRng::new(seed_from_name("x"));
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_strategy_stays_in_bounds() {
        let mut rng = TestRng::new(7);
        let s = -2.0f64..3.0;
        for _ in 0..1000 {
            let v = s.new_value(&mut rng);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = TestRng::new(11);
        let s = (0.0f64..1.0, collection::vec(0.0f64..1.0, 4)).prop_map(|(x, v)| (x, v.len()));
        let (x, n) = s.new_value(&mut rng);
        assert!((0.0..1.0).contains(&x));
        assert_eq!(n, 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_draws_values(x in 0.0f64..1.0, (a, b) in (0.0f64..1.0, 1.0f64..2.0)) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(a < b);
            prop_assert_eq!(x.is_finite(), true);
        }
    }
}
