//! Parsing of human-written quantity strings such as `"1 pF"` or `"500 ohm"`.
//!
//! The parser is deliberately small: a decimal number, an optional SI prefix,
//! and an optional unit word. It is used by the example binaries and the
//! bench harness to accept parameters from the command line.

use std::error::Error;
use std::fmt;

/// Error returned by [`parse_quantity`] when the input cannot be interpreted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQuantityError {
    input: String,
    reason: &'static str,
}

impl ParseQuantityError {
    fn new(input: &str, reason: &'static str) -> Self {
        Self { input: input.to_owned(), reason }
    }

    /// The offending input string.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParseQuantityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid quantity {:?}: {}", self.input, self.reason)
    }
}

impl Error for ParseQuantityError {}

/// Recognised unit spellings, all mapped to a canonical single-letter symbol.
fn canonical_unit(word: &str) -> Option<&'static str> {
    let lower = word.to_ascii_lowercase();
    Some(match lower.as_str() {
        "f" | "farad" | "farads" => "F",
        "h" | "henry" | "henries" => "H",
        "s" | "sec" | "second" | "seconds" => "s",
        "m" | "meter" | "meters" | "metre" | "metres" => "m",
        "v" | "volt" | "volts" => "V",
        "a" | "amp" | "amps" | "ampere" | "amperes" => "A",
        "hz" | "hertz" => "Hz",
        "ohm" | "ohms" | "Ω" | "w" => "Ω",
        _ => return None,
    })
}

fn prefix_factor(c: char) -> Option<f64> {
    Some(match c {
        'a' => 1e-18,
        'f' => 1e-15,
        'p' => 1e-12,
        'n' => 1e-9,
        'u' | 'µ' => 1e-6,
        'm' => 1e-3,
        'k' | 'K' => 1e3,
        'M' => 1e6,
        'G' => 1e9,
        'T' => 1e12,
        _ => return None,
    })
}

/// Parses a quantity string into `(value_in_si_base_units, canonical_unit)`.
///
/// Accepted forms include `"1pF"`, `"1 pF"`, `"500 ohm"`, `"2.5e-9 s"`,
/// `"10mm"`, `"0.25um"` and bare numbers (unit reported as `""`).
///
/// The parse is unit-agnostic: callers that expect a particular dimension
/// should check the returned unit symbol (e.g. `"F"` for capacitance).
///
/// # Errors
///
/// Returns [`ParseQuantityError`] if the number cannot be parsed or the unit
/// word is not recognised.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), rlckit_units::ParseQuantityError> {
/// let (value, unit) = rlckit_units::parse_quantity("1 pF")?;
/// assert_eq!(unit, "F");
/// assert!((value - 1e-12).abs() < 1e-24);
/// # Ok(())
/// # }
/// ```
pub fn parse_quantity(input: &str) -> Result<(f64, &'static str), ParseQuantityError> {
    let trimmed = input.trim();
    if trimmed.is_empty() {
        return Err(ParseQuantityError::new(input, "empty string"));
    }

    // Split at the end of the numeric part. The numeric part may contain an
    // exponent (`e-9`), so scan for the longest prefix that parses as f64.
    let bytes = trimmed.as_bytes();
    let mut split = 0;
    for i in (1..=bytes.len()).rev() {
        if trimmed.is_char_boundary(i) && trimmed[..i].parse::<f64>().is_ok() {
            split = i;
            break;
        }
    }
    if split == 0 {
        return Err(ParseQuantityError::new(input, "no leading number"));
    }
    let value: f64 = trimmed[..split]
        .parse()
        .map_err(|_| ParseQuantityError::new(input, "no leading number"))?;
    let rest = trimmed[split..].trim();

    if rest.is_empty() {
        return Ok((value, ""));
    }

    // The remainder is either `unit`, `prefix+unit`, or a bare prefix that is
    // itself a unit letter (e.g. "m" for metres — ambiguous, resolved as unit).
    if let Some(unit) = canonical_unit(rest) {
        return Ok((value, unit));
    }
    let mut chars = rest.chars();
    let first = chars.next().expect("rest is non-empty");
    let tail: String = chars.collect();
    if let (Some(factor), Some(unit)) = (prefix_factor(first), canonical_unit(&tail)) {
        return Ok((value * factor, unit));
    }
    Err(ParseQuantityError::new(input, "unrecognised unit"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_numbers() {
        assert_eq!(parse_quantity("42").unwrap(), (42.0, ""));
        assert_eq!(parse_quantity(" 2.5e-9 ").unwrap(), (2.5e-9, ""));
    }

    #[test]
    fn prefixed_units() {
        let (v, u) = parse_quantity("1pF").unwrap();
        assert_eq!(u, "F");
        assert!((v - 1e-12).abs() < 1e-24);

        let (v, u) = parse_quantity("2.5 nH").unwrap();
        assert_eq!(u, "H");
        assert!((v - 2.5e-9).abs() < 1e-20);

        let (v, u) = parse_quantity("10 mm").unwrap();
        assert_eq!(u, "m");
        assert!((v - 0.01).abs() < 1e-12);

        let (v, u) = parse_quantity("0.25 um").unwrap();
        assert_eq!(u, "m");
        assert!((v - 0.25e-6).abs() < 1e-15);

        let (v, u) = parse_quantity("1.5 kohm").unwrap();
        assert_eq!(u, "Ω");
        assert!((v - 1500.0).abs() < 1e-9);

        let (v, u) = parse_quantity("2 GHz").unwrap();
        assert_eq!(u, "Hz");
        assert!((v - 2e9).abs() < 1.0);
    }

    #[test]
    fn unprefixed_units() {
        assert_eq!(parse_quantity("500 ohm").unwrap(), (500.0, "Ω"));
        assert_eq!(parse_quantity("3 V").unwrap(), (3.0, "V"));
        assert_eq!(parse_quantity("7 s").unwrap(), (7.0, "s"));
        // Bare "m" resolves to metres, not the milli prefix.
        assert_eq!(parse_quantity("3 m").unwrap(), (3.0, "m"));
    }

    #[test]
    fn exponent_plus_prefix() {
        let (v, u) = parse_quantity("1e-3 pF").unwrap();
        assert_eq!(u, "F");
        assert!((v - 1e-15).abs() < 1e-27);
    }

    #[test]
    fn errors() {
        assert!(parse_quantity("").is_err());
        assert!(parse_quantity("pF").is_err());
        assert!(parse_quantity("1 flux").is_err());
        let err = parse_quantity("1 flux").unwrap_err();
        assert_eq!(err.input(), "1 flux");
        assert!(err.to_string().contains("unrecognised"));
    }
}
