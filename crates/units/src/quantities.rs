//! Scalar physical quantities stored as `f64` in SI base units.
//!
//! Every type here is a transparent newtype over `f64`. Construction is via
//! `from_*` constructors naming the unit explicitly, and extraction is via a
//! matching getter, so call sites always spell out the unit at least once.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::format::format_eng;

/// Generates a scalar quantity newtype with the shared arithmetic surface.
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $unit:literal, $base_ctor:ident, $base_getter:ident
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates the quantity from a value expressed in its SI base unit.
            #[inline]
            pub const fn $base_ctor(value: f64) -> Self {
                Self(value)
            }

            /// Returns the value in the SI base unit.
            #[inline]
            pub const fn $base_getter(self) -> f64 {
                self.0
            }

            /// Returns the raw underlying `f64` (same as the base-unit getter).
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns `true` if the value is exactly zero.
            #[inline]
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }

            /// Returns `true` if the value is strictly positive.
            #[inline]
            pub fn is_positive(self) -> bool {
                self.0 > 0.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of two quantities.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of two quantities.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Linear interpolation between `self` (at `t = 0`) and `other` (at `t = 1`).
            #[inline]
            pub fn lerp(self, other: Self, t: f64) -> Self {
                Self(self.0 + (other.0 - self.0) * t)
            }

            /// Symbol of the SI base unit, e.g. `"Ω"` for [`Resistance`].
            pub const fn unit_symbol() -> &'static str {
                $unit
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl MulAssign<f64> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: f64) {
                self.0 *= rhs;
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl DivAssign<f64> for $name {
            #[inline]
            fn div_assign(&mut self, rhs: f64) {
                self.0 /= rhs;
            }
        }

        /// Ratio of two like quantities is dimensionless.
        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, Add::add)
            }
        }

        impl PartialOrd for $name {
            #[inline]
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                self.0.partial_cmp(&other.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", format_eng(self.0, $unit))
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(q: $name) -> f64 {
                q.0
            }
        }
    };
}

quantity!(
    /// Electrical resistance in ohms.
    Resistance, "Ω", from_ohms, ohms
);
quantity!(
    /// Electrical capacitance in farads.
    Capacitance, "F", from_farads, farads
);
quantity!(
    /// Electrical inductance in henries.
    Inductance, "H", from_henries, henries
);
quantity!(
    /// Time in seconds.
    Time, "s", from_seconds, seconds
);
quantity!(
    /// Squared time in seconds², the dimension of an `L·C` product.
    TimeSquared, "s²", from_seconds_squared, seconds_squared
);
quantity!(
    /// Length in metres.
    Length, "m", from_meters, meters
);
quantity!(
    /// Frequency in hertz.
    Frequency, "Hz", from_hertz, hertz
);
quantity!(
    /// Electric potential in volts.
    Voltage, "V", from_volts, volts
);
quantity!(
    /// Electric current in amperes.
    Current, "A", from_amperes, amperes
);
quantity!(
    /// Energy in joules.
    Energy, "J", from_joules, joules
);
quantity!(
    /// Power in watts.
    Power, "W", from_watts, watts
);
quantity!(
    /// Area in square metres (used for repeater/buffer area bookkeeping).
    Area, "m²", from_square_meters, square_meters
);

// ---------------------------------------------------------------------------
// Convenience constructors / getters in commonly used scaled units.
// ---------------------------------------------------------------------------

impl Resistance {
    /// Creates a resistance expressed in kilo-ohms.
    #[inline]
    pub fn from_kilohms(kohms: f64) -> Self {
        Self::from_ohms(kohms * 1e3)
    }

    /// Returns the resistance in kilo-ohms.
    #[inline]
    pub fn kilohms(self) -> f64 {
        self.ohms() / 1e3
    }

    /// Parallel combination of two resistances.
    ///
    /// Returns zero if either resistance is zero.
    #[inline]
    pub fn parallel(self, other: Self) -> Self {
        let (a, b) = (self.ohms(), other.ohms());
        if a == 0.0 || b == 0.0 {
            Self::ZERO
        } else {
            Self::from_ohms(a * b / (a + b))
        }
    }
}

impl Capacitance {
    /// Creates a capacitance expressed in picofarads.
    #[inline]
    pub fn from_picofarads(pf: f64) -> Self {
        Self::from_farads(pf * 1e-12)
    }

    /// Creates a capacitance expressed in femtofarads.
    #[inline]
    pub fn from_femtofarads(ff: f64) -> Self {
        Self::from_farads(ff * 1e-15)
    }

    /// Returns the capacitance in picofarads.
    #[inline]
    pub fn picofarads(self) -> f64 {
        self.farads() / 1e-12
    }

    /// Returns the capacitance in femtofarads.
    #[inline]
    pub fn femtofarads(self) -> f64 {
        self.farads() / 1e-15
    }
}

impl Inductance {
    /// Creates an inductance expressed in nanohenries.
    #[inline]
    pub fn from_nanohenries(nh: f64) -> Self {
        Self::from_henries(nh * 1e-9)
    }

    /// Creates an inductance expressed in picohenries.
    #[inline]
    pub fn from_picohenries(ph: f64) -> Self {
        Self::from_henries(ph * 1e-12)
    }

    /// Returns the inductance in nanohenries.
    #[inline]
    pub fn nanohenries(self) -> f64 {
        self.henries() / 1e-9
    }
}

impl Time {
    /// Creates a time expressed in picoseconds.
    #[inline]
    pub fn from_picoseconds(ps: f64) -> Self {
        Self::from_seconds(ps * 1e-12)
    }

    /// Creates a time expressed in nanoseconds.
    #[inline]
    pub fn from_nanoseconds(ns: f64) -> Self {
        Self::from_seconds(ns * 1e-9)
    }

    /// Returns the time in picoseconds.
    #[inline]
    pub fn picoseconds(self) -> f64 {
        self.seconds() / 1e-12
    }

    /// Returns the time in nanoseconds.
    #[inline]
    pub fn nanoseconds(self) -> f64 {
        self.seconds() / 1e-9
    }

    /// Relative difference `|self − reference| / reference` in per cent.
    ///
    /// # Panics
    ///
    /// Panics if `reference` is zero.
    #[inline]
    pub fn percent_error_vs(self, reference: Self) -> f64 {
        assert!(reference.seconds() != 0.0, "reference time must be non-zero for a relative error");
        (self.seconds() - reference.seconds()).abs() / reference.seconds().abs() * 100.0
    }
}

impl TimeSquared {
    /// Square root, yielding a [`Time`].
    ///
    /// # Panics
    ///
    /// Panics if the value is negative.
    #[inline]
    pub fn sqrt(self) -> Time {
        assert!(
            self.seconds_squared() >= 0.0,
            "cannot take the square root of a negative squared time"
        );
        Time::from_seconds(self.seconds_squared().sqrt())
    }
}

impl Length {
    /// Creates a length expressed in millimetres.
    #[inline]
    pub fn from_millimeters(mm: f64) -> Self {
        Self::from_meters(mm * 1e-3)
    }

    /// Creates a length expressed in micrometres.
    #[inline]
    pub fn from_micrometers(um: f64) -> Self {
        Self::from_meters(um * 1e-6)
    }

    /// Creates a length expressed in nanometres.
    #[inline]
    pub fn from_nanometers(nm: f64) -> Self {
        Self::from_meters(nm * 1e-9)
    }

    /// Returns the length in millimetres.
    #[inline]
    pub fn millimeters(self) -> f64 {
        self.meters() / 1e-3
    }

    /// Returns the length in micrometres.
    #[inline]
    pub fn micrometers(self) -> f64 {
        self.meters() / 1e-6
    }
}

impl Frequency {
    /// Creates a frequency expressed in gigahertz.
    #[inline]
    pub fn from_gigahertz(ghz: f64) -> Self {
        Self::from_hertz(ghz * 1e9)
    }

    /// Returns the frequency in gigahertz.
    #[inline]
    pub fn gigahertz(self) -> f64 {
        self.hertz() / 1e9
    }

    /// Angular frequency `ω = 2πf` in radians per second.
    #[inline]
    pub fn angular(self) -> f64 {
        2.0 * std::f64::consts::PI * self.hertz()
    }

    /// Period `1/f`.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[inline]
    pub fn period(self) -> Time {
        assert!(self.hertz() != 0.0, "zero frequency has no finite period");
        Time::from_seconds(1.0 / self.hertz())
    }
}

impl Area {
    /// Creates an area expressed in square micrometres.
    #[inline]
    pub fn from_square_micrometers(um2: f64) -> Self {
        Self::from_square_meters(um2 * 1e-12)
    }

    /// Returns the area in square micrometres.
    #[inline]
    pub fn square_micrometers(self) -> f64 {
        self.square_meters() / 1e-12
    }
}

// ---------------------------------------------------------------------------
// Cross-dimension arithmetic used by delay analysis.
// ---------------------------------------------------------------------------

/// `R · C = τ` — the ubiquitous RC time constant.
impl Mul<Capacitance> for Resistance {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: Capacitance) -> Time {
        Time::from_seconds(self.ohms() * rhs.farads())
    }
}

/// `C · R = τ` (commutative convenience).
impl Mul<Resistance> for Capacitance {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: Resistance) -> Time {
        rhs * self
    }
}

/// `L / R = τ` — the inductive time constant.
impl Div<Resistance> for Inductance {
    type Output = Time;
    #[inline]
    fn div(self, rhs: Resistance) -> Time {
        Time::from_seconds(self.henries() / rhs.ohms())
    }
}

/// `L · C` has dimension time², whose square root is the wave time of flight.
impl Mul<Capacitance> for Inductance {
    type Output = TimeSquared;
    #[inline]
    fn mul(self, rhs: Capacitance) -> TimeSquared {
        TimeSquared::from_seconds_squared(self.henries() * rhs.farads())
    }
}

/// `C · L` (commutative convenience).
impl Mul<Inductance> for Capacitance {
    type Output = TimeSquared;
    #[inline]
    fn mul(self, rhs: Inductance) -> TimeSquared {
        rhs * self
    }
}

/// `sqrt(L / C)` is the lossless characteristic impedance; expose the ratio.
impl Div<Capacitance> for Inductance {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Capacitance) -> f64 {
        self.henries() / rhs.farads()
    }
}

/// `V · I = P`.
impl Mul<Current> for Voltage {
    type Output = Power;
    #[inline]
    fn mul(self, rhs: Current) -> Power {
        Power::from_watts(self.volts() * rhs.amperes())
    }
}

/// `V / R = I` (Ohm's law).
impl Div<Resistance> for Voltage {
    type Output = Current;
    #[inline]
    fn div(self, rhs: Resistance) -> Current {
        Current::from_amperes(self.volts() / rhs.ohms())
    }
}

/// `P · t = E`.
impl Mul<Time> for Power {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: Time) -> Energy {
        Energy::from_joules(self.watts() * rhs.seconds())
    }
}

/// `E / t = P`.
impl Div<Time> for Energy {
    type Output = Power;
    #[inline]
    fn div(self, rhs: Time) -> Power {
        Power::from_watts(self.joules() / rhs.seconds())
    }
}

impl Time {
    /// Reciprocal of a time, as a [`Frequency`].
    ///
    /// # Panics
    ///
    /// Panics if the time is zero.
    #[inline]
    pub fn reciprocal(self) -> Frequency {
        assert!(self.seconds() != 0.0, "zero time has no finite reciprocal");
        Frequency::from_hertz(1.0 / self.seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_getters_round_trip() {
        assert_eq!(Resistance::from_kilohms(1.5).ohms(), 1500.0);
        assert_eq!(Capacitance::from_picofarads(2.0).farads(), 2e-12);
        assert_eq!(Capacitance::from_femtofarads(5.0).femtofarads(), 5.0);
        assert!((Inductance::from_nanohenries(3.0).henries() - 3e-9).abs() < 1e-20);
        assert_eq!(Time::from_picoseconds(7.0).seconds(), 7e-12);
        assert_eq!(Length::from_millimeters(10.0).meters(), 0.01);
        assert_eq!(Length::from_micrometers(250.0).millimeters(), 0.25);
        assert_eq!(Frequency::from_gigahertz(2.0).hertz(), 2e9);
    }

    #[test]
    fn additive_arithmetic() {
        let a = Resistance::from_ohms(100.0);
        let b = Resistance::from_ohms(50.0);
        assert_eq!((a + b).ohms(), 150.0);
        assert_eq!((a - b).ohms(), 50.0);
        assert_eq!((-b).ohms(), -50.0);
        let mut c = a;
        c += b;
        assert_eq!(c.ohms(), 150.0);
        c -= b;
        assert_eq!(c.ohms(), 100.0);
    }

    #[test]
    fn scalar_scaling_and_ratio() {
        let c = Capacitance::from_picofarads(1.0);
        assert_eq!((c * 3.0).picofarads(), 3.0);
        assert_eq!((3.0 * c).picofarads(), 3.0);
        assert_eq!((c / 2.0).picofarads(), 0.5);
        assert_eq!(c / Capacitance::from_picofarads(0.5), 2.0);
    }

    #[test]
    fn rc_and_lc_products() {
        let r = Resistance::from_ohms(1000.0);
        let c = Capacitance::from_picofarads(1.0);
        let l = Inductance::from_nanohenries(10.0);
        assert!(((r * c).nanoseconds() - 1.0).abs() < 1e-12);
        assert_eq!((c * r).seconds(), (r * c).seconds());
        assert!(((l / r).seconds() - 1e-11).abs() < 1e-24);
        let tof = (l * c).sqrt();
        assert!((tof.seconds() - (10e-9f64 * 1e-12).sqrt()).abs() < 1e-18);
    }

    #[test]
    fn parallel_resistance() {
        let a = Resistance::from_ohms(100.0);
        let b = Resistance::from_ohms(100.0);
        assert_eq!(a.parallel(b).ohms(), 50.0);
        assert_eq!(a.parallel(Resistance::ZERO).ohms(), 0.0);
    }

    #[test]
    fn ohms_law_and_power() {
        let v = Voltage::from_volts(2.5);
        let r = Resistance::from_ohms(500.0);
        let i = v / r;
        assert_eq!(i.amperes(), 0.005);
        let p = v * i;
        assert!((p.watts() - 0.0125).abs() < 1e-15);
        let e = p * Time::from_nanoseconds(1.0);
        assert!((e.joules() - 1.25e-11).abs() < 1e-22);
        assert!((e / Time::from_nanoseconds(1.0)).watts() - 0.0125 < 1e-15);
    }

    #[test]
    fn comparisons_min_max_lerp() {
        let a = Time::from_picoseconds(1.0);
        let b = Time::from_picoseconds(2.0);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.lerp(b, 0.5).picoseconds(), 1.5);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Time = (1..=4).map(|i| Time::from_picoseconds(i as f64)).sum();
        assert!((total.picoseconds() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn percent_error() {
        let model = Time::from_picoseconds(105.0);
        let sim = Time::from_picoseconds(100.0);
        assert!((model.percent_error_vs(sim) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn percent_error_zero_reference_panics() {
        let _ = Time::from_picoseconds(1.0).percent_error_vs(Time::ZERO);
    }

    #[test]
    fn display_uses_engineering_notation() {
        assert_eq!(format!("{}", Capacitance::from_picofarads(1.0)), "1 pF");
        assert_eq!(format!("{}", Resistance::from_ohms(500.0)), "500 Ω");
        assert_eq!(format!("{}", Time::from_nanoseconds(2.5)), "2.5 ns");
    }

    #[test]
    fn frequency_helpers() {
        let f = Frequency::from_gigahertz(1.0);
        assert!((f.angular() - 2.0 * std::f64::consts::PI * 1e9).abs() < 1.0);
        assert!((f.period().nanoseconds() - 1.0).abs() < 1e-12);
        assert!((Time::from_nanoseconds(1.0).reciprocal().gigahertz() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn area_conversions() {
        let a = Area::from_square_micrometers(4.0);
        assert_eq!(a.square_meters(), 4e-12);
        assert_eq!(a.square_micrometers(), 4.0);
    }

    #[test]
    fn predicates() {
        assert!(Time::ZERO.is_zero());
        assert!(!Time::from_seconds(1.0).is_zero());
        assert!(Time::from_seconds(1.0).is_positive());
        assert!(Time::from_seconds(1.0).is_finite());
        assert!(!Time::from_seconds(f64::NAN).is_finite());
        assert_eq!(Time::from_seconds(-3.0).abs().seconds(), 3.0);
    }
}
