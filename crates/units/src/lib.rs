//! Physical-quantity newtypes for the `rlckit` workspace.
//!
//! Interconnect analysis juggles many raw `f64` values whose units are easy to
//! confuse: total versus per-unit-length resistance, farads versus farads per
//! metre, seconds versus radians per second. This crate wraps each physical
//! dimension in a dedicated newtype ([`Resistance`], [`Capacitance`],
//! [`Inductance`], [`Length`], [`Time`], …) so the compiler catches unit
//! mix-ups, while keeping the runtime representation a plain `f64`.
//!
//! The crate also provides:
//!
//! * per-unit-length quantities ([`ResistancePerLength`],
//!   [`CapacitancePerLength`], [`InductancePerLength`]) that multiply with
//!   [`Length`] to give totals — exactly the `Rt = R·l` relations of the
//!   Ismail–Friedman formulation;
//! * cross-dimension arithmetic for the products that appear in delay
//!   analysis (`R·C → Time`, `L/R → Time`, `L·C → TimeSquared`);
//! * engineering-notation formatting and parsing (`"1 pF"`, `"500 Ω"`).
//!
//! This is the bottom crate of the workspace: everything else — the numeric
//! kernels, the MNA simulator, the delay/repeater closed forms, the coupled
//! buses and the sweep engine — speaks in these types, and the
//! `#![warn(missing_docs)]` gate (enforced as an error in CI) keeps every
//! public quantity documented.
//!
//! # Example
//!
//! ```
//! use rlckit_units::{Capacitance, Inductance, Length, Resistance};
//!
//! // A 10 mm long global wire at 0.25 µm-era parasitics.
//! let length = Length::from_millimeters(10.0);
//! let rt = rlckit_units::ResistancePerLength::from_ohms_per_meter(1.5e3) * length;
//! let ct = rlckit_units::CapacitancePerLength::from_farads_per_meter(100e-12) * length;
//! let lt = rlckit_units::InductancePerLength::from_henries_per_meter(400e-9) * length;
//! assert_eq!(rt, Resistance::from_ohms(15.0));
//! assert_eq!(ct, Capacitance::from_picofarads(1.0));
//! assert_eq!(lt, Inductance::from_nanohenries(4.0));
//!
//! let rc = rt * ct;            // Time
//! let lc = (lt * ct).sqrt();   // Time (time of flight)
//! assert!(rc.seconds() > 0.0 && lc.seconds() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod format;
mod parse;
mod per_length;
mod quantities;

pub use format::{format_eng, EngFormat};
pub use parse::{parse_quantity, ParseQuantityError};
pub use per_length::{CapacitancePerLength, InductancePerLength, ResistancePerLength};
pub use quantities::{
    Area, Capacitance, Current, Energy, Frequency, Inductance, Length, Power, Resistance, Time,
    TimeSquared, Voltage,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readme_style_flow() {
        let length = Length::from_millimeters(10.0);
        let rt = ResistancePerLength::from_ohms_per_meter(1.5e3) * length;
        let ct = CapacitancePerLength::from_farads_per_meter(100e-12) * length;
        let lt = InductancePerLength::from_henries_per_meter(400e-9) * length;
        assert!((rt.ohms() - 15.0).abs() < 1e-12);
        assert!((ct.farads() - 1e-12).abs() < 1e-24);
        assert!((lt.henries() - 4e-9).abs() < 1e-20);
        let rc = rt * ct;
        assert!(rc.seconds() > 0.0);
        let tof = (lt * ct).sqrt();
        assert!(tof.seconds() > 0.0);
    }
}
