//! Engineering-notation formatting for physical quantities.
//!
//! Values are printed with an SI prefix chosen so the mantissa falls in
//! `[1, 1000)`, which is how circuit designers read parasitics ("2.3 pF",
//! "450 Ω/m") rather than raw scientific notation.

use std::fmt;

/// An SI prefix together with its power-of-ten exponent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Prefix {
    symbol: &'static str,
    exponent: i32,
}

const PREFIXES: &[Prefix] = &[
    Prefix { symbol: "a", exponent: -18 },
    Prefix { symbol: "f", exponent: -15 },
    Prefix { symbol: "p", exponent: -12 },
    Prefix { symbol: "n", exponent: -9 },
    Prefix { symbol: "µ", exponent: -6 },
    Prefix { symbol: "m", exponent: -3 },
    Prefix { symbol: "", exponent: 0 },
    Prefix { symbol: "k", exponent: 3 },
    Prefix { symbol: "M", exponent: 6 },
    Prefix { symbol: "G", exponent: 9 },
    Prefix { symbol: "T", exponent: 12 },
];

/// A value formatted in engineering notation, produced by [`format_eng`].
///
/// Implements [`Display`](fmt::Display); hold on to it to defer the string
/// allocation, or call `.to_string()`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngFormat {
    value: f64,
    unit: &'static str,
}

impl EngFormat {
    /// The numeric value in SI base units.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The unit symbol appended after the SI prefix.
    pub fn unit(&self) -> &'static str {
        self.unit
    }
}

impl fmt::Display for EngFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.value;
        if v == 0.0 {
            return write!(f, "0 {}", self.unit);
        }
        if !v.is_finite() {
            return write!(f, "{} {}", v, self.unit);
        }
        let magnitude = v.abs();
        let exp3 = (magnitude.log10().floor() as i32).div_euclid(3) * 3;
        let prefix = PREFIXES
            .iter()
            .find(|p| p.exponent == exp3.clamp(-18, 12))
            .unwrap_or(&Prefix { symbol: "", exponent: 0 });
        let scaled = v / 10f64.powi(prefix.exponent);
        // Up to 4 significant digits, trailing zeros trimmed.
        let text = format!("{scaled:.4}");
        let trimmed = text.trim_end_matches('0').trim_end_matches('.');
        write!(f, "{} {}{}", trimmed, prefix.symbol, self.unit)
    }
}

/// Formats `value` (in SI base units) with an engineering prefix and `unit`.
///
/// # Example
///
/// ```
/// use rlckit_units::format_eng;
/// assert_eq!(format_eng(1e-12, "F").to_string(), "1 pF");
/// assert_eq!(format_eng(2.5e-9, "s").to_string(), "2.5 ns");
/// assert_eq!(format_eng(500.0, "Ω").to_string(), "500 Ω");
/// ```
pub fn format_eng(value: f64, unit: &'static str) -> EngFormat {
    EngFormat { value, unit }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_non_finite() {
        assert_eq!(format_eng(0.0, "F").to_string(), "0 F");
        assert_eq!(format_eng(f64::INFINITY, "F").to_string(), "inf F");
        assert_eq!(format_eng(f64::NAN, "F").to_string(), "NaN F");
    }

    #[test]
    fn picks_prefix_keeping_mantissa_in_range() {
        assert_eq!(format_eng(1e-15, "F").to_string(), "1 fF");
        assert_eq!(format_eng(1e-12, "F").to_string(), "1 pF");
        assert_eq!(format_eng(999e-12, "F").to_string(), "999 pF");
        assert_eq!(format_eng(1000e-12, "F").to_string(), "1 nF");
        assert_eq!(format_eng(1.5e3, "Ω").to_string(), "1.5 kΩ");
        assert_eq!(format_eng(2e9, "Hz").to_string(), "2 GHz");
    }

    #[test]
    fn negative_values() {
        assert_eq!(format_eng(-2.5e-9, "s").to_string(), "-2.5 ns");
    }

    #[test]
    fn huge_and_tiny_values_clamp_to_extreme_prefixes() {
        assert!(format_eng(1e20, "Hz").to_string().contains('T'));
        assert!(format_eng(1e-20, "F").to_string().contains('a'));
    }

    #[test]
    fn trims_trailing_zeros() {
        assert_eq!(format_eng(250e-12, "s").to_string(), "250 ps");
        assert_eq!(format_eng(0.25e-12, "s").to_string(), "250 fs");
        assert_eq!(format_eng(123.456e-12, "s").to_string(), "123.456 ps");
    }

    #[test]
    fn accessors() {
        let f = format_eng(3.0, "V");
        assert_eq!(f.value(), 3.0);
        assert_eq!(f.unit(), "V");
    }
}
