//! Per-unit-length interconnect parasitics.
//!
//! The Ismail–Friedman formulation starts from per-unit-length resistance,
//! inductance and capacitance (`R`, `L`, `C`) and a line length `l`; the total
//! impedances are `Rt = R·l`, `Lt = L·l`, `Ct = C·l`. These newtypes make that
//! step explicit: multiplying a per-length quantity by a [`Length`] yields the
//! corresponding total quantity.

use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

use crate::format::format_eng;
use crate::quantities::{Capacitance, Inductance, Length, Resistance};

/// Generates a per-unit-length quantity newtype.
macro_rules! per_length_quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $unit:literal, $ctor:ident, $getter:ident, $total:ident, $total_ctor:ident, $total_getter:ident
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates the quantity from a value in its SI base unit (per metre).
            #[inline]
            pub const fn $ctor(value: f64) -> Self {
                Self(value)
            }

            /// Returns the value in the SI base unit (per metre).
            #[inline]
            pub const fn $getter(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Total quantity accumulated over a wire of the given length.
            #[inline]
            pub fn total_over(self, length: Length) -> $total {
                $total::$total_ctor(self.0 * length.meters())
            }
        }

        impl Mul<Length> for $name {
            type Output = $total;
            #[inline]
            fn mul(self, rhs: Length) -> $total {
                self.total_over(rhs)
            }
        }

        impl Mul<$name> for Length {
            type Output = $total;
            #[inline]
            fn mul(self, rhs: $name) -> $total {
                rhs.total_over(self)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        /// Ratio of two like quantities is dimensionless.
        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", format_eng(self.0, $unit))
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(q: $name) -> f64 {
                q.0
            }
        }

        impl $total {
            /// Distributes a total quantity uniformly over a wire of the given
            /// length, yielding the per-unit-length value.
            ///
            /// # Panics
            ///
            /// Panics if `length` is zero.
            #[inline]
            pub fn per_length_over(self, length: Length) -> $name {
                assert!(
                    length.meters() != 0.0,
                    "cannot distribute a quantity over a zero-length wire"
                );
                $name(self.$total_getter() / length.meters())
            }
        }
    };
}

per_length_quantity!(
    /// Wire resistance per unit length, in ohms per metre.
    ResistancePerLength,
    "Ω/m",
    from_ohms_per_meter,
    ohms_per_meter,
    Resistance,
    from_ohms,
    ohms
);

per_length_quantity!(
    /// Wire capacitance per unit length, in farads per metre.
    CapacitancePerLength,
    "F/m",
    from_farads_per_meter,
    farads_per_meter,
    Capacitance,
    from_farads,
    farads
);

per_length_quantity!(
    /// Wire inductance per unit length, in henries per metre.
    InductancePerLength,
    "H/m",
    from_henries_per_meter,
    henries_per_meter,
    Inductance,
    from_henries,
    henries
);

impl ResistancePerLength {
    /// Creates a resistance per length expressed in ohms per millimetre
    /// (a common way to quote on-chip wire resistance).
    #[inline]
    pub fn from_ohms_per_millimeter(value: f64) -> Self {
        Self::from_ohms_per_meter(value * 1e3)
    }

    /// Returns the value in ohms per millimetre.
    #[inline]
    pub fn ohms_per_millimeter(self) -> f64 {
        self.ohms_per_meter() / 1e3
    }
}

impl CapacitancePerLength {
    /// Creates a capacitance per length expressed in femtofarads per micrometre
    /// (equivalently picofarads per millimetre).
    #[inline]
    pub fn from_femtofarads_per_micrometer(value: f64) -> Self {
        // 1 fF/µm = 1e-15 F / 1e-6 m = 1e-9 F/m.
        Self::from_farads_per_meter(value * 1e-9)
    }

    /// Returns the value in femtofarads per micrometre.
    #[inline]
    pub fn femtofarads_per_micrometer(self) -> f64 {
        self.farads_per_meter() / 1e-9
    }

    /// Creates a capacitance per length expressed in picofarads per centimetre,
    /// the unit used in Deutsch et al. (ref. \[7\] of the paper).
    #[inline]
    pub fn from_picofarads_per_centimeter(value: f64) -> Self {
        // 1 pF/cm = 1e-12 F / 1e-2 m = 1e-10 F/m.
        Self::from_farads_per_meter(value * 1e-10)
    }
}

impl InductancePerLength {
    /// Creates an inductance per length expressed in picohenries per micrometre.
    #[inline]
    pub fn from_picohenries_per_micrometer(value: f64) -> Self {
        // 1 pH/µm = 1e-12 H / 1e-6 m = 1e-6 H/m.
        Self::from_henries_per_meter(value * 1e-6)
    }

    /// Creates an inductance per length expressed in nanohenries per millimetre.
    #[inline]
    pub fn from_nanohenries_per_millimeter(value: f64) -> Self {
        // 1 nH/mm = 1e-9 H / 1e-3 m = 1e-6 H/m.
        Self::from_henries_per_meter(value * 1e-6)
    }

    /// Returns the value in nanohenries per millimetre.
    #[inline]
    pub fn nanohenries_per_millimeter(self) -> f64 {
        self.henries_per_meter() / 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_from_per_length_values() {
        let l = Length::from_millimeters(5.0);
        let r = ResistancePerLength::from_ohms_per_meter(2000.0);
        let c = CapacitancePerLength::from_farads_per_meter(200e-12);
        let ind = InductancePerLength::from_henries_per_meter(500e-9);
        assert_eq!((r * l).ohms(), 10.0);
        assert_eq!((l * r).ohms(), 10.0);
        assert!(((c * l).picofarads() - 1.0).abs() < 1e-12);
        assert!(((ind * l).nanohenries() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn per_length_from_totals() {
        let l = Length::from_millimeters(10.0);
        let rt = Resistance::from_ohms(30.0);
        let r = rt.per_length_over(l);
        assert_eq!(r.ohms_per_meter(), 3000.0);
        assert_eq!(r.ohms_per_millimeter(), 3.0);
    }

    #[test]
    #[should_panic]
    fn per_length_over_zero_length_panics() {
        let _ = Resistance::from_ohms(1.0).per_length_over(Length::ZERO);
    }

    #[test]
    fn scaled_unit_constructors() {
        let c = CapacitancePerLength::from_femtofarads_per_micrometer(0.2);
        assert!((c.farads_per_meter() - 0.2e-9).abs() < 1e-24);
        assert!((c.femtofarads_per_micrometer() - 0.2).abs() < 1e-12);
        let c2 = CapacitancePerLength::from_picofarads_per_centimeter(2.0);
        assert!((c2.farads_per_meter() - 2e-10).abs() < 1e-24);
        let ind = InductancePerLength::from_picohenries_per_micrometer(0.5);
        assert!((ind.henries_per_meter() - 0.5e-6).abs() < 1e-18);
        let ind2 = InductancePerLength::from_nanohenries_per_millimeter(0.5);
        assert_eq!(ind.henries_per_meter(), ind2.henries_per_meter());
        let r = ResistancePerLength::from_ohms_per_millimeter(25.0);
        assert_eq!(r.ohms_per_meter(), 25e3);
    }

    #[test]
    fn linear_arithmetic() {
        let a = ResistancePerLength::from_ohms_per_meter(10.0);
        let b = ResistancePerLength::from_ohms_per_meter(5.0);
        assert_eq!((a + b).ohms_per_meter(), 15.0);
        assert_eq!((a - b).ohms_per_meter(), 5.0);
        assert_eq!((a * 2.0).ohms_per_meter(), 20.0);
        assert_eq!((a / 2.0).ohms_per_meter(), 5.0);
        assert_eq!(a / b, 2.0);
    }

    #[test]
    fn display() {
        let c = CapacitancePerLength::from_farads_per_meter(100e-12);
        assert_eq!(format!("{c}"), "100 pF/m");
    }
}
