//! The closed-form propagation-delay model (Eq. 9) and its limiting cases.
//!
//! The paper's key observation (Fig. 2) is that the scaled 50% delay
//! `t'pd = ωn·tpd` of the Fig. 1 circuit is, to good accuracy, a function of
//! `ζ` alone. Curve-fitting that one-dimensional relationship over the range
//! relevant to global interconnect (`RT`, `CT` between 0 and 1) gives
//!
//! ```text
//! t'pd(ζ) = e^(−2.9·ζ^1.35) + 1.48·ζ              (Eq. 9)
//! ```
//!
//! with limiting behaviour
//!
//! * `L → 0` (ζ → ∞): `tpd → 0.37·R·C·l² + 0.74(Rtr·Ct + Rt·CL + Rtr·CL)` —
//!   for a bare line this is the classical distributed-RC delay `0.37·R·C·l²`,
//!   quadratic in length;
//! * `R → 0` (ζ → 0): `tpd → sqrt(Lt·(Ct+CL))` — for a bare line the wave time
//!   of flight `l·sqrt(L·C)`, linear in length.

use rlckit_units::Time;

use crate::load::GateRlcLoad;

/// The scaled 50% propagation delay `t'pd` as a function of `ζ` (Eq. 9).
///
/// # Panics
///
/// Panics if `zeta` is negative or not finite (a sign of upstream
/// mis-construction; [`GateRlcLoad`] can only produce positive `ζ`).
pub fn scaled_delay(zeta: f64) -> f64 {
    assert!(zeta.is_finite() && zeta >= 0.0, "zeta must be finite and non-negative");
    (-2.9 * zeta.powf(1.35)).exp() + 1.48 * zeta
}

/// The 50% propagation delay of a gate driving an RLC load (Eq. 9 divided by `ωn`).
pub fn propagation_delay(load: &GateRlcLoad) -> Time {
    load.unscale_time(scaled_delay(load.zeta()))
}

/// The `L → 0` (RC) limit of Eq. (9):
/// `0.37·Rt·Ct + 0.74·(Rtr·Ct + Rt·CL + Rtr·CL)`.
///
/// For a bare line (no gate parasitics) this is the classical `0.37·R·C·l²`
/// distributed-RC delay quoted in the paper (Sakurai, ref. \[3\]).
pub fn rc_limit_delay(load: &GateRlcLoad) -> Time {
    let rt = load.total_resistance().ohms();
    let ct = load.total_capacitance().farads();
    let rtr = load.driver_resistance().ohms();
    let cl = load.load_capacitance().farads();
    Time::from_seconds(0.37 * rt * ct + 0.74 * (rtr * ct + rt * cl + rtr * cl))
}

/// The `R → 0` (LC) limit of Eq. (9): the time of flight `sqrt(Lt·(Ct + CL))`.
pub fn lc_limit_delay(load: &GateRlcLoad) -> Time {
    load.time_scale()
}

/// Per-cent error of the closed-form delay against a reference (typically a
/// dynamic simulation), `100·|model − reference|/reference`.
///
/// # Panics
///
/// Panics if `reference` is zero.
pub fn percent_error_vs_reference(load: &GateRlcLoad, reference: Time) -> f64 {
    propagation_delay(load).percent_error_vs(reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_units::{Capacitance, Inductance, Resistance};

    fn load(rt: f64, lt: f64, ct: f64, rtr: f64, cl: f64) -> GateRlcLoad {
        GateRlcLoad::new(
            Resistance::from_ohms(rt),
            Inductance::from_henries(lt),
            Capacitance::from_farads(ct),
            Resistance::from_ohms(rtr),
            Capacitance::from_farads(cl),
        )
        .unwrap()
    }

    #[test]
    fn scaled_delay_limits() {
        // ζ → 0 gives t' = 1 (pure time of flight).
        assert!((scaled_delay(0.0) - 1.0).abs() < 1e-12);
        // Large ζ is dominated by the linear term.
        let z = 20.0;
        assert!((scaled_delay(z) - 1.48 * z).abs() < 1e-9);
        // Eq. (9) dips slightly below 1 for small ζ (visible in the paper's
        // Fig. 2) before the linear term takes over; it must stay close to 1
        // there and be monotone once ζ exceeds ~0.6.
        for i in 0..=12 {
            let z = i as f64 * 0.05;
            assert!(scaled_delay(z) > 0.85, "t'pd collapsed at ζ = {z}");
        }
        let mut prev = scaled_delay(0.6);
        for i in 1..=100 {
            let z = 0.6 + i as f64 * 0.05;
            let cur = scaled_delay(z);
            assert!(cur >= prev - 1e-12, "t'pd should not decrease at ζ = {z}");
            prev = cur;
        }
    }

    #[test]
    #[should_panic]
    fn negative_zeta_panics() {
        let _ = scaled_delay(-0.1);
    }

    #[test]
    fn rc_limit_for_a_bare_line_is_0_37_rc() {
        // Tiny inductance, no gate parasitics: tpd ≈ 0.37·Rt·Ct.
        let l = load(1000.0, 1e-15, 1e-12, 0.0, 0.0);
        let tpd = propagation_delay(&l).seconds();
        let rc = 1000.0 * 1e-12;
        assert!((tpd - 0.37 * rc).abs() / (0.37 * rc) < 0.01, "tpd = {tpd}");
        assert!((rc_limit_delay(&l).seconds() - 0.37 * rc).abs() < 1e-18);
    }

    #[test]
    fn lc_limit_for_a_bare_line_is_time_of_flight() {
        // Tiny resistance: tpd ≈ sqrt(Lt·Ct).
        let l = load(1e-3, 10e-9, 1e-12, 0.0, 0.0);
        let tpd = propagation_delay(&l).seconds();
        let tof = (10e-9f64 * 1e-12).sqrt();
        assert!((tpd - tof).abs() / tof < 0.01, "tpd = {tpd}, tof = {tof}");
        assert!((lc_limit_delay(&l).seconds() - tof).abs() / tof < 1e-9);
    }

    #[test]
    fn delay_increases_with_any_impedance() {
        let base = load(500.0, 10e-9, 1e-12, 250.0, 0.1e-12);
        let base_delay = propagation_delay(&base);
        let more_r = load(1000.0, 10e-9, 1e-12, 250.0, 0.1e-12);
        let more_l = load(500.0, 40e-9, 1e-12, 250.0, 0.1e-12);
        let more_c = load(500.0, 10e-9, 2e-12, 250.0, 0.1e-12);
        let more_rtr = load(500.0, 10e-9, 1e-12, 500.0, 0.1e-12);
        let more_cl = load(500.0, 10e-9, 1e-12, 250.0, 0.5e-12);
        for (name, l) in
            [("Rt", more_r), ("Lt", more_l), ("Ct", more_c), ("Rtr", more_rtr), ("CL", more_cl)]
        {
            assert!(
                propagation_delay(&l) > base_delay,
                "increasing {name} should increase the delay"
            );
        }
    }

    #[test]
    fn matches_paper_table1_rt_half_ct_half_column() {
        // Table 1, RT = 0.5, CT = 0.5 row: Eq. (9) gives 1489 ps at Lt = 1 µH·10⁻³
        // (i.e. 10⁻⁶ H) and 1277 ps at 10⁻⁸ H (values from the paper's Eq. 9 column).
        let l_1e6 = load(1000.0, 1e-6, 1e-12, 500.0, 0.5e-12);
        let tpd = propagation_delay(&l_1e6).picoseconds();
        assert!((tpd - 1489.0).abs() < 15.0, "tpd = {tpd} ps, paper says 1489 ps");

        let l_1e8 = load(1000.0, 1e-8, 1e-12, 500.0, 0.5e-12);
        let tpd = propagation_delay(&l_1e8).picoseconds();
        // The paper's printed value is 1277 ps; evaluating Eq. (9) exactly gives
        // 1295 ps (a 1.4% difference attributable to rounding in the paper's table).
        assert!((tpd - 1277.0).abs() < 25.0, "tpd = {tpd} ps, paper says 1277 ps");
    }

    #[test]
    fn matches_paper_table1_rt_one_ct_one_column() {
        // Table 1, RT = 1.0: Eq. (9) gives 1297 ps at CT = 1.0, Lt = 10⁻⁷ H
        // and 630 ps at CT = 0.1, Lt = 10⁻⁸ H.
        let a = load(500.0, 1e-7, 1e-12, 500.0, 1e-12);
        let tpd = propagation_delay(&a).picoseconds();
        assert!((tpd - 1297.0).abs() < 15.0, "tpd = {tpd} ps, paper says 1297 ps");

        let b = load(500.0, 1e-8, 1e-12, 500.0, 0.1e-12);
        let tpd = propagation_delay(&b).picoseconds();
        assert!((tpd - 630.0).abs() < 10.0, "tpd = {tpd} ps, paper says 630 ps");
    }

    #[test]
    fn percent_error_helper() {
        let l = load(500.0, 10e-9, 1e-12, 250.0, 0.1e-12);
        let tpd = propagation_delay(&l);
        assert!(percent_error_vs_reference(&l, tpd) < 1e-9);
        let off = Time::from_seconds(tpd.seconds() * 1.10);
        assert!((percent_error_vs_reference(&l, off) - 100.0 / 11.0).abs() < 0.1);
    }
}
