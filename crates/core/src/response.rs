//! Two-pole analytic step response of the driven line.
//!
//! Eq. (9) predicts only the 50% point. When a full waveform is useful (e.g.
//! overshoot estimation, or delay at thresholds other than 50%), the first two
//! exact transfer-function moments `b1`, `b2` (see
//! [`rlckit_interconnect::moments`]) define a two-pole Padé approximation
//!
//! ```text
//! H₂(s) = 1 / (1 + b1·s + b2·s²)
//! ```
//!
//! whose step response has a familiar closed form in each damping regime.
//! This is the same second-order truncation that underlies Eq. (7) of the
//! paper; it is exact in both limiting cases (pure RC single pole dominant,
//! pure LC oscillator) and a good approximation in between.

use rlckit_interconnect::moments::TransferMoments;
use rlckit_numeric::roots::{brent, expand_bracket};
use rlckit_units::Time;

use crate::error::CoreError;
use crate::load::GateRlcLoad;

/// A second-order (two-pole) model of the driven-line step response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPoleResponse {
    /// Natural frequency of the two-pole model, `1/sqrt(b2)` (rad/s).
    natural_frequency: f64,
    /// Damping ratio of the two-pole model, `b1 / (2·sqrt(b2))`.
    damping_ratio: f64,
}

impl TwoPoleResponse {
    /// Builds the two-pole model for a gate-driven RLC load.
    pub fn of(load: &GateRlcLoad) -> Self {
        let m = TransferMoments::from_impedances(
            load.total_resistance().ohms(),
            load.total_inductance().henries(),
            load.total_capacitance().farads(),
            load.driver_resistance().ohms(),
            load.load_capacitance().farads(),
        );
        Self::from_moments(&m)
    }

    /// Builds the two-pole model directly from transfer-function moments.
    pub fn from_moments(moments: &TransferMoments) -> Self {
        let b1 = moments.b1;
        let b2 = moments.b2;
        Self { natural_frequency: 1.0 / b2.sqrt(), damping_ratio: b1 / (2.0 * b2.sqrt()) }
    }

    /// Natural frequency `ωn₂ = 1/sqrt(b2)` in radians per second.
    pub fn natural_frequency(&self) -> f64 {
        self.natural_frequency
    }

    /// Damping ratio `ζ₂ = b1/(2·sqrt(b2))`.
    ///
    /// Note this is the damping ratio of the *two-pole approximation*; it is
    /// close to, but not identical to, the paper's `ζ` of Eq. (6).
    pub fn damping_ratio(&self) -> f64 {
        self.damping_ratio
    }

    /// Value of the unit-step response at time `t`.
    ///
    /// Returns 0 for `t <= 0` and approaches 1 as `t → ∞`.
    pub fn step_response(&self, t: Time) -> f64 {
        let ts = t.seconds();
        if ts <= 0.0 {
            return 0.0;
        }
        let wn = self.natural_frequency;
        let zeta = self.damping_ratio;
        let x = wn * ts;
        if zeta < 1.0 - 1e-9 {
            let wd = (1.0 - zeta * zeta).sqrt();
            1.0 - (-zeta * x).exp() * ((wd * x).cos() + zeta / wd * (wd * x).sin())
        } else if zeta > 1.0 + 1e-9 {
            // Two real poles p1,2 = ωn(−ζ ± sqrt(ζ²−1)).
            let root = (zeta * zeta - 1.0).sqrt();
            let p1 = -zeta + root; // scaled by ωn below
            let p2 = -zeta - root;
            1.0 + (p2 * (p1 * x).exp() - p1 * (p2 * x).exp()) / (p1 - p2)
        } else {
            1.0 - (1.0 + x) * (-x).exp()
        }
    }

    /// Peak overshoot above the final value, in per cent (zero when overdamped).
    pub fn overshoot_percent(&self) -> f64 {
        let zeta = self.damping_ratio;
        if zeta >= 1.0 {
            0.0
        } else {
            100.0 * (-std::f64::consts::PI * zeta / (1.0 - zeta * zeta).sqrt()).exp()
        }
    }

    /// Time at which the step response first crosses the given fraction of the
    /// final value (e.g. `0.5` for the 50% delay).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Evaluation`] if `fraction` is not in `(0, 1)` or
    /// the crossing cannot be bracketed.
    pub fn delay_to_fraction(&self, fraction: f64) -> Result<Time, CoreError> {
        if !(fraction > 0.0 && fraction < 1.0) {
            return Err(CoreError::Evaluation {
                reason: format!("threshold fraction {fraction} must lie strictly between 0 and 1"),
            });
        }
        let f = |t: f64| self.step_response(Time::from_seconds(t)) - fraction;
        let scale = 1.0 / self.natural_frequency;
        let (lo, hi) =
            expand_bracket(f, 0.0, scale, 2.0, 80).map_err(|e| CoreError::Evaluation {
                reason: format!("could not bracket the {fraction} crossing: {e}"),
            })?;
        let root = brent(f, lo, hi, scale * 1e-12, 200).map_err(|e| CoreError::Evaluation {
            reason: format!("could not refine the {fraction} crossing: {e}"),
        })?;
        Ok(Time::from_seconds(root))
    }

    /// The 50% propagation delay of the two-pole model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Evaluation`] if the crossing cannot be located.
    pub fn delay_50(&self) -> Result<Time, CoreError> {
        self.delay_to_fraction(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::propagation_delay;
    use rlckit_units::{Capacitance, Inductance, Resistance};

    fn load(rt: f64, lt: f64, ct: f64, rtr: f64, cl: f64) -> GateRlcLoad {
        GateRlcLoad::new(
            Resistance::from_ohms(rt),
            Inductance::from_henries(lt),
            Capacitance::from_farads(ct),
            Resistance::from_ohms(rtr),
            Capacitance::from_farads(cl),
        )
        .unwrap()
    }

    #[test]
    fn step_response_is_causal_and_settles() {
        let r = TwoPoleResponse::of(&load(500.0, 10e-9, 1e-12, 250.0, 0.1e-12));
        assert_eq!(r.step_response(Time::ZERO), 0.0);
        assert_eq!(r.step_response(Time::from_seconds(-1.0)), 0.0);
        let late = 20.0 / r.natural_frequency();
        assert!((r.step_response(Time::from_seconds(late)) - 1.0).abs() < 0.05);
    }

    #[test]
    fn underdamped_load_overshoots_overdamped_does_not() {
        let ringing = TwoPoleResponse::of(&load(100.0, 1e-7, 1e-12, 0.0, 0.0));
        assert!(ringing.damping_ratio() < 1.0);
        assert!(ringing.overshoot_percent() > 10.0);
        let sluggish = TwoPoleResponse::of(&load(5000.0, 1e-9, 1e-12, 1000.0, 0.5e-12));
        assert!(sluggish.damping_ratio() > 1.0);
        assert_eq!(sluggish.overshoot_percent(), 0.0);
    }

    #[test]
    fn all_three_regimes_evaluate_continuously() {
        // Values chosen so the two-pole damping ratio straddles 1.
        let nearly_critical = TwoPoleResponse::of(&load(632.0, 1e-7, 1e-12, 0.0, 0.0));
        let t = Time::from_seconds(1.0 / nearly_critical.natural_frequency());
        let v = nearly_critical.step_response(t);
        assert!(v > 0.0 && v < 1.0);
        // Critically damped formula reachable via from_moments with b1 = 2·sqrt(b2).
        let m = TransferMoments { b1: 2e-9, b2: 1e-18, b3: 0.0 };
        let critical = TwoPoleResponse::from_moments(&m);
        assert!((critical.damping_ratio() - 1.0).abs() < 1e-12);
        let v = critical.step_response(Time::from_nanoseconds(1.0));
        assert!((v - (1.0 - 2.0 * (-1.0f64).exp())).abs() < 1e-9);
    }

    #[test]
    fn delay_50_is_close_to_the_closed_form_model() {
        // Across a range of damping regimes the two-pole 50% delay should land
        // within ~15% of Eq. (9) (both approximate the same exact response).
        for &(rt, lt) in &[(250.0, 1e-7), (500.0, 1e-8), (1000.0, 1e-8), (2000.0, 1e-9)] {
            let l = load(rt, lt, 1e-12, 500.0, 0.5e-12);
            let two_pole = TwoPoleResponse::of(&l).delay_50().unwrap().seconds();
            let closed_form = propagation_delay(&l).seconds();
            let err = (two_pole - closed_form).abs() / closed_form;
            assert!(
                err < 0.15,
                "Rt = {rt}, Lt = {lt}: two-pole {two_pole}, Eq. 9 {closed_form}, err {err}"
            );
        }
    }

    #[test]
    fn delay_to_other_fractions_is_ordered() {
        let r = TwoPoleResponse::of(&load(500.0, 10e-9, 1e-12, 250.0, 0.1e-12));
        let d10 = r.delay_to_fraction(0.1).unwrap();
        let d50 = r.delay_to_fraction(0.5).unwrap();
        let d90 = r.delay_to_fraction(0.9).unwrap();
        assert!(d10 < d50 && d50 < d90);
    }

    #[test]
    fn invalid_fraction_is_rejected() {
        let r = TwoPoleResponse::of(&load(500.0, 10e-9, 1e-12, 250.0, 0.1e-12));
        assert!(r.delay_to_fraction(0.0).is_err());
        assert!(r.delay_to_fraction(1.0).is_err());
        assert!(r.delay_to_fraction(-0.5).is_err());
    }
}
