//! Bookkeeping for model-versus-reference delay comparisons.
//!
//! The paper's Table 1 is a grid of "Eq. (9) vs AS/X vs per-cent error" cells.
//! [`AccuracyTable`] collects such rows (from any reference — the transient
//! ladder simulator, the exact Laplace-domain response, or published numbers)
//! and summarises the error statistics, so the bench harness and the tests can
//! assert the paper's "< 5% error" claim mechanically.

use std::fmt;

use rlckit_numeric::stats::{error_summary, ErrorSummary, StatsError};
use rlckit_units::Time;

/// One model-versus-reference comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Human-readable operating-point label (e.g. `"RT=0.5 CT=1.0 Lt=1e-7"`).
    pub label: String,
    /// Delay predicted by the model under test.
    pub model: Time,
    /// Reference delay (simulation or published value).
    pub reference: Time,
}

impl ComparisonRow {
    /// Per-cent error of the model against the reference.
    ///
    /// # Panics
    ///
    /// Panics if the reference delay is zero.
    pub fn percent_error(&self) -> f64 {
        self.model.percent_error_vs(self.reference)
    }
}

/// A collection of comparison rows with summary statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccuracyTable {
    rows: Vec<ComparisonRow>,
}

impl AccuracyTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a comparison row.
    pub fn push(&mut self, label: impl Into<String>, model: Time, reference: Time) {
        self.rows.push(ComparisonRow { label: label.into(), model, reference });
    }

    /// The collected rows.
    pub fn rows(&self) -> &[ComparisonRow] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if no rows have been collected.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Max / mean / RMS per-cent error over all rows.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] if the table is empty or a reference is zero.
    pub fn summary(&self) -> Result<ErrorSummary, StatsError> {
        let model: Vec<f64> = self.rows.iter().map(|r| r.model.seconds()).collect();
        let reference: Vec<f64> = self.rows.iter().map(|r| r.reference.seconds()).collect();
        error_summary(&model, &reference)
    }

    /// Returns `true` if every row's error is below `threshold_percent`.
    pub fn all_within(&self, threshold_percent: f64) -> bool {
        self.rows.iter().all(|r| r.percent_error() <= threshold_percent)
    }

    /// The row with the largest error, if any.
    pub fn worst(&self) -> Option<&ComparisonRow> {
        self.rows.iter().max_by(|a, b| {
            a.percent_error().partial_cmp(&b.percent_error()).expect("finite errors")
        })
    }
}

impl fmt::Display for AccuracyTable {
    /// Renders the table as GitHub-flavoured markdown.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "| operating point | model (ps) | reference (ps) | error |")?;
        writeln!(f, "|---|---:|---:|---:|")?;
        for row in &self.rows {
            writeln!(
                f,
                "| {} | {:.1} | {:.1} | {:.2}% |",
                row.label,
                row.model.picoseconds(),
                row.reference.picoseconds(),
                row.percent_error()
            )?;
        }
        if let Ok(summary) = self.summary() {
            writeln!(f, "\n{summary}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(v: f64) -> Time {
        Time::from_picoseconds(v)
    }

    #[test]
    fn row_error() {
        let row = ComparisonRow { label: "x".into(), model: ps(105.0), reference: ps(100.0) };
        assert!((row.percent_error() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn table_accumulates_and_summarises() {
        let mut table = AccuracyTable::new();
        assert!(table.is_empty());
        table.push("a", ps(102.0), ps(100.0));
        table.push("b", ps(97.0), ps(100.0));
        table.push("c", ps(100.5), ps(100.0));
        assert_eq!(table.len(), 3);
        assert!(!table.is_empty());
        let summary = table.summary().unwrap();
        assert!((summary.max_percent - 3.0).abs() < 1e-12);
        assert!(table.all_within(3.001));
        assert!(!table.all_within(2.0));
        assert_eq!(table.worst().unwrap().label, "b");
        assert_eq!(table.rows().len(), 3);
    }

    #[test]
    fn empty_table_summary_is_an_error() {
        let table = AccuracyTable::new();
        assert!(table.summary().is_err());
        assert!(table.worst().is_none());
        assert!(table.all_within(0.0));
    }

    #[test]
    fn markdown_rendering() {
        let mut table = AccuracyTable::new();
        table.push("RT=0.5 CT=0.5", ps(1489.0), ps(1509.0));
        let text = table.to_string();
        assert!(text.contains("| RT=0.5 CT=0.5 |"));
        assert!(text.contains("error"));
        assert!(text.contains("max"));
    }
}
