//! Error type for the delay-model crate.

use std::error::Error;
use std::fmt;

/// Error returned by delay-model construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An impedance value is non-positive (or negative where zero is allowed)
    /// or not finite.
    InvalidImpedance {
        /// Which impedance was invalid.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An analytic response could not be evaluated (e.g. the 50% crossing was
    /// never bracketed).
    Evaluation {
        /// Human-readable description of the failure.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidImpedance { what, value } => write!(f, "invalid {what}: {value}"),
            Self::Evaluation { reason } => write!(f, "delay-model evaluation failed: {reason}"),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CoreError::InvalidImpedance { what: "total resistance", value: -1.0 }
            .to_string()
            .contains("total resistance"));
        assert!(CoreError::Evaluation { reason: "no crossing".into() }
            .to_string()
            .contains("no crossing"));
    }
}
