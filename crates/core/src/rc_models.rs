//! Classical RC delay baselines.
//!
//! These are the models an RC-only flow would use for the same circuit; the
//! paper's Table 1 and repeater analysis quantify how far they drift from the
//! true RLC behaviour. All of them ignore `Lt` entirely.
//!
//! * [`elmore_delay`] — the first moment of the impulse response,
//!   `Rtr(Ct+CL) + Rt(Ct/2+CL)`; a pessimistic bound for the 50% delay of RC
//!   trees and the basis of most timing engines.
//! * [`sakurai_delay`] — Sakurai's 50% fit for a driven distributed RC line,
//!   `0.377·Rt·Ct + 0.693(Rtr·Ct + Rtr·CL + Rt·CL)`.
//! * [`lumped_rc_delay`] — the single-pole lumped estimate
//!   `0.693·(Rtr+Rt)(Ct+CL)`, the crudest of the three.
//! * [`rc_limit_of_closed_form`] — the `L → 0` limit of the paper's Eq. (9)
//!   (re-exported from [`crate::model`] for discoverability).

use rlckit_units::Time;

use crate::load::GateRlcLoad;
pub use crate::model::rc_limit_delay as rc_limit_of_closed_form;

/// Elmore delay `Rtr(Ct + CL) + Rt(Ct/2 + CL)` of the driven RC line.
pub fn elmore_delay(load: &GateRlcLoad) -> Time {
    rlckit_interconnect::moments::elmore_delay(
        load.total_resistance(),
        load.total_capacitance(),
        load.driver_resistance(),
        load.load_capacitance(),
    )
}

/// Sakurai's 50% delay fit for a gate driving a distributed RC line:
/// `0.377·Rt·Ct + 0.693·(Rtr·Ct + Rtr·CL + Rt·CL)`.
pub fn sakurai_delay(load: &GateRlcLoad) -> Time {
    let rt = load.total_resistance().ohms();
    let ct = load.total_capacitance().farads();
    let rtr = load.driver_resistance().ohms();
    let cl = load.load_capacitance().farads();
    Time::from_seconds(0.377 * rt * ct + 0.693 * (rtr * ct + rtr * cl + rt * cl))
}

/// Lumped single-pole RC estimate `0.693·(Rtr + Rt)·(Ct + CL)`.
pub fn lumped_rc_delay(load: &GateRlcLoad) -> Time {
    let rt = load.total_resistance().ohms();
    let ct = load.total_capacitance().farads();
    let rtr = load.driver_resistance().ohms();
    let cl = load.load_capacitance().farads();
    Time::from_seconds(0.693 * (rtr + rt) * (ct + cl))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::propagation_delay;
    use rlckit_units::{Capacitance, Inductance, Resistance};

    fn load(rt: f64, lt: f64, ct: f64, rtr: f64, cl: f64) -> GateRlcLoad {
        GateRlcLoad::new(
            Resistance::from_ohms(rt),
            Inductance::from_henries(lt),
            Capacitance::from_farads(ct),
            Resistance::from_ohms(rtr),
            Capacitance::from_farads(cl),
        )
        .unwrap()
    }

    #[test]
    fn formulas_match_hand_calculations() {
        let l = load(1000.0, 1e-8, 1e-12, 500.0, 0.2e-12);
        let elmore = elmore_delay(&l).seconds();
        assert!((elmore - (500.0 * 1.2e-12 + 1000.0 * 0.7e-12)).abs() < 1e-18);
        let sakurai = sakurai_delay(&l).seconds();
        let expected = 0.377 * 1e-9 + 0.693 * (500.0 * 1e-12 + 500.0 * 0.2e-12 + 1000.0 * 0.2e-12);
        assert!((sakurai - expected).abs() < 1e-18);
        let lumped = lumped_rc_delay(&l).seconds();
        assert!((lumped - 0.693 * 1500.0 * 1.2e-12).abs() < 1e-18);
    }

    #[test]
    fn rc_baselines_ignore_inductance() {
        let low_l = load(1000.0, 1e-9, 1e-12, 500.0, 0.2e-12);
        let high_l = load(1000.0, 1e-5, 1e-12, 500.0, 0.2e-12);
        assert_eq!(elmore_delay(&low_l), elmore_delay(&high_l));
        assert_eq!(sakurai_delay(&low_l), sakurai_delay(&high_l));
        assert_eq!(lumped_rc_delay(&low_l), lumped_rc_delay(&high_l));
    }

    #[test]
    fn rc_baselines_agree_with_closed_form_when_inductance_is_negligible() {
        // With L → 0 the paper's model and Sakurai's fit describe the same circuit.
        let l = load(1000.0, 1e-15, 1e-12, 500.0, 0.2e-12);
        let closed_form = propagation_delay(&l).seconds();
        let sakurai = sakurai_delay(&l).seconds();
        let diff = (closed_form - sakurai).abs() / sakurai;
        assert!(diff < 0.08, "closed form {closed_form} vs Sakurai {sakurai}");
        // The RC limit helper matches the closed form exactly in this regime.
        let limit = rc_limit_of_closed_form(&l).seconds();
        assert!((closed_form - limit).abs() / limit < 0.01);
    }

    #[test]
    fn rc_models_underestimate_delay_of_fast_inductive_lines() {
        // A wide, low-resistance line: the RC models predict an (unphysically)
        // tiny delay, but the signal still needs the wave time of flight. This
        // is the other face of ignoring inductance: RC is not conservative.
        let l = load(100.0, 1e-7, 1e-12, 0.0, 0.0);
        let rlc = propagation_delay(&l).seconds();
        let tof = (1e-7f64 * 1e-12).sqrt();
        assert!(rlc >= 0.9 * tof);
        assert!(sakurai_delay(&l).seconds() < rlc);
        assert!(elmore_delay(&l).seconds() < rlc);
    }

    #[test]
    fn elmore_is_an_upper_bound_among_rc_models_for_driver_dominated_nets() {
        // With a big driver the Elmore delay exceeds Sakurai's 50% estimate
        // (0.693 < 1.0 weighting of the driver term).
        let l = load(100.0, 1e-9, 1e-12, 5000.0, 0.2e-12);
        assert!(elmore_delay(&l) > sakurai_delay(&l));
    }
}
