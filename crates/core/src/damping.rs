//! Damping classification of the driven-line response.
//!
//! The parameter `ζ` of Eq. (6) plays the role of a damping factor: small `ζ`
//! means inductance dominates and the response rings (overshoots), large `ζ`
//! means resistance dominates and the response is the familiar monotone RC
//! rise. Table 1 of the paper deliberately spans both regimes; this module
//! names them.

use crate::load::GateRlcLoad;

/// Qualitative damping regime of a gate-driven RLC line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DampingRegime {
    /// `ζ < 1`: inductance-dominated, the response overshoots and rings.
    Underdamped,
    /// `ζ ≈ 1` (within ±5%): fastest monotone-ish settling.
    CriticallyDamped,
    /// `ζ > 1`: resistance-dominated, monotone RC-like response.
    Overdamped,
}

impl DampingRegime {
    /// Classifies a damping factor.
    pub fn from_zeta(zeta: f64) -> Self {
        if zeta < 0.95 {
            Self::Underdamped
        } else if zeta <= 1.05 {
            Self::CriticallyDamped
        } else {
            Self::Overdamped
        }
    }

    /// Classifies a gate-driven RLC load.
    pub fn of(load: &GateRlcLoad) -> Self {
        Self::from_zeta(load.zeta())
    }

    /// Returns `true` if the response is expected to overshoot the supply.
    pub fn overshoots(self) -> bool {
        matches!(self, Self::Underdamped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_units::{Capacitance, Inductance, Resistance};

    fn load_with_inductance(lt: f64) -> GateRlcLoad {
        GateRlcLoad::new(
            Resistance::from_ohms(500.0),
            Inductance::from_henries(lt),
            Capacitance::from_picofarads(1.0),
            Resistance::from_ohms(100.0),
            Capacitance::from_femtofarads(100.0),
        )
        .unwrap()
    }

    #[test]
    fn classification_thresholds() {
        assert_eq!(DampingRegime::from_zeta(0.2), DampingRegime::Underdamped);
        assert_eq!(DampingRegime::from_zeta(1.0), DampingRegime::CriticallyDamped);
        assert_eq!(DampingRegime::from_zeta(0.97), DampingRegime::CriticallyDamped);
        assert_eq!(DampingRegime::from_zeta(3.0), DampingRegime::Overdamped);
        assert!(DampingRegime::from_zeta(0.2).overshoots());
        assert!(!DampingRegime::from_zeta(3.0).overshoots());
        assert!(!DampingRegime::from_zeta(1.0).overshoots());
    }

    #[test]
    fn more_inductance_means_less_damping() {
        let high_l = load_with_inductance(1e-5);
        let low_l = load_with_inductance(1e-9);
        assert_eq!(DampingRegime::of(&high_l), DampingRegime::Underdamped);
        assert_eq!(DampingRegime::of(&low_l), DampingRegime::Overdamped);
    }
}
