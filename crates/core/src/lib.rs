//! The closed-form RLC propagation-delay model of Ismail & Friedman (DAC 1999).
//!
//! This crate is the paper's primary contribution: an accurate closed-form
//! estimate of the 50% propagation delay of a CMOS gate (modelled by its
//! equivalent output resistance `Rtr`) driving a uniform distributed RLC line
//! loaded by a gate input capacitance `CL`.
//!
//! The model reduces the five impedances `Rt`, `Lt`, `Ct`, `Rtr`, `CL` to a
//! single parameter `ζ` (plus a time scale `1/ωn`):
//!
//! ```text
//! ωn   = 1 / sqrt( Lt·(Ct + CL) )                                   (Eq. 3)
//! RT   = Rtr/Rt ,  CT = CL/Ct                                       (Eq. 5)
//! ζ    = (Rt/2)·sqrt(Ct/Lt)·(RT + CT + RT·CT + 0.5)/sqrt(1 + CT)    (Eq. 6)
//! t'pd = e^(−2.9·ζ^1.35) + 1.48·ζ                                   (Eq. 9)
//! tpd  = t'pd / ωn
//! ```
//!
//! Modules:
//!
//! * [`load`] — the [`GateRlcLoad`] bundle of the five impedances with its
//!   normalised quantities (`RT`, `CT`, `ωn`, `ζ`);
//! * [`model`] — Eq. (9) and its limiting cases;
//! * [`response`] — a two-pole analytic step-response model built from the
//!   exact transfer-function moments (useful for full waveforms, not just the
//!   50% point);
//! * [`rc_models`] — the classical RC baselines (Elmore, Sakurai, lumped RC)
//!   that the paper argues against;
//! * [`damping`] — over/under-damped classification;
//! * [`accuracy`] — error bookkeeping when comparing the model against a
//!   dynamic simulation.
//!
//! Everything downstream of the closed forms — repeater insertion, the
//! coupled-bus baselines and the sweep engine's delay evaluators — funnels
//! through [`load::GateRlcLoad`] and [`model::propagation_delay`], so this
//! crate's public surface is deliberately small and fully documented
//! (`#![warn(missing_docs)]`, an error in CI).
//!
//! # Example
//!
//! ```
//! use rlckit_core::load::GateRlcLoad;
//! use rlckit_core::model::propagation_delay;
//! use rlckit_units::{Capacitance, Inductance, Resistance};
//!
//! # fn main() -> Result<(), rlckit_core::CoreError> {
//! // One of the Table 1 operating points: Ct = 1 pF, Rtr = 500 Ω, RT = 1, CT = 0.5.
//! let load = GateRlcLoad::new(
//!     Resistance::from_ohms(500.0),
//!     Inductance::from_henries(1e-7),
//!     Capacitance::from_picofarads(1.0),
//!     Resistance::from_ohms(500.0),
//!     Capacitance::from_picofarads(0.5),
//! )?;
//! let tpd = propagation_delay(&load);
//! assert!(tpd.picoseconds() > 500.0 && tpd.picoseconds() < 2000.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod damping;
pub mod error;
pub mod load;
pub mod model;
pub mod rc_models;
pub mod response;

pub use error::CoreError;
pub use load::GateRlcLoad;
