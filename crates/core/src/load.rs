//! The five-impedance description of a gate driving an RLC line.
//!
//! [`GateRlcLoad`] carries `Rt`, `Lt`, `Ct`, `Rtr` and `CL` (Fig. 1 of the
//! paper) and exposes the normalised quantities the closed-form model is
//! built from: the gate/line ratios `RT` and `CT` (Eq. 5), the time scale
//! `ωn` (Eq. 3) and the collapsed parameter `ζ` (Eq. 6).

use rlckit_interconnect::twoport::DrivenLine;
use rlckit_interconnect::DistributedLine;
use rlckit_units::{Capacitance, Inductance, Resistance, Time};

use crate::error::CoreError;

/// A CMOS gate driving a distributed RLC line with a capacitive load — the
/// circuit of Fig. 1 described by its five total impedances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateRlcLoad {
    total_resistance: Resistance,
    total_inductance: Inductance,
    total_capacitance: Capacitance,
    driver_resistance: Resistance,
    load_capacitance: Capacitance,
}

impl GateRlcLoad {
    /// Creates the load description from the five impedances.
    ///
    /// `Rt`, `Lt`, `Ct` must be strictly positive; `Rtr` and `CL` may be zero
    /// (ideal driver / open far end).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidImpedance`] if any value violates the rules
    /// above or is not finite.
    pub fn new(
        total_resistance: Resistance,
        total_inductance: Inductance,
        total_capacitance: Capacitance,
        driver_resistance: Resistance,
        load_capacitance: Capacitance,
    ) -> Result<Self, CoreError> {
        let strictly_positive = |v: f64, what: &'static str| -> Result<(), CoreError> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(CoreError::InvalidImpedance { what, value: v })
            }
        };
        let non_negative = |v: f64, what: &'static str| -> Result<(), CoreError> {
            if v.is_finite() && v >= 0.0 {
                Ok(())
            } else {
                Err(CoreError::InvalidImpedance { what, value: v })
            }
        };
        strictly_positive(total_resistance.ohms(), "total line resistance")?;
        strictly_positive(total_inductance.henries(), "total line inductance")?;
        strictly_positive(total_capacitance.farads(), "total line capacitance")?;
        non_negative(driver_resistance.ohms(), "driver resistance")?;
        non_negative(load_capacitance.farads(), "load capacitance")?;
        Ok(Self {
            total_resistance,
            total_inductance,
            total_capacitance,
            driver_resistance,
            load_capacitance,
        })
    }

    /// Builds the load description from a [`DistributedLine`] plus its
    /// terminations.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidImpedance`] under the same rules as [`GateRlcLoad::new`].
    pub fn from_line(
        line: &DistributedLine,
        driver_resistance: Resistance,
        load_capacitance: Capacitance,
    ) -> Result<Self, CoreError> {
        Self::new(
            line.total_resistance(),
            line.total_inductance(),
            line.total_capacitance(),
            driver_resistance,
            load_capacitance,
        )
    }

    /// Builds the load description from an exact-analysis [`DrivenLine`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidImpedance`] under the same rules as [`GateRlcLoad::new`].
    pub fn from_driven_line(driven: &DrivenLine) -> Result<Self, CoreError> {
        Self::from_line(driven.line(), driven.driver_resistance(), driven.load_capacitance())
    }

    /// Total line resistance `Rt`.
    pub fn total_resistance(&self) -> Resistance {
        self.total_resistance
    }

    /// Total line inductance `Lt`.
    pub fn total_inductance(&self) -> Inductance {
        self.total_inductance
    }

    /// Total line capacitance `Ct`.
    pub fn total_capacitance(&self) -> Capacitance {
        self.total_capacitance
    }

    /// Driver equivalent output resistance `Rtr`.
    pub fn driver_resistance(&self) -> Resistance {
        self.driver_resistance
    }

    /// Receiver input capacitance `CL`.
    pub fn load_capacitance(&self) -> Capacitance {
        self.load_capacitance
    }

    /// Normalised driver resistance `RT = Rtr / Rt` (Eq. 5).
    pub fn rt_ratio(&self) -> f64 {
        self.driver_resistance.ohms() / self.total_resistance.ohms()
    }

    /// Normalised load capacitance `CT = CL / Ct` (Eq. 5).
    pub fn ct_ratio(&self) -> f64 {
        self.load_capacitance.farads() / self.total_capacitance.farads()
    }

    /// The scaling frequency `ωn = 1/sqrt(Lt·(Ct + CL))` in radians per second (Eq. 3).
    pub fn omega_n(&self) -> f64 {
        1.0 / (self.total_inductance.henries()
            * (self.total_capacitance.farads() + self.load_capacitance.farads()))
        .sqrt()
    }

    /// The time scale `1/ωn` as a [`Time`].
    pub fn time_scale(&self) -> Time {
        Time::from_seconds(1.0 / self.omega_n())
    }

    /// The collapsed damping-like parameter `ζ` of Eq. (6):
    ///
    /// ```text
    /// ζ = (Rt/2)·sqrt(Ct/Lt)·(RT + CT + RT·CT + 0.5) / sqrt(1 + CT)
    /// ```
    pub fn zeta(&self) -> f64 {
        let rt = self.total_resistance.ohms();
        let lt = self.total_inductance.henries();
        let ct = self.total_capacitance.farads();
        let rt_ratio = self.rt_ratio();
        let ct_ratio = self.ct_ratio();
        (rt / 2.0) * (ct / lt).sqrt() * (rt_ratio + ct_ratio + rt_ratio * ct_ratio + 0.5)
            / (1.0 + ct_ratio).sqrt()
    }

    /// Converts a scaled (dimensionless) time `t' = ωn·t` back to seconds.
    pub fn unscale_time(&self, scaled: f64) -> Time {
        Time::from_seconds(scaled / self.omega_n())
    }

    /// Converts a physical time to the scaled (dimensionless) time `t' = ωn·t`.
    pub fn scale_time(&self, t: Time) -> f64 {
        t.seconds() * self.omega_n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_units::Length;

    fn table1_load(rt_ratio: f64, ct_ratio: f64, lt_henries: f64) -> GateRlcLoad {
        // Table 1 fixes Ct = 1 pF and Rtr = 500 Ω; RT and CT select Rt and CL.
        let rtr = 500.0;
        let ct = 1e-12;
        GateRlcLoad::new(
            Resistance::from_ohms(rtr / rt_ratio),
            Inductance::from_henries(lt_henries),
            Capacitance::from_farads(ct),
            Resistance::from_ohms(rtr),
            Capacitance::from_farads(ct_ratio * ct),
        )
        .unwrap()
    }

    #[test]
    fn ratios_match_construction() {
        let load = table1_load(0.5, 0.5, 1e-7);
        assert!((load.rt_ratio() - 0.5).abs() < 1e-12);
        assert!((load.ct_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(load.total_resistance().ohms(), 1000.0);
        assert_eq!(load.driver_resistance().ohms(), 500.0);
        assert!((load.load_capacitance().picofarads() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn omega_n_matches_equation_three() {
        let load = table1_load(1.0, 1.0, 1e-7);
        let expected = 1.0 / (1e-7f64 * 2e-12).sqrt();
        assert!((load.omega_n() - expected).abs() / expected < 1e-12);
        assert!((load.time_scale().seconds() - 1.0 / expected).abs() < 1e-18);
    }

    #[test]
    fn zeta_matches_equation_six_by_hand() {
        // RT = CT = 0.5, Rt = 1 kΩ, Ct = 1 pF, Lt = 100 nH.
        let load = table1_load(0.5, 0.5, 1e-7);
        let by_hand =
            (1000.0 / 2.0) * (1e-12f64 / 1e-7).sqrt() * (0.5 + 0.5 + 0.25 + 0.5) / 1.5f64.sqrt();
        assert!((load.zeta() - by_hand).abs() / by_hand < 1e-12);
    }

    #[test]
    fn zeta_grows_as_inductance_shrinks() {
        let low_l = table1_load(0.5, 0.5, 1e-8);
        let high_l = table1_load(0.5, 0.5, 1e-5);
        assert!(low_l.zeta() > high_l.zeta());
    }

    #[test]
    fn time_scaling_round_trips() {
        let load = table1_load(1.0, 0.1, 1e-8);
        let t = Time::from_picoseconds(123.0);
        let scaled = load.scale_time(t);
        assert!((load.unscale_time(scaled).picoseconds() - 123.0).abs() < 1e-9);
    }

    #[test]
    fn construction_from_a_distributed_line() {
        let line = DistributedLine::from_totals(
            Resistance::from_ohms(500.0),
            Inductance::from_nanohenries(10.0),
            Capacitance::from_picofarads(1.0),
            Length::from_millimeters(10.0),
        )
        .unwrap();
        let load = GateRlcLoad::from_line(
            &line,
            Resistance::from_ohms(250.0),
            Capacitance::from_femtofarads(100.0),
        )
        .unwrap();
        assert_eq!(load.total_resistance().ohms(), 500.0);
        assert!((load.ct_ratio() - 0.1).abs() < 1e-12);

        let driven = DrivenLine::new(
            line,
            Resistance::from_ohms(250.0),
            Capacitance::from_femtofarads(100.0),
        )
        .unwrap();
        let load2 = GateRlcLoad::from_driven_line(&driven).unwrap();
        assert_eq!(load, load2);
    }

    #[test]
    fn invalid_impedances_are_rejected() {
        let ok = |v| Resistance::from_ohms(v);
        assert!(GateRlcLoad::new(
            ok(0.0),
            Inductance::from_nanohenries(1.0),
            Capacitance::from_picofarads(1.0),
            ok(0.0),
            Capacitance::ZERO
        )
        .is_err());
        assert!(GateRlcLoad::new(
            ok(1.0),
            Inductance::from_henries(0.0),
            Capacitance::from_picofarads(1.0),
            ok(0.0),
            Capacitance::ZERO
        )
        .is_err());
        assert!(GateRlcLoad::new(
            ok(1.0),
            Inductance::from_nanohenries(1.0),
            Capacitance::from_farads(f64::NAN),
            ok(0.0),
            Capacitance::ZERO
        )
        .is_err());
        assert!(GateRlcLoad::new(
            ok(1.0),
            Inductance::from_nanohenries(1.0),
            Capacitance::from_picofarads(1.0),
            ok(-1.0),
            Capacitance::ZERO
        )
        .is_err());
        assert!(GateRlcLoad::new(
            ok(1.0),
            Inductance::from_nanohenries(1.0),
            Capacitance::from_picofarads(1.0),
            ok(0.0),
            Capacitance::from_farads(-1e-15)
        )
        .is_err());
        // Zero driver resistance and load capacitance are fine.
        assert!(GateRlcLoad::new(
            ok(1.0),
            Inductance::from_nanohenries(1.0),
            Capacitance::from_picofarads(1.0),
            ok(0.0),
            Capacitance::ZERO
        )
        .is_ok());
    }
}
