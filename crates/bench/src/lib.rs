//! Experiment harness for reproducing every table and figure of the paper.
//!
//! Each binary under `src/bin/` regenerates one experiment (see DESIGN.md and
//! EXPERIMENTS.md for the index); the Criterion benches under `benches/`
//! measure the runtime cost of the closed forms against the numerical and
//! simulation-based alternatives. This library crate holds the small
//! report-formatting helpers those targets share, plus the bench-regression
//! gate ([`check`]) that keeps the committed `BENCH_*.json` trajectories
//! honest in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod report;

pub use report::Table;
