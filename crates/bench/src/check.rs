//! The bench-regression gate: structural and numeric comparison of
//! `BENCH_*.json` perf trajectories.
//!
//! CI regenerates every trajectory in smoke mode (`RLCKIT_BENCH_SMOKE=1`,
//! shrunk sweeps over the *cheapest prefix* of each bench's full parameter
//! set) and diffs the fresh files against the committed full-run baselines
//! with [`compare_reports`]:
//!
//! * **structure is exact** — the top-level schema, the per-record keys and
//!   the units must match; every fresh record name must exist in the
//!   baseline (a rename or a new metric fails until the baseline is
//!   recommitted) and every baseline metric *family* (the `name` prefix
//!   before `/`) must still be produced (a silently deleted writer fails);
//! * **numbers are sane** — every value must be finite, non-null and of the
//!   same sign as its baseline, and where the same record exists on both
//!   sides the magnitudes must agree within a *generous* ratio tolerance.
//!   Smoke runs repeat the same workloads as the full run at the shared
//!   sizes, so the tolerance only needs to absorb machine and load noise —
//!   not orders of magnitude: a unit mix-up (ps vs s), a zeroed metric or a
//!   catastrophic slowdown all land far outside it.
//!
//! The comparison is a plain function over parsed reports so the failure
//! modes are unit-testable; the `bench-check` binary wires it to
//! directories.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::Path;

/// Default ratio tolerance: fresh/baseline magnitude may differ by up to
/// this factor either way. Generous on purpose — the gate exists to catch
/// structural rot and order-of-magnitude regressions, not scheduler noise.
pub const DEFAULT_TOLERANCE: f64 = 100.0;

/// A minimal JSON value — just enough to audit the flat trajectory format.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

/// One `{"name": …, "value": …, "unit": …}` record of a parsed report.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedRecord {
    /// Metric name (`"sparse/1082"`).
    pub name: String,
    /// Measured value; `None` for JSON `null` (a non-finite measurement).
    pub value: Option<f64>,
    /// Unit string (`"seconds"`, `"x"`, `"count"`, …).
    pub unit: String,
}

impl ParsedRecord {
    /// The metric family: the name up to the first `/` (the whole name when
    /// there is no `/`). `"sparse/1082"` → `"sparse"`.
    pub fn family(&self) -> &str {
        self.name.split('/').next().unwrap_or(&self.name)
    }
}

/// A parsed `BENCH_*.json` trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedReport {
    /// The bench name from the `"bench"` field.
    pub bench: String,
    /// The records, in file order.
    pub records: Vec<ParsedRecord>,
}

/// Parses the flat trajectory format, rejecting any structural deviation
/// (unknown keys, missing keys, wrong value types).
///
/// # Errors
///
/// Returns a human-readable description of the first structural problem.
pub fn parse_report(text: &str) -> Result<ParsedReport, String> {
    let json = parse_json(text)?;
    let Json::Object(fields) = &json else {
        return Err("top level must be a JSON object".to_owned());
    };
    let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    if keys != ["bench", "results"] {
        return Err(format!("top-level keys must be [bench, results], got {keys:?}"));
    }
    let Json::String(bench) = &fields[0].1 else {
        return Err("\"bench\" must be a string".to_owned());
    };
    let Json::Array(items) = &fields[1].1 else {
        return Err("\"results\" must be an array".to_owned());
    };
    let mut records = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let Json::Object(fields) = item else {
            return Err(format!("result {i} must be an object"));
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        if keys != ["name", "value", "unit"] {
            return Err(format!("result {i} keys must be [name, value, unit], got {keys:?}"));
        }
        let Json::String(name) = &fields[0].1 else {
            return Err(format!("result {i}: \"name\" must be a string"));
        };
        let value = match &fields[1].1 {
            Json::Number(v) => Some(*v),
            Json::Null => None,
            other => return Err(format!("result {i}: \"value\" must be a number, got {other:?}")),
        };
        let Json::String(unit) = &fields[2].1 else {
            return Err(format!("result {i}: \"unit\" must be a string"));
        };
        records.push(ParsedRecord { name: name.clone(), value, unit: unit.clone() });
    }
    Ok(ParsedReport { bench: bench.clone(), records })
}

/// Compares a fresh (smoke-run) report against its committed baseline.
///
/// Returns one message per violation; an empty vector means the gate passes.
pub fn compare_reports(
    baseline: &ParsedReport,
    fresh: &ParsedReport,
    tolerance: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    if baseline.bench != fresh.bench {
        violations
            .push(format!("bench renamed: baseline {:?}, fresh {:?}", baseline.bench, fresh.bench));
    }

    // Every fresh record must exist in the baseline, with the same unit.
    for record in &fresh.records {
        match baseline.records.iter().find(|b| b.name == record.name) {
            None => violations.push(format!(
                "metric {:?} is not in the committed baseline (renamed or added without \
                 recommitting the full-run trajectory)",
                record.name
            )),
            Some(base) => {
                if base.unit != record.unit {
                    violations.push(format!(
                        "metric {:?} changed unit: baseline {:?}, fresh {:?}",
                        record.name, base.unit, record.unit
                    ));
                }
                check_values(record, base, tolerance, &mut violations);
            }
        }
    }

    // Every baseline metric family must still be produced: smoke runs shrink
    // each sweep to a prefix but never drop a whole metric.
    let fresh_families: BTreeSet<&str> = fresh.records.iter().map(ParsedRecord::family).collect();
    let baseline_families: BTreeSet<&str> =
        baseline.records.iter().map(ParsedRecord::family).collect();
    for family in baseline_families.difference(&fresh_families) {
        violations.push(format!(
            "metric family {family:?} is in the committed baseline but the bench no longer \
             produces it"
        ));
    }
    violations
}

fn check_values(
    fresh: &ParsedRecord,
    baseline: &ParsedRecord,
    tolerance: f64,
    violations: &mut Vec<String>,
) {
    let name = &fresh.name;
    let (Some(b), Some(f)) = (baseline.value, fresh.value) else {
        violations.push(format!(
            "metric {name:?} has a null (non-finite) value: baseline {:?}, fresh {:?}",
            baseline.value, fresh.value
        ));
        return;
    };
    if !b.is_finite() || !f.is_finite() {
        violations.push(format!("metric {name:?} is non-finite: baseline {b}, fresh {f}"));
        return;
    }
    if b == 0.0 && f == 0.0 {
        return;
    }
    if b == 0.0 || f == 0.0 || b.signum() != f.signum() {
        violations.push(format!(
            "metric {name:?} changed sign or collapsed to zero: baseline {b}, fresh {f}"
        ));
        return;
    }
    let ratio = (f / b).abs();
    if ratio > tolerance || ratio < 1.0 / tolerance {
        violations.push(format!(
            "metric {name:?} moved {ratio:.3}x against the baseline (tolerance {tolerance}x): \
             baseline {b}, fresh {f}"
        ));
    }
}

/// Compares every `BENCH_*.json` in `baseline_dir` against its counterpart
/// in `fresh_dir`.
///
/// A baseline without a fresh counterpart (a bench that stopped writing its
/// trajectory) and a fresh trajectory without a baseline (a bench added
/// without committing its full run) are both violations.
///
/// # Errors
///
/// Propagates I/O errors from listing or reading the directories; parse
/// failures are reported as violations, not errors.
pub fn check_directories(
    baseline_dir: &Path,
    fresh_dir: &Path,
    tolerance: f64,
) -> std::io::Result<Vec<String>> {
    let list = |dir: &Path| -> std::io::Result<BTreeSet<String>> {
        let mut names = BTreeSet::new();
        for entry in std::fs::read_dir(dir)? {
            let name = entry?.file_name().to_string_lossy().into_owned();
            if name.starts_with("BENCH_") && name.ends_with(".json") {
                names.insert(name);
            }
        }
        Ok(names)
    };
    let baselines = list(baseline_dir)?;
    let fresh_files = list(fresh_dir)?;

    let mut violations = Vec::new();
    for name in baselines.difference(&fresh_files) {
        violations.push(format!("baseline {name} has no freshly generated counterpart"));
    }
    for name in fresh_files.difference(&baselines) {
        violations.push(format!("fresh {name} has no committed baseline"));
    }
    for name in baselines.intersection(&fresh_files) {
        let read_parse = |dir: &Path| -> Result<ParsedReport, String> {
            let text = std::fs::read_to_string(dir.join(name)).map_err(|e| e.to_string())?;
            parse_report(&text)
        };
        match (read_parse(baseline_dir), read_parse(fresh_dir)) {
            (Ok(baseline), Ok(fresh)) => {
                for v in compare_reports(&baseline, &fresh, tolerance) {
                    violations.push(format!("{name}: {v}"));
                }
            }
            (Err(e), _) => violations.push(format!("{name}: baseline unreadable: {e}")),
            (_, Err(e)) => violations.push(format!("{name}: fresh file unreadable: {e}")),
        }
    }
    Ok(violations)
}

/// One span entry of a parsed `PROFILE_*.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSpan {
    /// Full slash-joined span path.
    pub name: String,
    /// Occurrence count.
    pub count: f64,
    /// Total wall seconds; `None` for JSON `null`.
    pub total_s: Option<f64>,
    /// Self (total minus children) wall seconds; `None` for JSON `null`.
    pub self_s: Option<f64>,
}

/// One `(site, metric)` row of a profile's health section.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedHealthSite {
    /// Instrumentation site (`"sparse.solve"`).
    pub site: String,
    /// Metric name (`"backward_error"`).
    pub metric: String,
    /// Highest severity observed (`"info"`, `"warning"` or `"error"`).
    pub severity: String,
    /// Total events recorded at this site.
    pub count: f64,
    /// Worst value observed; `None` for JSON `null` (non-finite).
    pub worst: Option<f64>,
    /// Threshold the worst observation was classified against.
    pub threshold: Option<f64>,
}

/// The health section of a parsed `PROFILE_*.json` document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParsedHealth {
    /// Total info-severity events.
    pub info: f64,
    /// Total warning-severity events.
    pub warning: f64,
    /// Total error-severity events.
    pub error: f64,
    /// The per-`(site, metric)` rows, in file order.
    pub sites: Vec<ParsedHealthSite>,
}

/// A parsed `PROFILE_*.json` document (spans plus the name sets of the
/// counter/gauge/histogram sections — the audit only needs names and span
/// timings — plus the numerical-health aggregates).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedProfile {
    /// The profile name from the `"profile"` field.
    pub profile: String,
    /// The span entries, in file order.
    pub spans: Vec<ParsedSpan>,
    /// Counter `(name, value)` pairs, in file order.
    pub counters: Vec<(String, f64)>,
    /// Gauge names, in file order.
    pub gauges: Vec<String>,
    /// Histogram names, in file order.
    pub histograms: Vec<String>,
    /// The numerical-health section.
    pub health: ParsedHealth,
}

impl ParsedProfile {
    /// Returns `true` if some span path contains the leaf `name` — as the
    /// whole path, a nested tail (`…/name`), or an interior segment.
    pub fn has_span_leaf(&self, name: &str) -> bool {
        self.spans.iter().any(|s| s.name.split('/').any(|segment| segment == name))
    }

    /// Value of the counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<f64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// Parses the flat profile format emitted by `rlckit-telemetry`, rejecting
/// any structural deviation — the `PROFILE_*.json` counterpart of
/// [`parse_report`].
///
/// # Errors
///
/// Returns a human-readable description of the first structural problem.
pub fn parse_profile(text: &str) -> Result<ParsedProfile, String> {
    let json = parse_json(text)?;
    let Json::Object(fields) = &json else {
        return Err("top level must be a JSON object".to_owned());
    };
    let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    if keys != ["profile", "spans", "counters", "gauges", "histograms", "health"] {
        return Err(format!(
            "top-level keys must be [profile, spans, counters, gauges, histograms, health], \
             got {keys:?}"
        ));
    }
    let Json::String(profile) = &fields[0].1 else {
        return Err("\"profile\" must be a string".to_owned());
    };

    // Pulls (name, value-of-key) out of an array of flat objects whose key
    // list must match exactly.
    let named_items = |section: &Json,
                       section_name: &str,
                       expected: &[&str]|
     -> Result<Vec<Vec<(String, Json)>>, String> {
        let Json::Array(items) = section else {
            return Err(format!("\"{section_name}\" must be an array"));
        };
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let Json::Object(fields) = item else {
                return Err(format!("{section_name} entry {i} must be an object"));
            };
            let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
            if keys != expected {
                return Err(format!(
                    "{section_name} entry {i} keys must be {expected:?}, got {keys:?}"
                ));
            }
            out.push(fields.clone());
        }
        Ok(out)
    };
    let string_of = |v: &Json, what: &str| -> Result<String, String> {
        match v {
            Json::String(s) => Ok(s.clone()),
            other => Err(format!("{what} must be a string, got {other:?}")),
        }
    };
    let number_of = |v: &Json, what: &str| -> Result<f64, String> {
        match v {
            Json::Number(n) => Ok(*n),
            other => Err(format!("{what} must be a number, got {other:?}")),
        }
    };
    let nullable_of = |v: &Json, what: &str| -> Result<Option<f64>, String> {
        match v {
            Json::Number(n) => Ok(Some(*n)),
            Json::Null => Ok(None),
            other => Err(format!("{what} must be a number or null, got {other:?}")),
        }
    };

    let mut spans = Vec::new();
    for entry in named_items(
        &fields[1].1,
        "spans",
        &["name", "count", "total_s", "self_s", "min_s", "max_s"],
    )? {
        let name = string_of(&entry[0].1, "span name")?;
        spans.push(ParsedSpan {
            count: number_of(&entry[1].1, &format!("span {name:?} count"))?,
            total_s: nullable_of(&entry[2].1, &format!("span {name:?} total_s"))?,
            self_s: nullable_of(&entry[3].1, &format!("span {name:?} self_s"))?,
            name,
        });
    }
    let mut counters = Vec::new();
    for entry in named_items(&fields[2].1, "counters", &["name", "value"])? {
        let name = string_of(&entry[0].1, "counter name")?;
        let value = number_of(&entry[1].1, &format!("counter {name:?} value"))?;
        counters.push((name, value));
    }
    let mut gauges = Vec::new();
    for entry in named_items(&fields[3].1, "gauges", &["name", "value"])? {
        gauges.push(string_of(&entry[0].1, "gauge name")?);
        nullable_of(&entry[1].1, "gauge value")?;
    }
    let mut histograms = Vec::new();
    for entry in named_items(&fields[4].1, "histograms", &["name", "count", "sum_s", "buckets"])? {
        let name = string_of(&entry[0].1, "histogram name")?;
        number_of(&entry[1].1, &format!("histogram {name:?} count"))?;
        for bucket in named_items(&entry[3].1, "buckets", &["le_s", "count"])? {
            number_of(&bucket[0].1, "bucket le_s")?;
            number_of(&bucket[1].1, "bucket count")?;
        }
        histograms.push(name);
    }

    let Json::Object(health_fields) = &fields[5].1 else {
        return Err("\"health\" must be an object".to_owned());
    };
    let health_keys: Vec<&str> = health_fields.iter().map(|(k, _)| k.as_str()).collect();
    if health_keys != ["info", "warning", "error", "sites"] {
        return Err(format!(
            "health keys must be [info, warning, error, sites], got {health_keys:?}"
        ));
    }
    let mut health = ParsedHealth {
        info: number_of(&health_fields[0].1, "health info count")?,
        warning: number_of(&health_fields[1].1, "health warning count")?,
        error: number_of(&health_fields[2].1, "health error count")?,
        sites: Vec::new(),
    };
    for entry in named_items(
        &health_fields[3].1,
        "health sites",
        &["site", "metric", "severity", "count", "worst", "threshold"],
    )? {
        let site = string_of(&entry[0].1, "health site")?;
        let severity = string_of(&entry[2].1, &format!("health site {site:?} severity"))?;
        if !matches!(severity.as_str(), "info" | "warning" | "error") {
            return Err(format!("health site {site:?} has unknown severity {severity:?}"));
        }
        health.sites.push(ParsedHealthSite {
            metric: string_of(&entry[1].1, &format!("health site {site:?} metric"))?,
            severity,
            count: number_of(&entry[3].1, &format!("health site {site:?} count"))?,
            worst: nullable_of(&entry[4].1, &format!("health site {site:?} worst"))?,
            threshold: nullable_of(&entry[5].1, &format!("health site {site:?} threshold"))?,
            site,
        });
    }
    Ok(ParsedProfile { profile: profile.clone(), spans, counters, gauges, histograms, health })
}

/// Audits a parsed profile: structural sanity of every span (a positive
/// count, finite non-negative timings, self ≤ total) plus presence of the
/// required span leaves and counters.
///
/// Returns one message per violation; an empty vector means the audit
/// passes.
pub fn audit_profile(
    profile: &ParsedProfile,
    required_spans: &[&str],
    required_counters: &[&str],
) -> Vec<String> {
    let mut violations = Vec::new();
    if profile.spans.is_empty() {
        violations.push(
            "profile has no spans at all (was the run actually profiled with \
             RLCKIT_PROFILE=1?)"
                .to_owned(),
        );
    }
    for span in &profile.spans {
        let name = &span.name;
        if !(span.count >= 1.0) {
            violations.push(format!("span {name:?} has a non-positive count {}", span.count));
        }
        match (span.total_s, span.self_s) {
            (Some(total), Some(self_s)) => {
                if !total.is_finite() || total < 0.0 || !self_s.is_finite() || self_s < 0.0 {
                    violations.push(format!(
                        "span {name:?} has a negative or non-finite timing: total {total}, \
                         self {self_s}"
                    ));
                } else if self_s > total * (1.0 + 1e-9) + 1e-12 {
                    violations.push(format!(
                        "span {name:?} reports more self time ({self_s}) than total ({total})"
                    ));
                }
            }
            _ => violations.push(format!("span {name:?} has a null timing")),
        }
    }
    for &required in required_spans {
        if !profile.has_span_leaf(required) {
            violations.push(format!("required span {required:?} is missing from the profile"));
        }
    }
    for &required in required_counters {
        match profile.counter(required) {
            None => violations
                .push(format!("required counter {required:?} is missing from the profile")),
            Some(v) if !v.is_finite() || v < 0.0 => {
                violations.push(format!("required counter {required:?} has a bad value {v}"));
            }
            Some(_) => {}
        }
    }
    // The numerical-health gate: any error-severity event in a profiled run
    // means a solve went numerically wrong, which no timing gate would catch.
    if profile.health.error > 0.0 {
        let worst: Vec<String> = profile
            .health
            .sites
            .iter()
            .filter(|s| s.severity == "error")
            .map(|s| format!("{}/{} (worst {:?})", s.site, s.metric, s.worst))
            .collect();
        violations.push(format!(
            "profile records {} error-severity health event(s): {}",
            profile.health.error,
            worst.join(", ")
        ));
    }
    violations
}

/// Default ratio tolerance for [`compare_profiles`]: per-span self time may
/// drift by up to this factor either way before the gate fails. Profiles
/// cross machines (committed baseline vs CI runner), so only
/// order-of-magnitude shifts are actionable.
pub const DEFAULT_PROFILE_TOLERANCE: f64 = 100.0;

/// Spans whose self time is below this floor (seconds) on either side are
/// exempt from the ratio gate — sub-millisecond timings are pure noise.
pub const PROFILE_SELF_TIME_FLOOR: f64 = 1e-3;

/// Compares a fresh profile snapshot against a committed baseline:
/// structural drift (new or vanished span paths and counters) is exact,
/// per-span self-time ratios and counter ratios are gated by `tolerance`,
/// and error-severity health events always fail.
///
/// Returns one message per violation; an empty vector means the gate passes.
pub fn compare_profiles(
    baseline: &ParsedProfile,
    fresh: &ParsedProfile,
    tolerance: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    if baseline.profile != fresh.profile {
        violations.push(format!(
            "profile renamed: baseline {:?}, fresh {:?}",
            baseline.profile, fresh.profile
        ));
    }

    // Span sets must match exactly: a new span means new instrumentation
    // that needs a recommitted baseline, a vanished span means coverage rot.
    for span in &fresh.spans {
        match baseline.spans.iter().find(|b| b.name == span.name) {
            None => violations.push(format!(
                "span {:?} is not in the committed baseline (new instrumentation? recommit the \
                 baseline profile)",
                span.name
            )),
            Some(base) => {
                let (Some(bs), Some(fs)) = (base.self_s, span.self_s) else {
                    violations.push(format!(
                        "span {:?} has a null self time: baseline {:?}, fresh {:?}",
                        span.name, base.self_s, span.self_s
                    ));
                    continue;
                };
                // Only gate spans that carry real time on both sides; the
                // floor keeps scheduler noise on cheap spans out of the gate.
                if bs >= PROFILE_SELF_TIME_FLOOR && fs >= PROFILE_SELF_TIME_FLOOR {
                    let ratio = fs / bs;
                    if ratio > tolerance || ratio < 1.0 / tolerance {
                        violations.push(format!(
                            "span {:?} self time moved {ratio:.3}x against the baseline \
                             (tolerance {tolerance}x): baseline {bs}, fresh {fs}",
                            span.name
                        ));
                    }
                }
            }
        }
    }
    for base in &baseline.spans {
        if !fresh.spans.iter().any(|s| s.name == base.name) {
            violations.push(format!(
                "span {:?} is in the committed baseline but vanished from the fresh profile",
                base.name
            ));
        }
    }

    // Counters: same exact-set rule, ratio-gated values.
    for (name, value) in &fresh.counters {
        match baseline.counter(name) {
            None => violations.push(format!("counter {name:?} is not in the committed baseline")),
            Some(base) => {
                if base == 0.0 && *value == 0.0 {
                    continue;
                }
                if base == 0.0 || *value == 0.0 {
                    violations.push(format!(
                        "counter {name:?} collapsed to zero on one side: baseline {base}, \
                         fresh {value}"
                    ));
                    continue;
                }
                let ratio = value / base;
                if ratio > tolerance || ratio < 1.0 / tolerance {
                    violations.push(format!(
                        "counter {name:?} moved {ratio:.3}x against the baseline (tolerance \
                         {tolerance}x): baseline {base}, fresh {value}"
                    ));
                }
            }
        }
    }
    for (name, _) in &baseline.counters {
        if fresh.counter(name).is_none() {
            violations.push(format!(
                "counter {name:?} is in the committed baseline but vanished from the fresh \
                 profile"
            ));
        }
    }

    if fresh.health.error > 0.0 {
        violations.push(format!(
            "fresh profile records {} error-severity health event(s)",
            fresh.health.error
        ));
    }
    violations
}

/// Renders a violation list as a readable multi-line report.
pub fn render_violations(violations: &[String]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "bench-regression gate: {} violation(s)", violations.len());
    for v in violations {
        let _ = writeln!(out, "  - {v}");
    }
    out
}

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON parser (no dependencies; the trajectory
// files are small and machine-written, so error positions are byte offsets).
// ---------------------------------------------------------------------------

fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", byte as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_owned()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Number)
        .ok_or(format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let escape = *bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match escape {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape {hex:?}"))?;
                        *pos += 4;
                        // Surrogate pairs never appear in our machine-written
                        // names; map unpaired surrogates to the replacement
                        // character rather than failing the whole gate.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("unknown escape \\{}", other as char)),
                }
            }
            _ => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::PerfReport;

    fn report(records: &[(&str, f64, &str)]) -> ParsedReport {
        let mut r = PerfReport::new("demo");
        for &(name, value, unit) in records {
            r.push(name, value, unit);
        }
        parse_report(&r.to_json()).expect("round trip through the writer")
    }

    #[test]
    fn writer_output_round_trips_through_the_parser() {
        let parsed = report(&[("sparse/100", 0.25, "seconds"), ("speedup/100", 12.0, "x")]);
        assert_eq!(parsed.bench, "demo");
        assert_eq!(parsed.records.len(), 2);
        assert_eq!(parsed.records[0].name, "sparse/100");
        assert_eq!(parsed.records[0].value, Some(0.25));
        assert_eq!(parsed.records[0].family(), "sparse");
        assert_eq!(parsed.records[1].unit, "x");
    }

    #[test]
    fn null_values_parse_and_then_fail_the_gate() {
        let mut r = PerfReport::new("demo");
        r.push("speedup/10", f64::INFINITY, "x"); // serialised as null
        let parsed = parse_report(&r.to_json()).unwrap();
        assert_eq!(parsed.records[0].value, None);
        let ok = report(&[("speedup/10", 2.0, "x")]);
        let violations = compare_reports(&ok, &parsed, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("null"));
    }

    #[test]
    fn structural_deviations_are_parse_errors() {
        assert!(parse_report("[1, 2]").is_err());
        assert!(parse_report("{\"bench\": \"x\"}").is_err());
        assert!(parse_report("{\"bench\": \"x\", \"results\": [{\"name\": \"a\", \"value\": 1}]}")
            .is_err());
        assert!(parse_report("{\"bench\": \"x\", \"results\": [], \"extra\": 1}").is_err());
        assert!(parse_report("{\"bench\": 3, \"results\": []}").is_err());
    }

    #[test]
    fn identical_reports_pass() {
        let a = report(&[("sparse/100", 0.25, "seconds"), ("nodes/100", 100.0, "count")]);
        assert!(compare_reports(&a, &a, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn smoke_subsets_pass_when_every_family_survives() {
        let full = report(&[
            ("sparse/100", 0.25, "seconds"),
            ("sparse/1000", 2.5, "seconds"),
            ("speedup/100", 10.0, "x"),
        ]);
        let smoke = report(&[("sparse/100", 0.3, "seconds"), ("speedup/100", 8.0, "x")]);
        assert!(compare_reports(&full, &smoke, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn renamed_metrics_fail() {
        let baseline = report(&[("banded/100", 0.25, "seconds")]);
        let fresh = report(&[("band_lu/100", 0.25, "seconds")]);
        let violations = compare_reports(&baseline, &fresh, DEFAULT_TOLERANCE);
        // The rename shows up from both directions: an unknown fresh metric
        // and a baseline family that disappeared.
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("not in the committed baseline")));
        assert!(violations.iter().any(|v| v.contains("no longer produces")));
    }

    #[test]
    fn dropped_metric_families_fail() {
        let baseline = report(&[("sparse/100", 0.2, "seconds"), ("speedup/100", 11.0, "x")]);
        let fresh = report(&[("sparse/100", 0.2, "seconds")]);
        let violations = compare_reports(&baseline, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("\"speedup\""));
    }

    #[test]
    fn unit_changes_fail() {
        let baseline = report(&[("sparse/100", 0.2, "seconds")]);
        let fresh = report(&[("sparse/100", 200.0, "milliseconds")]);
        let violations = compare_reports(&baseline, &fresh, DEFAULT_TOLERANCE);
        assert!(violations.iter().any(|v| v.contains("changed unit")), "{violations:?}");
    }

    #[test]
    fn order_of_magnitude_value_drift_fails() {
        let baseline = report(&[("sparse/100", 0.2, "seconds")]);
        // A ps-vs-s style mix-up: 12 orders of magnitude out.
        let fresh = report(&[("sparse/100", 2.0e11, "seconds")]);
        let violations = compare_reports(&baseline, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("moved"));
        // Within-tolerance noise passes.
        let noisy = report(&[("sparse/100", 0.5, "seconds")]);
        assert!(compare_reports(&baseline, &noisy, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn sign_flips_and_zero_collapse_fail() {
        let baseline = report(&[("delta/1", 4.0, "ps"), ("zero/1", 0.0, "ps")]);
        let flipped = report(&[("delta/1", -4.0, "ps"), ("zero/1", 0.0, "ps")]);
        let violations = compare_reports(&baseline, &flipped, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("changed sign"));
        let collapsed = report(&[("delta/1", 0.0, "ps"), ("zero/1", 0.0, "ps")]);
        let violations = compare_reports(&baseline, &collapsed, DEFAULT_TOLERANCE);
        assert_eq!(violations.len(), 1, "matching zeros pass, collapses fail: {violations:?}");
    }

    #[test]
    fn renamed_bench_fails() {
        let mut a = PerfReport::new("alpha");
        a.push("x/1", 1.0, "s");
        let mut b = PerfReport::new("beta");
        b.push("x/1", 1.0, "s");
        let a = parse_report(&a.to_json()).unwrap();
        let b = parse_report(&b.to_json()).unwrap();
        assert!(compare_reports(&a, &b, DEFAULT_TOLERANCE)
            .iter()
            .any(|v| v.contains("bench renamed")));
    }

    #[test]
    fn directory_check_flags_missing_and_extra_files() {
        let base = std::env::temp_dir().join(format!("rlckit-bench-check-{}", std::process::id()));
        let baseline_dir = base.join("baseline");
        let fresh_dir = base.join("fresh");
        std::fs::create_dir_all(&baseline_dir).unwrap();
        std::fs::create_dir_all(&fresh_dir).unwrap();

        let mut shared = PerfReport::new("shared");
        shared.push("t/1", 1.0, "seconds");
        shared.write(&baseline_dir).unwrap();
        shared.write(&fresh_dir).unwrap();
        let mut only_base = PerfReport::new("gone");
        only_base.push("t/1", 1.0, "seconds");
        only_base.write(&baseline_dir).unwrap();
        let mut only_fresh = PerfReport::new("unbaselined");
        only_fresh.push("t/1", 1.0, "seconds");
        only_fresh.write(&fresh_dir).unwrap();

        let violations = check_directories(&baseline_dir, &fresh_dir, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("BENCH_gone.json")));
        assert!(violations.iter().any(|v| v.contains("BENCH_unbaselined.json")));
        let rendered = render_violations(&violations);
        assert!(rendered.contains("2 violation(s)"));

        // A mutated baseline (hand-edited value) must fail the matched file.
        let mut mutated = PerfReport::new("shared");
        mutated.push("t/1", 1.0e9, "seconds");
        mutated.write(&baseline_dir).unwrap();
        let violations = check_directories(&baseline_dir, &fresh_dir, DEFAULT_TOLERANCE).unwrap();
        assert!(violations.iter().any(|v| v.contains("BENCH_shared.json") && v.contains("moved")));

        std::fs::remove_dir_all(&base).unwrap();
    }

    /// Builds a real profile snapshot through the telemetry crate so the
    /// writer and this parser are exercised as a pair.
    fn telemetry_profile() -> ParsedProfile {
        let _serial = rlckit_telemetry::test_support::lock();
        let _collector = rlckit_telemetry::Collector::enable();
        rlckit_telemetry::Collector::reset();
        {
            let _outer = rlckit_telemetry::span("check.outer");
            let _inner = rlckit_telemetry::span("check.inner");
            rlckit_telemetry::counter_add("check.counter", 2);
            rlckit_telemetry::gauge_set("check.gauge", 0.5);
            rlckit_telemetry::observe_seconds("check.hist", 1e-3);
            rlckit_telemetry::check_metric("check.site", "backward_error", 1e-14, 1e-10, 1e-6);
        }
        let snapshot = rlckit_telemetry::Collector::snapshot();
        parse_profile(&snapshot.to_json("unit")).expect("writer output parses")
    }

    #[test]
    fn profile_writer_output_round_trips_through_the_parser() {
        let parsed = telemetry_profile();
        assert_eq!(parsed.profile, "unit");
        assert!(parsed.has_span_leaf("check.outer"));
        assert!(parsed.has_span_leaf("check.inner"), "nested leaf must be found inside its path");
        assert!(!parsed.has_span_leaf("check.absent"));
        assert_eq!(parsed.counter("check.counter"), Some(2.0));
        assert_eq!(parsed.gauges, ["check.gauge"]);
        assert_eq!(parsed.histograms, ["check.hist"]);
        assert_eq!(parsed.health.info, 1.0);
        assert_eq!(parsed.health.error, 0.0);
        assert_eq!(parsed.health.sites.len(), 1);
        assert_eq!(parsed.health.sites[0].site, "check.site");
        assert_eq!(parsed.health.sites[0].metric, "backward_error");
        assert_eq!(parsed.health.sites[0].severity, "info");
    }

    #[test]
    fn profile_structural_deviations_are_parse_errors() {
        assert!(parse_profile("[1]").is_err());
        assert!(parse_profile("{\"profile\": \"x\"}").is_err());
        // Wrong span keys.
        assert!(parse_profile(
            "{\"profile\": \"x\", \"spans\": [{\"name\": \"a\", \"count\": 1}], \
             \"counters\": [], \"gauges\": [], \"histograms\": []}"
        )
        .is_err());
        // Sections out of order.
        assert!(parse_profile(
            "{\"profile\": \"x\", \"counters\": [], \"spans\": [], \
             \"gauges\": [], \"histograms\": []}"
        )
        .is_err());
    }

    #[test]
    fn profile_audit_passes_a_healthy_profile_and_flags_gaps() {
        let parsed = telemetry_profile();
        let clean = audit_profile(&parsed, &["check.outer", "check.inner"], &["check.counter"]);
        assert!(clean.is_empty(), "{clean:?}");

        let violations =
            audit_profile(&parsed, &["sparse.factor"], &["sweep.cache_hits", "check.counter"]);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("sparse.factor")));
        assert!(violations.iter().any(|v| v.contains("sweep.cache_hits")));
    }

    #[test]
    fn profile_audit_flags_broken_span_accounting() {
        let empty = ParsedProfile {
            profile: "x".to_owned(),
            spans: Vec::new(),
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            health: ParsedHealth::default(),
        };
        assert!(audit_profile(&empty, &[], &[]).iter().any(|v| v.contains("no spans")));

        let broken = ParsedProfile {
            spans: vec![
                ParsedSpan {
                    name: "zero".to_owned(),
                    count: 0.0,
                    total_s: Some(1.0),
                    self_s: Some(0.5),
                },
                ParsedSpan {
                    name: "inverted".to_owned(),
                    count: 1.0,
                    total_s: Some(0.5),
                    self_s: Some(1.0),
                },
                ParsedSpan { name: "null".to_owned(), count: 1.0, total_s: None, self_s: None },
            ],
            ..empty
        };
        let violations = audit_profile(&broken, &[], &[]);
        assert_eq!(violations.len(), 3, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("non-positive count")));
        assert!(violations.iter().any(|v| v.contains("more self time")));
        assert!(violations.iter().any(|v| v.contains("null timing")));
    }

    /// A hand-built profile with one healthy span and counter.
    fn profile_with(spans: &[(&str, f64)], counters: &[(&str, f64)]) -> ParsedProfile {
        ParsedProfile {
            profile: "unit".to_owned(),
            spans: spans
                .iter()
                .map(|&(name, self_s)| ParsedSpan {
                    name: name.to_owned(),
                    count: 1.0,
                    total_s: Some(self_s),
                    self_s: Some(self_s),
                })
                .collect(),
            counters: counters.iter().map(|&(n, v)| (n.to_owned(), v)).collect(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            health: ParsedHealth::default(),
        }
    }

    #[test]
    fn audit_fails_on_error_severity_health_events() {
        let mut profile = profile_with(&[("a", 0.1)], &[]);
        profile.health = ParsedHealth {
            info: 5.0,
            warning: 1.0,
            error: 2.0,
            sites: vec![ParsedHealthSite {
                site: "sparse.solve".to_owned(),
                metric: "backward_error".to_owned(),
                severity: "error".to_owned(),
                count: 8.0,
                worst: Some(3e-4),
                threshold: Some(1e-6),
            }],
        };
        let violations = audit_profile(&profile, &[], &[]);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("error-severity"));
        assert!(violations[0].contains("sparse.solve/backward_error"));

        profile.health.error = 0.0;
        assert!(audit_profile(&profile, &[], &[]).is_empty());
    }

    #[test]
    fn profile_diff_passes_identical_and_noisy_profiles() {
        let baseline = profile_with(&[("run/solve", 0.5), ("run/tiny", 1e-6)], &[("cells", 64.0)]);
        assert!(compare_profiles(&baseline, &baseline, DEFAULT_PROFILE_TOLERANCE).is_empty());
        // Machine noise well inside the tolerance passes, and sub-floor spans
        // are never ratio-gated no matter how far they move.
        let noisy = profile_with(&[("run/solve", 1.5), ("run/tiny", 9e-4)], &[("cells", 64.0)]);
        assert!(compare_profiles(&baseline, &noisy, DEFAULT_PROFILE_TOLERANCE).is_empty());
    }

    #[test]
    fn profile_diff_fails_inflated_self_time() {
        let baseline = profile_with(&[("run/solve", 0.5)], &[]);
        let slow = profile_with(&[("run/solve", 0.5 * 1e4)], &[]);
        let violations = compare_profiles(&baseline, &slow, DEFAULT_PROFILE_TOLERANCE);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("self time moved"));
    }

    #[test]
    fn profile_diff_fails_new_and_vanished_spans_and_counters() {
        let baseline = profile_with(&[("run/solve", 0.5)], &[("cells", 64.0)]);
        let drifted = profile_with(&[("run/other", 0.5)], &[("rows", 64.0)]);
        let violations = compare_profiles(&baseline, &drifted, DEFAULT_PROFILE_TOLERANCE);
        assert_eq!(violations.len(), 4, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("\"run/other\"") && v.contains("not in")));
        assert!(violations.iter().any(|v| v.contains("\"run/solve\"") && v.contains("vanished")));
        assert!(violations.iter().any(|v| v.contains("\"rows\"") && v.contains("not in")));
        assert!(violations.iter().any(|v| v.contains("\"cells\"") && v.contains("vanished")));
    }

    #[test]
    fn profile_diff_fails_counter_collapse_and_health_errors() {
        let baseline = profile_with(&[("run/solve", 0.5)], &[("cells", 64.0)]);
        let mut fresh = profile_with(&[("run/solve", 0.5)], &[("cells", 0.0)]);
        fresh.health.error = 1.0;
        let violations = compare_profiles(&baseline, &fresh, DEFAULT_PROFILE_TOLERANCE);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("collapsed to zero")));
        assert!(violations.iter().any(|v| v.contains("error-severity")));
    }

    #[test]
    fn profile_diff_round_trips_through_the_writer() {
        let parsed = telemetry_profile();
        assert!(compare_profiles(&parsed, &parsed, DEFAULT_PROFILE_TOLERANCE).is_empty());
    }
}
