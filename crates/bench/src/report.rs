//! Plain-text / markdown / CSV table rendering for the experiment binaries.
//!
//! The experiment binaries print aligned text tables for reading in a terminal
//! and can optionally dump the same data as CSV (for plotting) by passing
//! `--csv` on the command line.

use std::fmt::Write as _;

/// A simple column-oriented results table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of already formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row must have one cell per header");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> =
            self.headers.iter().zip(widths.iter()).map(|(h, w)| format!("{h:>w$}")).collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let line: Vec<String> =
                row.iter().zip(widths.iter()).map(|(c, w)| format!("{c:>w$}")).collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Renders the table as CSV (headers included).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Prints the table to stdout, as CSV when `csv` is `true`, otherwise as text.
    pub fn print(&self, csv: bool) {
        if csv {
            print!("{}", self.to_csv());
        } else {
            print!("{}", self.to_text());
        }
    }
}

/// Returns `true` if the process arguments request CSV output (`--csv`).
pub fn csv_requested() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// Returns `true` when the `RLCKIT_BENCH_SMOKE` environment variable is set.
///
/// In smoke mode every bench shrinks its sweep to a few cheap points while
/// still exercising its full code path — including the `BENCH_*.json`
/// writers, so CI can prove they haven't rotted without paying for a full
/// perf run. The recorded numbers are meaningless in smoke mode; the
/// committed trajectories always come from full runs.
pub fn smoke_mode() -> bool {
    std::env::var_os("RLCKIT_BENCH_SMOKE").is_some()
}

/// Picks the smoke or full variant of a bench parameter set.
pub fn smoke_or<T>(smoke: T, full: T) -> T {
    if smoke_mode() {
        smoke
    } else {
        full
    }
}

/// One measured quantity in a performance report.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRecord {
    /// Name of the measurement (e.g. `"banded/500"`).
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Unit of the value (e.g. `"seconds"`, `"x"`).
    pub unit: String,
}

/// A machine-readable performance report, serialised as `BENCH_<name>.json`.
///
/// This is the workspace's perf-trajectory format: each benchmark that wants
/// its numbers tracked over time appends records here and calls
/// [`PerfReport::write`], producing a flat JSON document that external
/// tooling can diff across commits.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfReport {
    bench: String,
    records: Vec<PerfRecord>,
}

impl PerfReport {
    /// Creates an empty report for the benchmark `bench`.
    pub fn new(bench: impl Into<String>) -> Self {
        Self { bench: bench.into(), records: Vec::new() }
    }

    /// Appends one measurement.
    pub fn push(&mut self, name: impl Into<String>, value: f64, unit: impl Into<String>) {
        self.records.push(PerfRecord { name: name.into(), value, unit: unit.into() });
    }

    /// Number of recorded measurements.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Renders the report as a JSON document.
    ///
    /// The format is deliberately flat and dependency-free:
    /// `{"bench": …, "results": [{"name": …, "value": …, "unit": …}, …]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"{}\",", escape_json(&self.bench));
        let _ = writeln!(out, "  \"results\": [");
        for (i, r) in self.records.iter().enumerate() {
            let comma = if i + 1 < self.records.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"value\": {}, \"unit\": \"{}\"}}{comma}",
                escape_json(&r.name),
                json_number(r.value),
                escape_json(&r.unit)
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = write!(out, "}}");
        out
    }

    /// The canonical file name for this report: `BENCH_<bench>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.bench)
    }

    /// Writes the report to `BENCH_<bench>.json` under `dir`, returning the
    /// path written.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be written.
    pub fn write(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// The workspace root (two levels above this crate's manifest), where the
/// committed `BENCH_*.json` trajectories and the `PROFILE_*.json` profiles
/// live.
pub fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Writes a perf trajectory to the workspace root, printing the path on
/// success and **exiting the process nonzero** on failure.
///
/// Every perf-tracking bench used to hand-roll this epilogue with an
/// `eprintln!` that swallowed the error; a bench whose trajectory silently
/// failed to land would let the CI regression gate compare against a stale
/// file. Failing loudly keeps the gate honest.
pub fn write_trajectory_or_exit(report: &PerfReport) {
    match report.write(&workspace_root()) {
        Ok(path) => println!("perf trajectory written to {}", path.display()),
        Err(e) => {
            eprintln!("could not write perf trajectory {}: {e}", report.file_name());
            std::process::exit(1);
        }
    }
}

/// If profiling is active, snapshots the telemetry registry and writes it to
/// `PROFILE_<profile>.json`; if timeline tracing is active, also writes the
/// Chrome trace-event document `TRACE_<profile>.json`. Both land in
/// `RLCKIT_PROFILE_DIR` when that is set, otherwise at the workspace root,
/// and an I/O failure exits nonzero (like [`write_trajectory_or_exit`]). A
/// no-op when neither layer is on, so every bench can call it
/// unconditionally.
pub fn write_profile_if_enabled(profile: &str) {
    let dir = rlckit_telemetry::output_dir(&workspace_root());
    if rlckit_telemetry::enabled() {
        let snapshot = rlckit_telemetry::Collector::snapshot();
        match snapshot.write(profile, &dir) {
            Ok(path) => println!("profile written to {}", path.display()),
            Err(e) => {
                eprintln!("could not write profile PROFILE_{profile}.json: {e}");
                std::process::exit(1);
            }
        }
    }
    if rlckit_telemetry::trace_enabled() {
        let trace = rlckit_telemetry::Collector::trace_snapshot();
        match trace.write(profile, &dir) {
            Ok(path) => println!("timeline trace written to {}", path.display()),
            Err(e) => {
                eprintln!("could not write trace TRACE_{profile}.json: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Escapes backslash, quote and control characters so the emitted string
/// literal is always valid JSON.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a number so the output is always valid JSON (no NaN/inf literals).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["x", "value"]);
        t.push_row(vec!["1".into(), "10.5".into()]);
        t.push_row(vec!["2".into(), "20.25".into()]);
        t
    }

    #[test]
    fn text_rendering_is_aligned() {
        let t = sample();
        let text = t.to_text();
        assert!(text.contains("== demo =="));
        assert!(text.contains("x"));
        assert!(text.contains("20.25"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_rendering() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("x,value\n"));
        assert!(csv.contains("2,20.25"));
    }

    #[test]
    #[should_panic]
    fn mismatched_row_length_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn empty_table() {
        let t = Table::new("empty", &["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.to_csv().starts_with("a"));
    }

    #[test]
    fn perf_report_renders_valid_flat_json() {
        let mut r = PerfReport::new("solver_scaling");
        assert!(r.is_empty());
        r.push("dense/100", 0.125, "seconds");
        r.push("speedup/500", f64::INFINITY, "x");
        assert_eq!(r.len(), 2);
        // Control characters and quotes in names must be escaped, not emitted raw.
        assert_eq!(escape_json("a\n\"b\"\u{1}"), "a\\n\\\"b\\\"\\u0001");
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"bench\": \"solver_scaling\""));
        assert!(json.contains("\"name\": \"dense/100\", \"value\": 0.125, \"unit\": \"seconds\""));
        // Non-finite values must not produce invalid JSON.
        assert!(json.contains("\"value\": null"));
        assert_eq!(r.file_name(), "BENCH_solver_scaling.json");
    }

    #[test]
    fn perf_report_writes_its_file() {
        let mut r = PerfReport::new("report_unit_test");
        r.push("x", 1.0, "seconds");
        let dir = std::env::temp_dir();
        let path = r.write(&dir).expect("writable temp dir");
        let body = std::fs::read_to_string(&path).expect("file exists");
        assert_eq!(body, r.to_json());
        let _ = std::fs::remove_file(path);
    }
}
