//! Plain-text / markdown / CSV table rendering for the experiment binaries.
//!
//! The experiment binaries print aligned text tables for reading in a terminal
//! and can optionally dump the same data as CSV (for plotting) by passing
//! `--csv` on the command line.

use std::fmt::Write as _;

/// A simple column-oriented results table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of already formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row must have one cell per header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> = self
            .headers
            .iter()
            .zip(widths.iter())
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Renders the table as CSV (headers included).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Prints the table to stdout, as CSV when `csv` is `true`, otherwise as text.
    pub fn print(&self, csv: bool) {
        if csv {
            print!("{}", self.to_csv());
        } else {
            print!("{}", self.to_text());
        }
    }
}

/// Returns `true` if the process arguments request CSV output (`--csv`).
pub fn csv_requested() -> bool {
    std::env::args().any(|a| a == "--csv")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["x", "value"]);
        t.push_row(vec!["1".into(), "10.5".into()]);
        t.push_row(vec!["2".into(), "20.25".into()]);
        t
    }

    #[test]
    fn text_rendering_is_aligned() {
        let t = sample();
        let text = t.to_text();
        assert!(text.contains("== demo =="));
        assert!(text.contains("x"));
        assert!(text.contains("20.25"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_rendering() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("x,value\n"));
        assert!(csv.contains("2,20.25"));
    }

    #[test]
    #[should_panic]
    fn mismatched_row_length_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn empty_table() {
        let t = Table::new("empty", &["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.to_csv().starts_with("a"));
    }
}
