//! Figure 4: closed-form repeater optimum (Eqs. 14–15) against the numerical optimum.
//!
//! Sweeps `T_{L/R}` from 0 to 10 by scaling the line inductance of a fixed
//! resistive line, numerically minimises `tpdtotal(h, k)`, and prints the
//! normalised optimum size `h'` and section count `k'` (relative to the
//! Bakoglu RC values) for both the numerical optimum and the closed forms —
//! exactly the two curves of Figs. 4(a) and 4(b).
//!
//! Run with `cargo run --release -p rlckit-bench --bin fig4_repeater_optimum`
//! (add `--csv` for machine-readable output).

use rlckit_bench::report::{csv_requested, Table};
use rlckit_interconnect::Technology;
use rlckit_repeater::numerical::optimize;
use rlckit_repeater::rlc::{sections_error_factor, size_error_factor};
use rlckit_repeater::RepeaterProblem;
use rlckit_units::{Area, Capacitance, Inductance, Resistance, Voltage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csv = csv_requested();
    let mut table = Table::new(
        "Fig. 4 — normalised optimum repeater size h' and count k' vs T_L/R",
        &[
            "T_L/R",
            "h' numerical",
            "h' Eq. (14)",
            "k' numerical",
            "k' Eq. (15)",
            "delay excess of closed form %",
        ],
    );

    let tech = Technology::quarter_micron();
    // A line with enough RC mass that the RC design wants several repeaters
    // (k_opt(RC) ≈ 4.3), so the normalised curves are well resolved.
    let rt = 250.0;
    let ct = 15e-12;
    let tau = tech.buffer_time_constant().seconds();

    let mut worst_excess: f64 = 0.0;
    for i in 0..=20 {
        let t_l_over_r = 0.25 + i as f64 * 0.5;
        let lt = t_l_over_r * t_l_over_r * tau * rt;
        let problem = RepeaterProblem::new(
            Resistance::from_ohms(rt),
            Inductance::from_henries(lt),
            Capacitance::from_farads(ct),
            tech.min_buffer_resistance,
            tech.min_buffer_capacitance,
            Area::from_square_micrometers(4.0),
            Voltage::from_volts(2.5),
        )?;

        let rc = problem.bakoglu_optimum();
        let closed = problem.rlc_optimum();
        let numerical = optimize(&problem)?;

        let h_prime_numerical = numerical.design.size / rc.size;
        let k_prime_numerical = numerical.design.sections / rc.sections;
        let h_prime_closed = size_error_factor(t_l_over_r);
        let k_prime_closed = sections_error_factor(t_l_over_r);
        let excess = 100.0
            * (closed.total_delay.seconds() - numerical.design.total_delay.seconds())
            / numerical.design.total_delay.seconds();
        worst_excess = worst_excess.max(excess.abs());

        table.push_row(vec![
            format!("{t_l_over_r:.2}"),
            format!("{h_prime_numerical:.3}"),
            format!("{h_prime_closed:.3}"),
            format!("{k_prime_numerical:.3}"),
            format!("{k_prime_closed:.3}"),
            format!("{excess:.3}"),
        ]);
    }

    table.print(csv);
    if !csv {
        println!();
        println!(
            "worst-case total-delay excess of the closed form vs the numerical optimum: {worst_excess:.3}%"
        );
        println!(
            "paper's claim: the closed forms are within 0.05% in total delay — effectively exact."
        );
        println!("note how both h' and k' fall towards zero as T_L/R grows: inductive lines want");
        println!("fewer and relatively smaller repeaters.");
    }
    Ok(())
}
