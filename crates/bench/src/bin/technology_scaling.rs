//! Section III closing claim: the error of RC-based design grows as technologies scale.
//!
//! For the same 30 mm global wire, each technology generation in the built-in
//! roadmap is evaluated: the buffer time constant `R0·C0` shrinks, `T_{L/R}`
//! grows, and with it the delay/area/energy penalty of an RC-only repeater
//! methodology. Also reported is the accuracy of Eq. (9) against the dynamic
//! simulator for a representative repeater section in each node, showing that
//! the closed form stays valid as the operating point moves.
//!
//! Run with `cargo run --release -p rlckit-bench --bin technology_scaling`
//! (add `--csv` for machine-readable output).

use rlckit_bench::report::{csv_requested, Table};
use rlckit_circuit::ladder::measure_step_delay;
use rlckit_core::model::propagation_delay;
use rlckit_interconnect::Technology;
use rlckit_repeater::comparison::compare;
use rlckit_repeater::RepeaterProblem;
use rlckit_units::Length;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csv = csv_requested();
    let mut table = Table::new(
        "technology scaling — penalty of RC-based repeater design on a 30 mm global wire",
        &[
            "node",
            "R0*C0 (ps)",
            "T_L/R",
            "delay penalty %",
            "area penalty %",
            "energy penalty %",
            "Eq. 9 vs sim %",
        ],
    );

    let length = Length::from_millimeters(30.0);
    for tech in Technology::roadmap() {
        let line = tech.global_wire.line(length)?;
        let problem = RepeaterProblem::for_line(&line, &tech)?;
        let cmp = compare(&problem)?;

        // Accuracy spot-check: one section of the RLC-optimal design, model vs simulator.
        let design = problem.rlc_optimum();
        let section = problem.section_load(design.size, design.sections.max(1.0))?;
        let model = propagation_delay(&section);
        let spec = rlckit_circuit::ladder::LadderSpec {
            total_resistance: section.total_resistance(),
            total_inductance: section.total_inductance(),
            total_capacitance: section.total_capacitance(),
            segments: 40,
            style: rlckit_circuit::ladder::SegmentStyle::Pi,
            driver_resistance: section.driver_resistance(),
            load_capacitance: section.load_capacitance(),
            supply: tech.supply,
        };
        let simulated = measure_step_delay(&spec)?;
        let model_error = model.percent_error_vs(simulated.delay_50);

        table.push_row(vec![
            tech.name.to_owned(),
            format!("{:.0}", tech.buffer_time_constant().picoseconds()),
            format!("{:.2}", cmp.t_l_over_r),
            format!("{:.1}", cmp.delay_increase_percent),
            format!("{:.0}", cmp.area_increase_percent),
            format!("{:.0}", cmp.energy_increase_percent),
            format!("{:.2}", model_error),
        ]);
    }

    table.print(csv);
    if !csv {
        println!();
        println!("the penalties grow monotonically down the roadmap: inductance becomes more,");
        println!("not less, important as gates get faster — the paper's scaling conclusion.");
    }
    Ok(())
}
