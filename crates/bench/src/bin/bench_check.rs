//! The bench-regression gate binary: diff freshly generated `BENCH_*.json`
//! trajectories against their committed baselines.
//!
//! ```text
//! bench-check --baseline <dir> --fresh <dir> [--tolerance <factor>]
//! ```
//!
//! Exits non-zero when any structural or numeric violation is found (see
//! `rlckit_bench::check` for the contract). CI copies the committed
//! trajectories aside, reruns the benches in smoke mode and points this
//! binary at both directories.

use std::path::PathBuf;
use std::process::ExitCode;

use rlckit_bench::check::{check_directories, render_violations, DEFAULT_TOLERANCE};

fn main() -> ExitCode {
    let mut baseline: Option<PathBuf> = None;
    let mut fresh: Option<PathBuf> = None;
    let mut tolerance = DEFAULT_TOLERANCE;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline"))),
            "--fresh" => fresh = Some(PathBuf::from(value("--fresh"))),
            "--tolerance" => {
                let raw = value("--tolerance");
                match raw.parse::<f64>() {
                    Ok(t) if t > 1.0 && t.is_finite() => tolerance = t,
                    _ => {
                        eprintln!("--tolerance must be a finite factor > 1, got {raw:?}");
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: bench-check --baseline <dir> --fresh <dir> [--tolerance <x>]");
                return ExitCode::from(2);
            }
        }
    }
    let (Some(baseline), Some(fresh)) = (baseline, fresh) else {
        eprintln!("usage: bench-check --baseline <dir> --fresh <dir> [--tolerance <x>]");
        return ExitCode::from(2);
    };

    match check_directories(&baseline, &fresh, tolerance) {
        Ok(violations) if violations.is_empty() => {
            println!(
                "bench-regression gate: OK ({} vs {}, tolerance {tolerance}x)",
                baseline.display(),
                fresh.display()
            );
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            eprint!("{}", render_violations(&violations));
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench-regression gate: I/O error: {e}");
            ExitCode::FAILURE
        }
    }
}
