//! Equations 16–17: total-delay penalty of designing repeaters with an RC model.
//!
//! Sweeps `T_{L/R}` and reports the per-cent increase in total propagation
//! delay when the repeater system is designed with Bakoglu's RC formulas but
//! the line is really RLC. Both the exact evaluation (Eq. 16, evaluated with
//! the closed-form section delay) and the paper's `T_{L/R}`-only approximation
//! (Eq. 17) are printed; the paper's anchor values are ≈10% at `T_{L/R} = 3`,
//! ≈20% at 5 and ≈30% at 10.
//!
//! Run with `cargo run --release -p rlckit-bench --bin delay_penalty_sweep`
//! (add `--csv` for machine-readable output).

use rlckit_bench::report::{csv_requested, Table};
use rlckit_interconnect::Technology;
use rlckit_repeater::comparison::{compare, delay_increase_percent_approx};
use rlckit_repeater::RepeaterProblem;
use rlckit_units::{Area, Capacitance, Inductance, Resistance, Voltage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csv = csv_requested();
    let mut table = Table::new(
        "Eqs. 16-17 — delay increase from designing repeaters with an RC model",
        &["T_L/R", "exact increase % (Eq. 16)", "approx increase % (Eq. 17 fit)"],
    );

    let tech = Technology::quarter_micron();
    let rt = 250.0;
    let ct = 15e-12;
    let tau = tech.buffer_time_constant().seconds();

    for i in 0..=20 {
        let t_l_over_r = 0.5 * i as f64;
        let approx = delay_increase_percent_approx(t_l_over_r);
        let exact = if t_l_over_r == 0.0 {
            0.0
        } else {
            let lt = t_l_over_r * t_l_over_r * tau * rt;
            let problem = RepeaterProblem::new(
                Resistance::from_ohms(rt),
                Inductance::from_henries(lt),
                Capacitance::from_farads(ct),
                tech.min_buffer_resistance,
                tech.min_buffer_capacitance,
                Area::from_square_micrometers(4.0),
                Voltage::from_volts(2.5),
            )?;
            compare(&problem)?.delay_increase_percent
        };
        table.push_row(vec![
            format!("{t_l_over_r:.1}"),
            format!("{exact:.1}"),
            format!("{approx:.1}"),
        ]);
    }

    table.print(csv);
    if !csv {
        println!();
        println!("paper's anchors: ~10% at T_L/R = 3, ~20% at 5, ~30% at 10.");
    }
    Ok(())
}
