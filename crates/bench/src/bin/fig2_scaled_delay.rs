//! Figure 2: scaled 50% delay `t'pd` versus ζ, simulation against Eq. (9).
//!
//! For three (RT, CT) corners — (0,0), (1,1), (5,5), the same ones plotted in
//! the paper — the line inductance is swept so that ζ covers [0.1, 2.5]. Each
//! operating point is simulated with the transient MNA ladder (the AS/X
//! substitute), the measured delay is rescaled by ωn, and both the simulated
//! and the closed-form scaled delays are printed.
//!
//! Run with `cargo run --release -p rlckit-bench --bin fig2_scaled_delay`
//! (add `--csv` for machine-readable output).

use rlckit_bench::report::{csv_requested, Table};
use rlckit_circuit::ladder::{measure_step_delay, LadderSpec, SegmentStyle};
use rlckit_core::load::GateRlcLoad;
use rlckit_core::model::scaled_delay;
use rlckit_units::{Capacitance, Inductance, Resistance, Voltage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csv = csv_requested();
    let mut table = Table::new(
        "Fig. 2 — scaled delay t'pd vs zeta",
        &["RT", "CT", "zeta", "t'pd simulated", "t'pd Eq. (9)", "error %"],
    );

    // Fixed line resistance and capacitance; zeta is swept through Lt.
    let rt_ohms: f64 = 500.0;
    let ct_farads: f64 = 1e-12;

    let corners: [(f64, f64); 3] = [(0.0, 0.0), (1.0, 1.0), (5.0, 5.0)];
    let zetas: Vec<f64> = (1..=12).map(|i| 0.1 + (i - 1) as f64 * 0.2).collect();

    let mut worst: f64 = 0.0;
    for &(rt_ratio, ct_ratio) in &corners {
        for &zeta_target in &zetas {
            // Invert Eq. (6) for Lt at the requested zeta.
            let g = rt_ratio + ct_ratio + rt_ratio * ct_ratio + 0.5;
            let factor = (rt_ohms / 2.0) * ct_farads.sqrt() * g / (1.0 + ct_ratio).sqrt();
            let lt_henries = (factor / zeta_target).powi(2);

            let driver = Resistance::from_ohms(rt_ratio * rt_ohms);
            let load_cap = Capacitance::from_farads(ct_ratio * ct_farads);
            let load = GateRlcLoad::new(
                Resistance::from_ohms(rt_ohms),
                Inductance::from_henries(lt_henries),
                Capacitance::from_farads(ct_farads),
                driver,
                load_cap,
            )?;
            debug_assert!((load.zeta() - zeta_target).abs() < 1e-9);

            let spec = LadderSpec {
                total_resistance: load.total_resistance(),
                total_inductance: load.total_inductance(),
                total_capacitance: load.total_capacitance(),
                segments: 40,
                style: SegmentStyle::Pi,
                driver_resistance: driver,
                load_capacitance: load_cap,
                supply: Voltage::from_volts(1.0),
            };
            let simulated = measure_step_delay(&spec)?;
            let t_sim_scaled = load.scale_time(simulated.delay_50);
            let t_model_scaled = scaled_delay(load.zeta());
            let err = 100.0 * (t_model_scaled - t_sim_scaled).abs() / t_sim_scaled;
            worst = worst.max(err);

            table.push_row(vec![
                format!("{rt_ratio}"),
                format!("{ct_ratio}"),
                format!("{zeta_target:.2}"),
                format!("{t_sim_scaled:.3}"),
                format!("{t_model_scaled:.3}"),
                format!("{err:.2}"),
            ]);
        }
    }

    table.print(csv);
    if !csv {
        println!();
        println!("worst-case |Eq.(9) - simulation| over the sweep: {worst:.2}%");
        println!("paper's observation: t'pd is primarily a function of zeta alone;");
        println!("the three corners land on nearly the same curve.");
    }
    Ok(())
}
