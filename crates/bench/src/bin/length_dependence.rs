//! Section II headline: quadratic RC length dependence becomes linear with inductance.
//!
//! Sweeps the length of a bare line (no gate parasitics, so the pure
//! interconnect behaviour is visible) for three inductance levels and prints
//! the closed-form delay together with the local scaling exponent
//! `d(ln tpd)/d(ln l)`: 2 in the RC limit, 1 in the LC limit. A handful of
//! ladder simulations cross-check the closed form along the way.
//!
//! Run with `cargo run --release -p rlckit-bench --bin length_dependence`
//! (add `--csv` for machine-readable output).

use rlckit_bench::report::{csv_requested, Table};
use rlckit_circuit::ladder::{measure_step_delay, LadderSpec, SegmentStyle};
use rlckit_core::load::GateRlcLoad;
use rlckit_core::model::propagation_delay;
use rlckit_units::{
    Capacitance, CapacitancePerLength, InductancePerLength, Length, Resistance,
    ResistancePerLength, Voltage,
};

/// Per-unit-length parasitics of the swept wire.
const R_PER_MM: f64 = 25.0; // Ω/mm — a moderately resistive signal wire
const C_PER_MM: f64 = 0.2e-12; // F/mm

fn delay_at(length_mm: f64, l_per_mm: f64) -> f64 {
    let r = ResistancePerLength::from_ohms_per_millimeter(R_PER_MM);
    let c = CapacitancePerLength::from_farads_per_meter(C_PER_MM * 1e3);
    let l = InductancePerLength::from_henries_per_meter(l_per_mm * 1e3);
    let length = Length::from_millimeters(length_mm);
    let load =
        GateRlcLoad::new(r * length, l * length, c * length, Resistance::ZERO, Capacitance::ZERO)
            .expect("positive impedances");
    propagation_delay(&load).seconds()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csv = csv_requested();
    let mut table = Table::new(
        "delay vs length: quadratic (RC) to linear (LC) transition",
        &["L (nH/mm)", "length (mm)", "tpd Eq. 9 (ps)", "scaling exponent", "tpd simulated (ps)"],
    );

    // Three inductance levels: negligible, realistic, and exaggerated.
    let inductance_levels = [1e-15, 0.5e-9, 5e-9]; // H per mm
    let lengths: Vec<f64> = vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

    for &l_per_mm in &inductance_levels {
        for (i, &mm) in lengths.iter().enumerate() {
            let tpd = delay_at(mm, l_per_mm);
            // Local log-log slope against the previous length point.
            let exponent = if i == 0 {
                f64::NAN
            } else {
                let prev = delay_at(lengths[i - 1], l_per_mm);
                (tpd / prev).ln() / (mm / lengths[i - 1]).ln()
            };

            // Cross-check a few points against the ladder simulator.
            let simulated = if i % 2 == 1 {
                let length = Length::from_millimeters(mm);
                let spec = LadderSpec {
                    total_resistance: ResistancePerLength::from_ohms_per_millimeter(R_PER_MM)
                        * length,
                    total_inductance: InductancePerLength::from_henries_per_meter(l_per_mm * 1e3)
                        * length,
                    total_capacitance: CapacitancePerLength::from_farads_per_meter(C_PER_MM * 1e3)
                        * length,
                    segments: 40,
                    style: SegmentStyle::Pi,
                    driver_resistance: Resistance::ZERO,
                    load_capacitance: Capacitance::ZERO,
                    supply: Voltage::from_volts(1.0),
                };
                format!("{:.0}", measure_step_delay(&spec)?.delay_50.picoseconds())
            } else {
                "-".to_owned()
            };

            table.push_row(vec![
                format!("{:.3}", l_per_mm * 1e9),
                format!("{mm}"),
                format!("{:.0}", tpd * 1e12),
                if exponent.is_nan() { "-".to_owned() } else { format!("{exponent:.2}") },
                simulated,
            ]);
        }
    }

    table.print(csv);
    if !csv {
        println!();
        println!("with negligible inductance the exponent sits at 2 (0.37·R·C·l²); as inductance");
        println!("grows the long-line exponent falls towards 1 (time-of-flight, l·sqrt(L·C)).");
    }
    Ok(())
}
