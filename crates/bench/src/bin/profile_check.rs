//! The profile gate binary: structurally validate a `PROFILE_*.json`
//! document emitted by a profiled run.
//!
//! ```text
//! profile-check <file> [--require-span <leaf>]... [--require-counter <name>]...
//! ```
//!
//! Exits non-zero when the file does not parse as the telemetry profile
//! schema, when any span carries broken accounting (zero count, negative or
//! null timings, self time exceeding total), or when a required span leaf /
//! counter is absent (see `rlckit_bench::check::audit_profile` for the
//! contract). CI runs a smoke bench under `RLCKIT_PROFILE=1` and points this
//! binary at the emitted profile with the instrumentation sites the run must
//! have exercised.

use std::path::PathBuf;
use std::process::ExitCode;

use rlckit_bench::check::{audit_profile, parse_profile, render_violations};

fn main() -> ExitCode {
    let mut file: Option<PathBuf> = None;
    let mut require_spans: Vec<String> = Vec::new();
    let mut require_counters: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--require-span" => require_spans.push(value("--require-span")),
            "--require-counter" => require_counters.push(value("--require-counter")),
            other if !other.starts_with('-') && file.is_none() => {
                file = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: profile-check <file> [--require-span <leaf>]... \
                     [--require-counter <name>]..."
                );
                return ExitCode::from(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!(
            "usage: profile-check <file> [--require-span <leaf>]... [--require-counter <name>]..."
        );
        return ExitCode::from(2);
    };

    let text = match std::fs::read_to_string(&file) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("profile gate: cannot read {}: {e}", file.display());
            return ExitCode::FAILURE;
        }
    };
    let profile = match parse_profile(&text) {
        Ok(profile) => profile,
        Err(e) => {
            eprintln!("profile gate: {} does not parse: {e}", file.display());
            return ExitCode::FAILURE;
        }
    };

    let spans: Vec<&str> = require_spans.iter().map(String::as_str).collect();
    let counters: Vec<&str> = require_counters.iter().map(String::as_str).collect();
    let violations = audit_profile(&profile, &spans, &counters);
    if violations.is_empty() {
        println!(
            "profile gate: OK ({}: {} span(s), {} counter(s), {} gauge(s), {} histogram(s), \
             health {} info / {} warning / {} error)",
            file.display(),
            profile.spans.len(),
            profile.counters.len(),
            profile.gauges.len(),
            profile.histograms.len(),
            profile.health.info,
            profile.health.warning,
            profile.health.error
        );
        ExitCode::SUCCESS
    } else {
        eprint!("{}", render_violations(&violations));
        ExitCode::FAILURE
    }
}
