//! Equation 18: repeater-area penalty of designing with an RC model.
//!
//! Sweeps `T_{L/R}` and reports the per-cent increase in total repeater area
//! (`h·k·Amin`) of the Bakoglu RC design relative to the inductance-aware
//! design, using both the paper's closed form (Eq. 18) and the exact designs
//! evaluated on a concrete line. The paper quotes 154% at `T_{L/R} = 3` and
//! 435% at `T_{L/R} = 5`, and notes `T_{L/R} ≈ 5` is common for wide wires in
//! a 0.25 µm technology. The switching-energy increase (the paper's
//! qualitative power argument) is reported alongside.
//!
//! Run with `cargo run --release -p rlckit-bench --bin area_penalty_sweep`
//! (add `--csv` for machine-readable output).

use rlckit_bench::report::{csv_requested, Table};
use rlckit_interconnect::Technology;
use rlckit_repeater::comparison::{area_increase_percent_closed_form, compare};
use rlckit_repeater::RepeaterProblem;
use rlckit_units::{Area, Capacitance, Inductance, Resistance, Voltage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csv = csv_requested();
    let mut table = Table::new(
        "Eq. 18 — repeater area increase from designing with an RC model",
        &[
            "T_L/R",
            "area increase % (Eq. 18)",
            "area increase % (exact designs)",
            "energy increase % (exact designs)",
        ],
    );

    let tech = Technology::quarter_micron();
    let rt = 250.0;
    let ct = 15e-12;
    let tau = tech.buffer_time_constant().seconds();

    for i in 0..=20 {
        let t_l_over_r = 0.5 * i as f64;
        let closed_form = area_increase_percent_closed_form(t_l_over_r);
        let (exact_area, exact_energy) = if t_l_over_r == 0.0 {
            (0.0, 0.0)
        } else {
            let lt = t_l_over_r * t_l_over_r * tau * rt;
            let problem = RepeaterProblem::new(
                Resistance::from_ohms(rt),
                Inductance::from_henries(lt),
                Capacitance::from_farads(ct),
                tech.min_buffer_resistance,
                tech.min_buffer_capacitance,
                Area::from_square_micrometers(4.0),
                Voltage::from_volts(2.5),
            )?;
            let cmp = compare(&problem)?;
            (cmp.area_increase_percent, cmp.energy_increase_percent)
        };
        table.push_row(vec![
            format!("{t_l_over_r:.1}"),
            format!("{closed_form:.0}"),
            format!("{exact_area:.0}"),
            format!("{exact_energy:.0}"),
        ]);
    }

    table.print(csv);
    if !csv {
        println!();
        println!("paper's anchors: 154% at T_L/R = 3, 435% at T_L/R = 5 (a common value for");
        println!("wide wires in a 0.25 um technology).");
    }
    Ok(())
}
