//! Table 1: closed-form delay (Eq. 9) against dynamic simulation over a grid of
//! gate and line impedances.
//!
//! The grid is the paper's: `Ct = 1 pF`, `Rtr = 500 Ω`, `RT ∈ {0.1, 0.5, 1.0}`,
//! `CT ∈ {0.1, 0.5, 1.0}`, `Lt ∈ {10 µH, 1 µH, 0.1 µH, 10 nH}` — 36 operating
//! points spanning strongly underdamped to strongly overdamped responses. The
//! reference is the transient MNA ladder simulator standing in for AS/X.
//!
//! Run with `cargo run --release -p rlckit-bench --bin table1_delay_accuracy`
//! (add `--csv` for machine-readable output).

use rlckit_bench::report::{csv_requested, Table};
use rlckit_circuit::ladder::{measure_step_delay, LadderSpec, SegmentStyle};
use rlckit_core::accuracy::AccuracyTable;
use rlckit_core::load::GateRlcLoad;
use rlckit_core::model::propagation_delay;
use rlckit_units::{Capacitance, Inductance, Resistance, Voltage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csv = csv_requested();
    let mut table = Table::new(
        "Table 1 — Eq. (9) vs dynamic simulation (Ct = 1 pF, Rtr = 500 Ω)",
        &["RT", "CT", "Lt (H)", "Eq. 9 (ps)", "sim (ps)", "error %", "overshoot %"],
    );
    let mut accuracy = AccuracyTable::new();

    let rtr = 500.0;
    let ct = 1e-12;
    let rt_ratios = [0.1, 0.5, 1.0];
    let ct_ratios = [0.1, 0.5, 1.0];
    let inductances = [1e-5, 1e-6, 1e-7, 1e-8];

    for &rt_ratio in &rt_ratios {
        for &lt in &inductances {
            for &ct_ratio in &ct_ratios {
                let total_resistance = Resistance::from_ohms(rtr / rt_ratio);
                let driver = Resistance::from_ohms(rtr);
                let load_cap = Capacitance::from_farads(ct_ratio * ct);
                let load = GateRlcLoad::new(
                    total_resistance,
                    Inductance::from_henries(lt),
                    Capacitance::from_farads(ct),
                    driver,
                    load_cap,
                )?;
                let model = propagation_delay(&load);

                let spec = LadderSpec {
                    total_resistance,
                    total_inductance: Inductance::from_henries(lt),
                    total_capacitance: Capacitance::from_farads(ct),
                    segments: 40,
                    style: SegmentStyle::Pi,
                    driver_resistance: driver,
                    load_capacitance: load_cap,
                    supply: Voltage::from_volts(1.0),
                };
                let simulated = measure_step_delay(&spec)?;
                let label = format!("RT={rt_ratio} CT={ct_ratio} Lt={lt:.0e}");
                accuracy.push(label, model, simulated.delay_50);

                let err = model.percent_error_vs(simulated.delay_50);
                table.push_row(vec![
                    format!("{rt_ratio}"),
                    format!("{ct_ratio}"),
                    format!("{lt:.0e}"),
                    format!("{:.0}", model.picoseconds()),
                    format!("{:.0}", simulated.delay_50.picoseconds()),
                    format!("{err:.2}"),
                    format!("{:.1}", simulated.overshoot_percent),
                ]);
            }
        }
    }

    table.print(csv);
    if !csv {
        let summary = accuracy.summary()?;
        println!();
        println!("error summary over {} operating points: {summary}", accuracy.len());
        if let Some(worst) = accuracy.worst() {
            println!("worst cell: {} ({:.2}%)", worst.label, worst.percent_error());
        }
        println!("paper's claim: the error of Eq. (9) stays below ~5% over this grid.");
    }
    Ok(())
}
