//! The profile-diff regression gate: compare a fresh `PROFILE_*.json`
//! snapshot against a committed baseline.
//!
//! ```text
//! profile-diff <baseline.json> <fresh.json> [--tolerance <ratio>]
//! ```
//!
//! Exits non-zero when either file fails the telemetry profile schema, when
//! a span path or counter appears on only one side (instrumentation drift
//! needs a recommitted baseline; vanished spans are coverage rot), when a
//! span's self time moves by more than the ratio tolerance (default
//! `rlckit_bench::check::DEFAULT_PROFILE_TOLERANCE`, generous enough for
//! cross-machine noise but far inside an accidental `O(n²)`), or when the
//! fresh run recorded any error-severity numerical-health event. CI runs the
//! profiled smoke bench and points this binary at the committed
//! `PROFILE_baseline_tree.json`.

use std::path::PathBuf;
use std::process::ExitCode;

use rlckit_bench::check::{
    compare_profiles, parse_profile, render_violations, ParsedProfile, DEFAULT_PROFILE_TOLERANCE,
};

fn main() -> ExitCode {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut tolerance = DEFAULT_PROFILE_TOLERANCE;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => {
                let value = args.next().and_then(|v| v.parse::<f64>().ok());
                match value {
                    Some(v) if v > 1.0 && v.is_finite() => tolerance = v,
                    _ => {
                        eprintln!("--tolerance requires a finite ratio > 1");
                        return ExitCode::from(2);
                    }
                }
            }
            other if !other.starts_with('-') && files.len() < 2 => {
                files.push(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: profile-diff <baseline.json> <fresh.json> [--tolerance <ratio>]");
                return ExitCode::from(2);
            }
        }
    }
    let [baseline_path, fresh_path] = files.as_slice() else {
        eprintln!("usage: profile-diff <baseline.json> <fresh.json> [--tolerance <ratio>]");
        return ExitCode::from(2);
    };

    let read_parse = |path: &PathBuf| -> Result<ParsedProfile, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        parse_profile(&text).map_err(|e| format!("{} does not parse: {e}", path.display()))
    };
    let (baseline, fresh) = match (read_parse(baseline_path), read_parse(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("profile diff: {e}");
            return ExitCode::FAILURE;
        }
    };

    let violations = compare_profiles(&baseline, &fresh, tolerance);
    if violations.is_empty() {
        println!(
            "profile diff: OK ({} vs {}: {} span(s), {} counter(s), tolerance {tolerance}x)",
            baseline_path.display(),
            fresh_path.display(),
            fresh.spans.len(),
            fresh.counters.len()
        );
        ExitCode::SUCCESS
    } else {
        eprint!("{}", render_violations(&violations));
        ExitCode::FAILURE
    }
}
