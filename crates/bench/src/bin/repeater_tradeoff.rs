//! Extension experiment: delay / area / energy trade-off of repeated lines.
//!
//! Beyond the paper's delay-optimal design (its ref. \[10\] studies this
//! trade-off for RC lines), this binary sweeps the number of sections for one
//! resistive and one inductive wire, re-optimising the repeater size at each
//! count, and reports how much area and switching energy a small delay slack
//! buys — with the RLC-aware section delay model throughout.
//!
//! Run with `cargo run --release -p rlckit-bench --bin repeater_tradeoff`
//! (add `--csv` for machine-readable output).

use rlckit_bench::report::{csv_requested, Table};
use rlckit_interconnect::Technology;
use rlckit_repeater::tradeoff::{cheapest_within_slack, sections_sweep};
use rlckit_repeater::RepeaterProblem;
use rlckit_units::Length;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csv = csv_requested();
    let tech = Technology::quarter_micron();

    let wires = [
        ("intermediate 20 mm (resistive)", tech.intermediate_wire, 20.0),
        ("global 50 mm (inductive)", tech.global_wire, 50.0),
    ];

    for (name, wire, mm) in wires {
        let line = wire.line(Length::from_millimeters(mm))?;
        let problem = RepeaterProblem::for_line(&line, &tech)?;
        let mut table = Table::new(
            format!(
                "delay/area/energy vs section count — {name} (T_L/R = {:.2})",
                problem.t_l_over_r()
            ),
            &["sections", "size (x)", "delay (ps)", "area (um^2)", "energy (fJ)"],
        );
        for point in sections_sweep(&problem, 10)? {
            table.push_row(vec![
                format!("{}", point.sections),
                format!("{:.0}", point.size),
                format!("{:.0}", point.total_delay.picoseconds()),
                format!("{:.0}", point.repeater_area.square_micrometers()),
                format!("{:.1}", point.switching_energy.joules() * 1e15),
            ]);
        }
        table.print(csv);
        if !csv {
            let tight = cheapest_within_slack(&problem, 10, 0.0)?;
            let relaxed = cheapest_within_slack(&problem, 10, 10.0)?;
            println!();
            println!(
                "delay-optimal point: {} sections, {:.0} um^2 of repeater area",
                tight.sections,
                tight.repeater_area.square_micrometers()
            );
            println!(
                "cheapest design within 10% delay slack: {} sections, {:.0} um^2 ({:.0}% area saved)",
                relaxed.sections,
                relaxed.repeater_area.square_micrometers(),
                100.0 * (1.0 - relaxed.repeater_area.square_meters() / tight.repeater_area.square_meters())
            );
            println!();
        }
    }
    Ok(())
}
