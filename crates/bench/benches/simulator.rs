//! Cost and convergence of the transient ladder simulator.
//!
//! The dynamic simulator is the referee for every accuracy claim in this
//! reproduction, so its own convergence matters: this bench measures the
//! simulation cost as the number of lumped segments grows (the delay estimate
//! changes by well under 1% beyond ~40 segments, see the integration tests,
//! while the cost grows roughly cubically with the MNA dimension for the
//! factorisation plus quadratically per step).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rlckit_bench::report::smoke_or;
use rlckit_circuit::ladder::{measure_step_delay, LadderSpec, SegmentStyle};
use rlckit_units::{Capacitance, Inductance, Resistance, Voltage};

fn spec(segments: usize) -> LadderSpec {
    LadderSpec {
        total_resistance: Resistance::from_ohms(500.0),
        total_inductance: Inductance::from_nanohenries(10.0),
        total_capacitance: Capacitance::from_picofarads(1.0),
        segments,
        style: SegmentStyle::Pi,
        driver_resistance: Resistance::from_ohms(250.0),
        load_capacitance: Capacitance::from_picofarads(0.1),
        supply: Voltage::from_volts(1.0),
    }
}

fn bench_simulator_segments(c: &mut Criterion) {
    let mut group = c.benchmark_group("transient_ladder");
    group.sample_size(smoke_or(2, 10));
    for segments in smoke_or(vec![10usize, 20], vec![10usize, 20, 40, 80]) {
        group.bench_with_input(BenchmarkId::from_parameter(segments), &segments, |b, &segments| {
            b.iter(|| measure_step_delay(black_box(&spec(segments))).expect("simulates"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator_segments);
criterion_main!(benches);
