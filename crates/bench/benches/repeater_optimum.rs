//! Runtime cost of repeater-insertion strategies.
//!
//! Closed-form sizing (Eqs. 14–15) is two square roots and two powers; the
//! numerical optimum needs hundreds of evaluations of the total-delay
//! objective. This is the cost an EDA flow avoids by adopting the paper's
//! expressions, benchmarked on a strongly inductive global wire.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rlckit_bench::report::smoke_or;
use rlckit_interconnect::Technology;
use rlckit_repeater::comparison::compare;
use rlckit_repeater::design::{DesignStrategy, RepeaterDesigner};
use rlckit_repeater::numerical::optimize;
use rlckit_repeater::RepeaterProblem;
use rlckit_units::Length;

fn problem() -> (rlckit_interconnect::DistributedLine, Technology) {
    let tech = Technology::quarter_micron();
    let line = tech.global_wire.line(Length::from_millimeters(50.0)).expect("valid line");
    (line, tech)
}

fn bench_repeater_strategies(c: &mut Criterion) {
    let (line, tech) = problem();
    let problem = RepeaterProblem::for_line(&line, &tech).expect("valid problem");
    let designer = RepeaterDesigner::new(&line, &tech);

    let mut group = c.benchmark_group("repeater_insertion");
    group.sample_size(smoke_or(2, 10));
    group.bench_function("closed_form_rlc_optimum", |b| {
        b.iter(|| black_box(&problem).rlc_optimum())
    });
    group.bench_function("closed_form_rc_optimum", |b| {
        b.iter(|| black_box(&problem).bakoglu_optimum())
    });
    group.bench_function("numerical_optimum", |b| {
        b.iter(|| optimize(black_box(&problem)).expect("converges"))
    });
    group.bench_function("rc_vs_rlc_comparison", |b| {
        b.iter(|| compare(black_box(&problem)).expect("comparable"))
    });
    group.bench_function("integer_design_rlc_strategy", |b| {
        b.iter(|| designer.design(DesignStrategy::RlcClosedForm).expect("designs"))
    });
    group.finish();
}

criterion_group!(benches, bench_repeater_strategies);
criterion_main!(benches);
