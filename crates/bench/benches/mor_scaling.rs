//! Reduced-order vs full-transient delay evaluation at growing ladder sizes.
//!
//! The whole point of the `rlckit-reduce` subsystem: a transient run costs a
//! factorisation plus thousands of banded solves *per evaluation*, while an
//! order-`q` PRIMA reduction costs `q` banded solves once and then answers
//! `delay_50`/overshoot/settling in closed form. This bench times both paths
//! on the paper's driven line from 50 to 1000 π-sections, checks they agree
//! on the delay, and writes the measurements — including the
//! reduced-vs-transient speedup per size — into the perf trajectory as
//! `BENCH_mor.json`. The acceptance target is a ≥10× speedup at 1000
//! sections; in practice the gap is orders of magnitude.
//!
//! Run with `cargo bench -p rlckit-bench --bench mor_scaling`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use rlckit_bench::report::{smoke_or, write_trajectory_or_exit, PerfReport};
use rlckit_circuit::ladder::{measure_step_delay, LadderSpec, SegmentStyle};
use rlckit_circuit::SolverBackend;
use rlckit_reduce::reduce_ladder;
use rlckit_units::{Capacitance, Inductance, Resistance, Voltage};

/// Reduction order used throughout (well past the ≤1% delay-accuracy knee).
const ORDER: usize = 8;

/// Ladder sizes; smoke mode keeps the two cheapest.
fn sections() -> Vec<usize> {
    smoke_or(vec![50, 100], vec![50, 100, 200, 500, 1000])
}

fn spec(sections: usize) -> LadderSpec {
    LadderSpec {
        total_resistance: Resistance::from_ohms(500.0),
        total_inductance: Inductance::from_nanohenries(10.0),
        total_capacitance: Capacitance::from_picofarads(1.0),
        segments: sections,
        style: SegmentStyle::Pi,
        driver_resistance: Resistance::from_ohms(250.0),
        load_capacitance: Capacitance::from_picofarads(0.1),
        supply: Voltage::from_volts(1.0),
    }
}

/// One reduced evaluation: PRIMA projection + closed-form metrics.
fn reduced_seconds(sections: usize) -> (f64, f64) {
    let spec = spec(sections);
    let start = Instant::now();
    let reduced = reduce_ladder(black_box(&spec), ORDER, SolverBackend::Auto).expect("reduces");
    let metrics = reduced.metrics().expect("measures");
    (start.elapsed().as_secs_f64(), metrics.delay_50.seconds())
}

/// One full evaluation: transient simulation + waveform measurement.
fn transient_seconds(sections: usize) -> (f64, f64) {
    let spec = spec(sections);
    let start = Instant::now();
    let m = measure_step_delay(black_box(&spec)).expect("simulates");
    (start.elapsed().as_secs_f64(), m.delay_50.seconds())
}

fn bench_mor_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mor_scaling");
    group.sample_size(smoke_or(2, 10));
    for sections in sections() {
        group.bench_with_input(BenchmarkId::new("reduced", sections), &sections, |b, &sections| {
            let spec = spec(sections);
            b.iter(|| {
                let reduced =
                    reduce_ladder(black_box(&spec), ORDER, SolverBackend::Auto).expect("reduces");
                reduced.metrics().expect("measures")
            })
        });
    }
    group.finish();
}

/// One timed pass per configuration, written to `BENCH_mor.json`.
fn write_perf_trajectory() {
    let mut report = PerfReport::new("mor");
    report.push("order", ORDER as f64, "count");
    let mut speedup_at_1000 = None;
    for sections in sections() {
        let (fast, fast_delay) = reduced_seconds(sections);
        let (full, full_delay) = transient_seconds(sections);
        let speedup = full / fast;
        let err = 100.0 * (fast_delay - full_delay).abs() / full_delay;
        report.push(format!("reduced/{sections}"), fast, "seconds");
        report.push(format!("transient/{sections}"), full, "seconds");
        report.push(format!("speedup/{sections}"), speedup, "x");
        report.push(format!("delay_error_pct/{sections}"), err, "percent");
        if sections == 1000 {
            speedup_at_1000 = Some(speedup);
        }
        println!(
            "{sections:>5} sections: transient {full:.4} s, reduced {fast:.6} s, \
             speedup {speedup:.0}x, delay error {err:.3}%"
        );
        assert!(err < 1.0, "reduced delay drifted {err}% from the transient at {sections}");
    }
    write_trajectory_or_exit(&report);
    if let Some(s) = speedup_at_1000 {
        println!("reduced vs transient speedup at 1000 sections: {s:.0}x");
        assert!(s >= 10.0, "speedup target at 1000 sections not met: {s:.1}x");
    }
}

fn bench_with_trajectory(c: &mut Criterion) {
    bench_mor_scaling(c);
    write_perf_trajectory();
}

criterion_group!(benches, bench_with_trajectory);
criterion_main!(benches);
