//! Dense vs banded solver scaling on coupled-bus transient runs.
//!
//! Coupled buses are a harder workload for the banded path than single-line
//! ladders: the conductor-to-conductor coupling capacitors and mutual-
//! inductance stamps tie the `N` per-line ladders together at every section,
//! so the reverse Cuthill–McKee bandwidth grows with the line count instead
//! of staying at the single-ladder constant. This bench sweeps `N` lines ×
//! `M` sections under worst-case (odd-mode) switching, times both kernels on
//! a fixed 200-step run, and writes the measurements — including the
//! dense/banded speedup where both ran — into the perf trajectory as
//! `BENCH_coupled_bus.json`.
//!
//! The dense kernel is only swept while the MNA dimension stays below a few
//! thousand unknowns; beyond that a single dense factorisation dominates the
//! wall clock, which is exactly the point.
//!
//! Run with `cargo bench -p rlckit-bench --bench coupled_bus_scaling`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use rlckit_bench::report::{smoke_or, write_trajectory_or_exit, PerfReport};
use rlckit_circuit::transient::{run_transient, TransientOptions};
use rlckit_circuit::SolverBackend;
use rlckit_coupling::bus::UniformBusSpec;
use rlckit_coupling::netlist::{build_bus_circuit, BusCircuit, BusDrive};
use rlckit_coupling::scenario::SwitchingPattern;
use rlckit_units::{
    Capacitance, CapacitancePerLength, InductancePerLength, Length, Resistance,
    ResistancePerLength, Time, Voltage,
};

/// (lines, sections) points of the sweep; smoke mode keeps the two cheapest.
fn sweep() -> Vec<(usize, usize)> {
    smoke_or(vec![(2, 25), (3, 50)], vec![(2, 25), (2, 100), (3, 50), (3, 200), (5, 100), (5, 400)])
}
/// The dense kernel only runs while `dim ≤ DENSE_DIM_LIMIT`.
const DENSE_DIM_LIMIT: usize = 1500;

fn bus_circuit(lines: usize, sections: usize) -> BusCircuit {
    let bus = UniformBusSpec {
        lines,
        resistance: ResistancePerLength::from_ohms_per_millimeter(1.3),
        self_inductance: InductancePerLength::from_nanohenries_per_millimeter(0.5),
        ground_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.21),
        coupling_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.1),
        inductive_coupling: vec![0.35, 0.15],
        length: Length::from_millimeters(5.0),
    }
    .build()
    .expect("bus builds");
    let drive = BusDrive::new(
        Resistance::from_ohms(112.5),
        Capacitance::from_femtofarads(120.0),
        Voltage::from_volts(1.8),
    )
    .with_sections(sections);
    let pattern = SwitchingPattern::odd_mode(lines / 2, lines).expect("pattern");
    build_bus_circuit(&bus, &pattern, &drive).expect("circuit builds")
}

/// Rough MNA dimension: nodes (input + 2 per section, per conductor) plus
/// branch currents (source + one inductor per section, per conductor).
fn mna_dim(lines: usize, sections: usize) -> usize {
    lines * (1 + 2 * sections) + lines * (1 + sections)
}

/// A fixed 200-step horizon so every size pays one factorisation plus the
/// same number of substitutions.
fn options(backend: SolverBackend) -> TransientOptions {
    TransientOptions::new(Time::from_picoseconds(200.0), Time::from_picoseconds(1.0))
        .with_backend(backend)
}

fn time_one(built: &BusCircuit, backend: SolverBackend) -> f64 {
    let opts = options(backend);
    let start = Instant::now();
    let result = run_transient(black_box(&built.circuit), &opts).expect("simulates");
    let elapsed = start.elapsed().as_secs_f64();
    black_box(result.len());
    elapsed
}

fn bench_coupled_bus(c: &mut Criterion) {
    let mut group = c.benchmark_group("coupled_bus_scaling");
    group.sample_size(smoke_or(2, 10));
    for (lines, sections) in sweep() {
        let label = format!("{lines}x{sections}");
        let built = bus_circuit(lines, sections);
        group.bench_with_input(BenchmarkId::new("banded", &label), &built, |b, built| {
            let opts = options(SolverBackend::Banded);
            b.iter(|| run_transient(black_box(&built.circuit), &opts).expect("simulates"))
        });
        if mna_dim(lines, sections) <= DENSE_DIM_LIMIT {
            group.bench_with_input(BenchmarkId::new("dense", &label), &built, |b, built| {
                let opts = options(SolverBackend::Dense);
                b.iter(|| run_transient(black_box(&built.circuit), &opts).expect("simulates"))
            });
        }
    }
    group.finish();
}

/// One timed pass per configuration, written to `BENCH_coupled_bus.json`.
///
/// Criterion's own numbers stay on stdout; this single-shot sweep is what the
/// perf trajectory records, so the JSON is cheap to regenerate and the file
/// contents do not depend on criterion internals.
fn write_perf_trajectory() {
    let mut report = PerfReport::new("coupled_bus");
    for (lines, sections) in sweep() {
        let label = format!("{lines}x{sections}");
        let built = bus_circuit(lines, sections);
        let banded = time_one(&built, SolverBackend::Banded);
        report.push(format!("banded/{label}"), banded, "seconds");
        if mna_dim(lines, sections) <= DENSE_DIM_LIMIT {
            let dense = time_one(&built, SolverBackend::Dense);
            let speedup = dense / banded;
            report.push(format!("dense/{label}"), dense, "seconds");
            report.push(format!("speedup/{label}"), speedup, "x");
            println!(
                "{lines} lines x {sections:>4} sections: dense {dense:.4} s, banded {banded:.4} s, speedup {speedup:.1}x"
            );
        } else {
            println!(
                "{lines} lines x {sections:>4} sections: banded {banded:.4} s (dense skipped)"
            );
        }
    }
    write_trajectory_or_exit(&report);
}

fn bench_with_trajectory(c: &mut Criterion) {
    bench_coupled_bus(c);
    write_perf_trajectory();
}

criterion_group!(benches, bench_with_trajectory);
criterion_main!(benches);
