//! Dense vs banded solver scaling on RLC-ladder transient runs.
//!
//! The transient simulator factorises one constant matrix and then performs a
//! substitution per timestep. With the dense kernel that is `O(n³) + steps·O(n²)`;
//! the banded kernel (reachable because every ladder MNA system has constant
//! bandwidth under the reverse Cuthill–McKee ordering) brings it down to
//! `O(n·b²) + steps·O(n·b)`. This bench sweeps ladders from 10 to 2000
//! sections, times both kernels on a fixed 200-step run, and writes the
//! measurements — including the dense/banded speedup per size — into the
//! perf trajectory as `BENCH_solver_scaling.json`.
//!
//! The dense kernel is only swept up to 500 sections: beyond that a single
//! dense factorisation takes minutes, which is exactly the point.
//!
//! Run with `cargo bench -p rlckit-bench --bench solver_scaling`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use rlckit_bench::report::{smoke_or, write_trajectory_or_exit, PerfReport};
use rlckit_circuit::ladder::{LadderSpec, SegmentStyle};
use rlckit_circuit::transient::{run_transient, TransientOptions};
use rlckit_circuit::SolverBackend;
use rlckit_units::{Capacitance, Inductance, Resistance, Time, Voltage};

/// Sizes both kernels run; the dense kernel stops at [`DENSE_LIMIT`].
/// Smoke mode (`RLCKIT_BENCH_SMOKE`) keeps only the two cheapest points.
fn sections() -> Vec<usize> {
    smoke_or(vec![10, 50], vec![10, 50, 100, 200, 500, 1000, 2000])
}
const DENSE_LIMIT: usize = 500;

fn spec(sections: usize) -> LadderSpec {
    LadderSpec {
        total_resistance: Resistance::from_ohms(500.0),
        total_inductance: Inductance::from_nanohenries(10.0),
        total_capacitance: Capacitance::from_picofarads(1.0),
        segments: sections,
        style: SegmentStyle::Pi,
        driver_resistance: Resistance::from_ohms(250.0),
        load_capacitance: Capacitance::from_picofarads(0.1),
        supply: Voltage::from_volts(1.0),
    }
}

/// A fixed 200-step horizon so every size pays one factorisation plus the
/// same number of substitutions.
fn options(backend: SolverBackend) -> TransientOptions {
    TransientOptions::new(Time::from_picoseconds(200.0), Time::from_picoseconds(1.0))
        .with_backend(backend)
}

fn time_one(sections: usize, backend: SolverBackend) -> f64 {
    let line = spec(sections).build().expect("ladder builds");
    let opts = options(backend);
    let start = Instant::now();
    let result = run_transient(black_box(&line.circuit), &opts).expect("simulates");
    let elapsed = start.elapsed().as_secs_f64();
    black_box(result.len());
    elapsed
}

fn bench_solver_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_scaling");
    group.sample_size(smoke_or(2, 10));
    for sections in sections() {
        group.bench_with_input(BenchmarkId::new("banded", sections), &sections, |b, &sections| {
            let line = spec(sections).build().expect("ladder builds");
            let opts = options(SolverBackend::Banded);
            b.iter(|| run_transient(black_box(&line.circuit), &opts).expect("simulates"))
        });
        if sections <= DENSE_LIMIT {
            group.bench_with_input(
                BenchmarkId::new("dense", sections),
                &sections,
                |b, &sections| {
                    let line = spec(sections).build().expect("ladder builds");
                    let opts = options(SolverBackend::Dense);
                    b.iter(|| run_transient(black_box(&line.circuit), &opts).expect("simulates"))
                },
            );
        }
    }
    group.finish();
}

/// One timed pass per configuration, written to `BENCH_solver_scaling.json`.
///
/// Criterion's own numbers stay on stdout; this single-shot sweep is what the
/// perf trajectory records, so the JSON is cheap to regenerate and the file
/// contents do not depend on criterion internals.
fn write_perf_trajectory() {
    let mut report = PerfReport::new("solver_scaling");
    let mut speedup_at_500 = None;
    for sections in sections() {
        let banded = time_one(sections, SolverBackend::Banded);
        report.push(format!("banded/{sections}"), banded, "seconds");
        if sections <= DENSE_LIMIT {
            let dense = time_one(sections, SolverBackend::Dense);
            report.push(format!("dense/{sections}"), dense, "seconds");
            let speedup = dense / banded;
            report.push(format!("speedup/{sections}"), speedup, "x");
            if sections == 500 {
                speedup_at_500 = Some(speedup);
            }
            println!("{sections:>5} sections: dense {dense:.4} s, banded {banded:.4} s, speedup {speedup:.1}x");
        } else {
            println!("{sections:>5} sections: banded {banded:.4} s (dense skipped)");
        }
    }
    write_trajectory_or_exit(&report);
    if let Some(s) = speedup_at_500 {
        println!("dense/banded speedup at 500 sections: {s:.1}x");
    }
}

fn bench_with_trajectory(c: &mut Criterion) {
    bench_solver_scaling(c);
    write_perf_trajectory();
}

criterion_group!(benches, bench_with_trajectory);
criterion_main!(benches);
