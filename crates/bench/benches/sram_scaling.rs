//! Netlist-frontend scaling on SRAM bitline/wordline array decks.
//!
//! The frontend's scaling workload is an SRAM array: `n × n` cells emitted as
//! a SPICE deck (two parameterized subcircuits, one `X` instance per cell),
//! lowered back through the tokenizer/parser/elaborator, and simulated for
//! the far-corner read delay on the sparse kernel. This bench sweeps the
//! array edge from 8 to 64 — 195 to 12 291 MNA unknowns — and separates the
//! two costs the frontend adds to the usual solve: deck *emission + parsing*
//! (pure string work, linear in cells) and the *transient read* itself
//! (sparse factorisation plus substitutions). The measurements land in the
//! perf trajectory as `BENCH_sram.json`.
//!
//! The 64 × 64 point is the acceptance workload: a deck-lowered system past
//! 10⁴ unknowns completing a sparse-backend transient.
//!
//! Run with `cargo bench -p rlckit-bench --bench sram_scaling`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use rlckit_bench::report::{
    smoke_or, write_profile_if_enabled, write_trajectory_or_exit, PerfReport,
};
use rlckit_circuit::SolverBackend;
use rlckit_netlist::{measure_sram_read, parse_circuit, SramArraySpec};

/// Array edges swept; smoke mode (`RLCKIT_BENCH_SMOKE`) keeps the two
/// cheapest points.
fn edges() -> Vec<usize> {
    smoke_or(vec![8, 16], vec![8, 16, 32, 64])
}

fn bench_sram_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sram_scaling");
    group.sample_size(smoke_or(2, 10));
    for n in edges() {
        // Criterion times the cheap, deterministic half — emit + parse +
        // lower — at every size; the full read (dominated by the solve) is
        // timed once per size in the trajectory pass below.
        group.bench_with_input(BenchmarkId::new("parse_lower", n), &n, |b, &n| {
            let deck = SramArraySpec::new(n, n).emit_deck().expect("deck emits");
            b.iter(|| parse_circuit(black_box(&deck)).expect("deck lowers"))
        });
    }
    group.finish();
}

/// One timed pass per configuration, written to `BENCH_sram.json`.
fn write_perf_trajectory() {
    let mut report = PerfReport::new("sram");
    for n in edges() {
        let spec = SramArraySpec::new(n, n);
        let deck = spec.emit_deck().expect("deck emits");
        let start = Instant::now();
        let parsed = parse_circuit(&deck).expect("deck lowers");
        let parse_seconds = start.elapsed().as_secs_f64();
        black_box(parsed.circuit.elements().len());

        let start = Instant::now();
        let read = measure_sram_read(&spec, SolverBackend::Sparse).expect("read completes");
        let read_seconds = start.elapsed().as_secs_f64();

        report.push(format!("parse_lower/{n}x{n}"), parse_seconds, "seconds");
        report.push(format!("read/{n}x{n}"), read_seconds, "seconds");
        report.push(format!("read_delay/{n}x{n}"), read.delay_50.picoseconds(), "ps");
        println!(
            "{n:>3}x{n:<3} {:>6} unknowns: parse {parse_seconds:.4} s, \
             read {read_seconds:.4} s ({:?}), delay {}",
            read.unknowns, read.backend, read.delay_50,
        );
    }
    write_trajectory_or_exit(&report);
}

fn bench_with_trajectory(c: &mut Criterion) {
    bench_sram_scaling(c);
    write_perf_trajectory();
    // Under RLCKIT_PROFILE=1 this lands PROFILE_sram.json, which CI audits
    // for the frontend spans (netlist.parse / netlist.lower) and the
    // numerical-health rollup of the deck-lowered transient reads.
    write_profile_if_enabled("sram");
}

criterion_group!(benches, bench_with_trajectory);
criterion_main!(benches);
