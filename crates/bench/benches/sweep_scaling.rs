//! Thread scaling of the sweep engine on a transient-heavy workload.
//!
//! The sweep executor is a chunked work-queue over `std::thread`; this bench
//! measures how a coupled-bus crosstalk sweep (each cell is four transient
//! simulations) scales from 1 to 4 workers, plus the cost of a fully warm
//! content-hash cache run. The wall-clock numbers and speedups go into the
//! perf trajectory as `BENCH_sweep.json`.
//!
//! Run with `cargo bench -p rlckit-bench --bench sweep_scaling`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use rlckit_bench::report::{
    smoke_or, write_profile_if_enabled, write_trajectory_or_exit, PerfReport,
};
use rlckit_sweep::cache::SweepCache;
use rlckit_sweep::eval::BusCrosstalkEvaluator;
use rlckit_sweep::exec::{run_sweep, run_sweep_cached, SweepOptions};
use rlckit_sweep::scenario::{Param, Scenario, TechnologyNode};
use rlckit_sweep::spec::{Axis, SweepSpec};

/// Worker counts the trajectory records; smoke mode stops at two workers.
fn threads() -> Vec<usize> {
    smoke_or(vec![1, 2], vec![1, 2, 4])
}

/// A 12-cell transient sweep: bus pitch (zipped Cc + k axis) × line count.
fn sweep_spec() -> SweepSpec {
    let base = Scenario {
        technology: TechnologyNode::N180,
        line_length_mm: 2.0,
        driver_size: 40.0,
        ladder_sections: 6,
        ..Scenario::default()
    };
    let pitch = Axis::zipped(
        "pitch",
        ["wide".to_owned(), "nominal".to_owned(), "tight".to_owned(), "minimum".to_owned()],
        [
            vec![Param::CouplingCapFfPerUm(0.04), Param::InductiveCoupling(0.2)],
            vec![Param::CouplingCapFfPerUm(0.08), Param::InductiveCoupling(0.3)],
            vec![Param::CouplingCapFfPerUm(0.12), Param::InductiveCoupling(0.4)],
            vec![Param::CouplingCapFfPerUm(0.16), Param::InductiveCoupling(0.5)],
        ],
    )
    .expect("static pitch axis is well-formed");
    SweepSpec::new(base).axis(pitch).axis(Axis::new("lines", [2usize, 3, 4].map(Param::BusLines)))
}

fn time_threads(threads: usize) -> f64 {
    let spec = sweep_spec();
    let opts = SweepOptions::with_threads(threads);
    let start = Instant::now();
    let result = run_sweep(black_box(&spec), &BusCrosstalkEvaluator, &opts).expect("sweep runs");
    let elapsed = start.elapsed().as_secs_f64();
    assert!(result.first_error().is_none(), "bench sweep must evaluate cleanly");
    black_box(result.rows.len());
    elapsed
}

fn bench_sweep_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_scaling");
    group.sample_size(smoke_or(2, 10));
    for threads in threads() {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &threads| {
            let spec = sweep_spec();
            let opts = SweepOptions::with_threads(threads);
            b.iter(|| run_sweep(black_box(&spec), &BusCrosstalkEvaluator, &opts).expect("runs"))
        });
    }
    group.finish();
}

/// One timed pass per configuration, written to `BENCH_sweep.json`.
fn write_perf_trajectory() {
    let spec = sweep_spec();
    let mut report = PerfReport::new("sweep");
    report.push("cells", spec.len() as f64, "count");
    // Speedups are only meaningful relative to the cores the machine grants;
    // on a single-CPU container the 2/4-thread numbers are expected to be ~1x.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    report.push("cpus", cpus as f64, "count");

    let mut serial = None;
    for threads in threads() {
        let seconds = time_threads(threads);
        report.push(format!("threads/{threads}"), seconds, "seconds");
        match serial {
            None => serial = Some(seconds),
            Some(base) => report.push(format!("speedup/{threads}"), base / seconds, "x"),
        }
        println!("{threads} thread(s): {seconds:.3} s");
    }

    // A fully warm cache run: expansion + hashing + replay only.
    let mut cache = SweepCache::in_memory();
    let opts = SweepOptions::with_threads(1);
    run_sweep_cached(&spec, &BusCrosstalkEvaluator, &opts, &mut cache).expect("cold run");
    let start = Instant::now();
    let warm = run_sweep_cached(&spec, &BusCrosstalkEvaluator, &opts, &mut cache).expect("warm");
    let cached_seconds = start.elapsed().as_secs_f64();
    assert_eq!(warm.computed, 0);
    report.push("cached", cached_seconds, "seconds");
    println!("warm cache: {cached_seconds:.6} s for {} cells", spec.len());

    // Replay the warm pass once more under the telemetry collector — after
    // the timed measurement above, so profiling overhead never touches the
    // recorded number — and hold the executor to a 100% hit rate through its
    // own counters rather than the result struct.
    {
        let _collector = rlckit_telemetry::Collector::enable();
        let before = rlckit_telemetry::Collector::snapshot();
        let replay =
            run_sweep_cached(&spec, &BusCrosstalkEvaluator, &opts, &mut cache).expect("replay");
        let after = rlckit_telemetry::Collector::snapshot();
        let hits = after.counter("sweep.cache_hits").unwrap_or(0)
            - before.counter("sweep.cache_hits").unwrap_or(0);
        let misses = after.counter("sweep.cache_misses").unwrap_or(0)
            - before.counter("sweep.cache_misses").unwrap_or(0);
        assert_eq!(replay.cache_hits, spec.len());
        assert_eq!(
            (hits, misses),
            (spec.len() as u64, 0),
            "warm replay must report a 100% cache hit rate through telemetry"
        );
        println!("warm replay telemetry: {hits} hits, {misses} misses (100% hit rate)");
    }

    write_trajectory_or_exit(&report);
}

fn bench_with_trajectory(c: &mut Criterion) {
    bench_sweep_scaling(c);
    write_perf_trajectory();
    write_profile_if_enabled("sweep");
}

criterion_group!(benches, bench_with_trajectory);
criterion_main!(benches);
