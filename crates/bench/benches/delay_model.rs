//! Runtime cost of the delay estimators.
//!
//! The practical argument for the closed form inside an EDA flow: Eq. (9) is a
//! handful of floating-point operations, the two-pole analytic model needs a
//! root search, the exact Laplace-domain response needs dozens of complex
//! transcendental evaluations per time point, and the transient ladder
//! simulation needs thousands of linear solves. This bench quantifies that
//! hierarchy on one Table-1 operating point.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rlckit_bench::report::smoke_or;
use rlckit_circuit::ladder::{measure_step_delay, LadderSpec, SegmentStyle};
use rlckit_core::load::GateRlcLoad;
use rlckit_core::model::propagation_delay;
use rlckit_core::response::TwoPoleResponse;
use rlckit_interconnect::twoport::DrivenLine;
use rlckit_interconnect::DistributedLine;
use rlckit_units::{Capacitance, Inductance, Length, Resistance, Voltage};

fn operating_point() -> GateRlcLoad {
    GateRlcLoad::new(
        Resistance::from_ohms(1000.0),
        Inductance::from_nanohenries(10.0),
        Capacitance::from_picofarads(1.0),
        Resistance::from_ohms(500.0),
        Capacitance::from_picofarads(0.5),
    )
    .expect("valid operating point")
}

fn driven_line() -> DrivenLine {
    let line = DistributedLine::from_totals(
        Resistance::from_ohms(1000.0),
        Inductance::from_nanohenries(10.0),
        Capacitance::from_picofarads(1.0),
        Length::from_millimeters(10.0),
    )
    .expect("valid line");
    DrivenLine::new(line, Resistance::from_ohms(500.0), Capacitance::from_picofarads(0.5))
        .expect("valid terminations")
}

fn ladder_spec(segments: usize) -> LadderSpec {
    LadderSpec {
        total_resistance: Resistance::from_ohms(1000.0),
        total_inductance: Inductance::from_nanohenries(10.0),
        total_capacitance: Capacitance::from_picofarads(1.0),
        segments,
        style: SegmentStyle::Pi,
        driver_resistance: Resistance::from_ohms(500.0),
        load_capacitance: Capacitance::from_picofarads(0.5),
        supply: Voltage::from_volts(1.0),
    }
}

fn bench_delay_estimators(c: &mut Criterion) {
    let load = operating_point();
    let driven = driven_line();

    let mut group = c.benchmark_group("delay_estimators");
    group.sample_size(smoke_or(2, 10));
    group.bench_function("closed_form_eq9", |b| b.iter(|| propagation_delay(black_box(&load))));
    group.bench_function("two_pole_analytic", |b| {
        b.iter(|| TwoPoleResponse::of(black_box(&load)).delay_50().expect("crossing"))
    });
    group.bench_function("exact_laplace_two_port", |b| {
        b.iter(|| driven.delay_50().expect("crossing"))
    });
    let segments = smoke_or(10, 40);
    group.bench_function(format!("transient_ladder_simulation_{segments}_segments"), |b| {
        b.iter(|| measure_step_delay(black_box(&ladder_spec(segments))).expect("simulates"))
    });
    group.finish();
}

criterion_group!(benches, bench_delay_estimators);
criterion_main!(benches);
