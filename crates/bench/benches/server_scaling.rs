//! Daemon throughput and latency under a pattern-repeating workload.
//!
//! The point of `rlckit-server` is amortisation: a long-running process
//! keeps two cache layers warm — the result store over whole evaluated
//! cells and the factorization pattern cache underneath the sparse solver —
//! so repeated scenario evaluations stop paying for symbolic analysis,
//! numeric factorization, or the evaluation itself. This bench quantifies
//! that claim with a dependency-free load generator speaking the real wire
//! protocol over real TCP:
//!
//! * a **cold pass** of requests with *distinct* parameter values over the
//!   *same* MNA pattern (a fixed mesh, swept driver strengths) — every cell
//!   is a result-cache miss, but the pattern cache turns repeat
//!   factorizations into frozen-pivot refactorizations;
//! * a **warm pass** replaying the identical requests — every cell is a
//!   result-cache hit and the daemon is limited by parsing and I/O.
//!
//! Recorded per pass: requests/second, p50/p99 request latency, and the
//! cell cache-hit rate; plus the warm-over-cold speedup. The full run
//! asserts the warm pass is at least 5x faster (the acceptance bar);
//! smoke mode (`RLCKIT_BENCH_SMOKE`) shrinks the request count but emits
//! the same record names so `bench_check` can audit the writer.
//!
//! Run with `cargo bench -p rlckit-bench --bench server_scaling`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Instant;

use rlckit_bench::report::{
    smoke_mode, smoke_or, write_profile_if_enabled, write_trajectory_or_exit, PerfReport,
};
use rlckit_server::{serve_listener, Engine, ServerConfig};

/// Requests per pass; each expands to [`CELLS_PER_REQUEST`] mesh cells.
fn request_count() -> usize {
    smoke_or(6, 48)
}

const CELLS_PER_REQUEST: usize = 4;

/// One wire request: a fixed 10x10 power-mesh pattern, driver strengths
/// offset by the request index so every cold cell is a distinct scenario.
fn request_line(index: usize) -> String {
    let values: Vec<String> =
        (0..CELLS_PER_REQUEST).map(|c| format!("{}", 40 + index * CELLS_PER_REQUEST + c)).collect();
    format!(
        "{{\"id\":\"req-{index}\",\"evaluator\":\"mesh_delay\",\
         \"base\":{{\"mesh_rows\":10,\"mesh_cols\":10}},\
         \"axes\":[{{\"param\":\"driver_size\",\"values\":[{}]}}]}}",
        values.join(",")
    )
}

/// Client-side measurements for one pass over the request set.
struct PassMetrics {
    /// Per-request wall latencies in milliseconds, send-to-done.
    latencies_ms: Vec<f64>,
    /// Total pass wall time in seconds.
    elapsed_s: f64,
    /// Cells answered, and how many of those came from the result cache.
    cells: usize,
    cached: usize,
}

impl PassMetrics {
    fn requests_per_sec(&self) -> f64 {
        self.latencies_ms.len() as f64 / self.elapsed_s
    }

    fn percentile_ms(&self, q: f64) -> f64 {
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(f64::total_cmp);
        sorted[((sorted.len() - 1) as f64 * q).round() as usize]
    }

    fn hit_rate(&self) -> f64 {
        self.cached as f64 / self.cells.max(1) as f64
    }
}

/// Sends every request sequentially on one connection, timing each from the
/// write of its line to the receipt of its `done` trailer.
fn run_pass(addr: std::net::SocketAddr, requests: &[String]) -> PassMetrics {
    let stream = TcpStream::connect(addr).expect("daemon accepts");
    stream.set_nodelay(true).expect("nodelay sets");
    let mut writer = stream.try_clone().expect("stream clones");
    let mut reader = BufReader::new(stream);
    let mut metrics = PassMetrics { latencies_ms: Vec::new(), elapsed_s: 0.0, cells: 0, cached: 0 };
    let pass_start = Instant::now();
    let mut line = String::new();
    for request in requests {
        let start = Instant::now();
        writer.write_all(request.as_bytes()).expect("request writes");
        writer.write_all(b"\n").expect("request writes");
        loop {
            line.clear();
            assert!(reader.read_line(&mut line).expect("response reads") > 0, "daemon hung up");
            assert!(
                !line.starts_with("{\"type\":\"error\"")
                    && !line.starts_with("{\"type\":\"reject\""),
                "load generator request refused: {line}"
            );
            if line.starts_with("{\"type\":\"cell\"") {
                metrics.cells += 1;
                if line.contains("\"cached\":true") {
                    metrics.cached += 1;
                }
                assert!(!line.contains("\"error\":"), "cell failed: {line}");
            }
            if line.starts_with("{\"type\":\"done\"") {
                break;
            }
        }
        metrics.latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }
    metrics.elapsed_s = pass_start.elapsed().as_secs_f64();
    metrics
}

/// Cold pass then warm replay against one daemon; records the trajectory.
fn write_perf_trajectory() {
    let engine =
        Engine::new(ServerConfig { workers: 2, pattern_cache: true, ..ServerConfig::default() })
            .expect("engine starts");
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
    let addr = listener.local_addr().expect("bound address");
    let server = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || serve_listener(&engine, listener))
    };

    let requests: Vec<String> = (0..request_count()).map(request_line).collect();
    let cold = run_pass(addr, &requests);
    let warm = run_pass(addr, &requests);
    let speedup = warm.requests_per_sec() / cold.requests_per_sec();

    let mut report = PerfReport::new("server");
    report.push("cold/requests_per_sec", cold.requests_per_sec(), "req/s");
    report.push("cold/p50_ms", cold.percentile_ms(0.50), "ms");
    report.push("cold/p99_ms", cold.percentile_ms(0.99), "ms");
    report.push("cold/hit_rate", cold.hit_rate(), "ratio");
    report.push("warm/requests_per_sec", warm.requests_per_sec(), "req/s");
    report.push("warm/p50_ms", warm.percentile_ms(0.50), "ms");
    report.push("warm/p99_ms", warm.percentile_ms(0.99), "ms");
    report.push("warm/hit_rate", warm.hit_rate(), "ratio");
    report.push("warm/speedup", speedup, "x");
    println!(
        "cold: {:>7.1} req/s (p50 {:.2} ms, p99 {:.2} ms, hit rate {:.2})",
        cold.requests_per_sec(),
        cold.percentile_ms(0.50),
        cold.percentile_ms(0.99),
        cold.hit_rate(),
    );
    println!(
        "warm: {:>7.1} req/s (p50 {:.2} ms, p99 {:.2} ms, hit rate {:.2}) — {speedup:.1}x",
        warm.requests_per_sec(),
        warm.percentile_ms(0.50),
        warm.percentile_ms(0.99),
        warm.hit_rate(),
    );

    // Every cold cell is a distinct scenario (miss); every warm cell replays.
    assert_eq!(cold.cached, 0, "cold pass must not see result-cache hits");
    assert_eq!(warm.cached, warm.cells, "warm pass must be fully cached");
    if !smoke_mode() {
        // The acceptance bar: a warm daemon answers a pattern-repeating
        // workload at least 5x faster than a cold one.
        assert!(speedup >= 5.0, "warm speedup {speedup:.2}x is below the 5x acceptance bar");
    }

    // Drain: a shutdown op stops the accept loop, then the pool joins.
    let mut control = TcpStream::connect(addr).expect("daemon accepts");
    control.write_all(b"{\"op\":\"shutdown\"}\n").expect("shutdown sends");
    let mut reply = String::new();
    BufReader::new(control).read_line(&mut reply).expect("shutdown acknowledged");
    server.join().expect("accept loop joins").expect("accept loop clean");
    engine.join();

    write_trajectory_or_exit(&report);
}

/// Criterion micro-benchmark: one single-point request through the full
/// parse/validate/evaluate/render path over an in-memory stream.
fn bench_server_round_trip(c: &mut Criterion) {
    let engine =
        Engine::new(ServerConfig { workers: 1, pattern_cache: false, ..ServerConfig::default() })
            .expect("engine starts");
    let request = b"{\"id\":\"micro\",\"evaluator\":\"delay_model\"}\n";
    let mut group = c.benchmark_group("server_scaling");
    group.sample_size(smoke_or(2, 10));
    group.bench_function("round_trip/delay_model", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(256);
            engine.serve_stream(&request[..], &mut out).expect("request serves");
            out
        })
    });
    group.finish();
}

fn bench_with_trajectory(c: &mut Criterion) {
    bench_server_round_trip(c);
    write_perf_trajectory();
    // Under RLCKIT_PROFILE=1 this lands PROFILE_server.json, which CI audits
    // for the daemon spans (server.request / server.cell) and the
    // cache-hit/miss counters of both passes.
    write_profile_if_enabled("server");
}

criterion_group!(benches, bench_with_trajectory);
criterion_main!(benches);
