//! Sparse vs dense (and banded) solver scaling on branching RLC trees.
//!
//! Tree-shaped MNA systems are the workload the banded kernel cannot help
//! with: under any ordering their bandwidth grows with the fan-out, so band
//! storage degenerates toward a dense matrix while the actual pattern stays
//! `O(n)` sparse. This bench builds symmetric routing trees of growing size,
//! times a fixed 200-step transient run under each forced backend, and
//! writes the measurements — including the dense/sparse speedup per size —
//! into the perf trajectory as `BENCH_tree.json`.
//!
//! The dense and banded kernels are only swept while the MNA dimension stays
//! below [`FULL_KERNEL_DIM_LIMIT`]: beyond that a single dense factorisation
//! takes many seconds, which is exactly the point.
//!
//! Run with `cargo bench -p rlckit-bench --bench tree_scaling`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use rlckit_bench::report::{smoke_or, PerfReport};
use rlckit_circuit::mna::MnaSystem;
use rlckit_circuit::transient::{run_transient, TransientOptions};
use rlckit_circuit::tree::TreeSpec;
use rlckit_circuit::SolverBackend;
use rlckit_interconnect::{DistributedLine, RoutingTree};
use rlckit_units::{
    Capacitance, CapacitancePerLength, InductancePerLength, Length, Resistance,
    ResistancePerLength, Time, Voltage,
};

/// Tree shapes swept: `(levels, fanout, segments per branch)`. Smoke mode
/// (`RLCKIT_BENCH_SMOKE`) keeps the two cheapest shapes, whose record labels
/// are a strict subset of the full run's.
fn shapes() -> Vec<(usize, usize, usize)> {
    smoke_or(
        vec![(3, 2, 4), (3, 3, 8)],
        vec![(3, 2, 4), (3, 3, 8), (4, 3, 9), (4, 4, 8), (5, 4, 8)],
    )
}

/// Largest MNA dimension the dense and banded kernels are still timed at.
const FULL_KERNEL_DIM_LIMIT: usize = 1300;

/// The paper's Fig. 1 electrical regime as the root-to-sink path: 10 mm of
/// 50 Ω/mm, 1 nH/mm, 0.1 fF/µm wire behind a 250 Ω driver.
fn tree_spec(levels: usize, fanout: usize, segments: usize) -> TreeSpec {
    let path = DistributedLine::new(
        ResistancePerLength::from_ohms_per_millimeter(50.0),
        InductancePerLength::from_nanohenries_per_millimeter(1.0),
        CapacitancePerLength::from_femtofarads_per_micrometer(0.1),
        Length::from_millimeters(10.0),
    )
    .expect("paper line parameters are valid");
    let tree = RoutingTree::symmetric(&path, levels, fanout, Capacitance::from_femtofarads(50.0))
        .expect("bench tree shapes are valid");
    tree.to_tree_spec(Resistance::from_ohms(250.0), Voltage::from_volts(1.0), segments)
        .expect("bench trees lower to circuit specs")
}

/// MNA dimension of a shape — the "node count" the records are labelled by.
fn mna_dim(spec: &TreeSpec) -> usize {
    let net = spec.build().expect("bench tree builds");
    MnaSystem::build(&net.circuit).expect("bench tree assembles").dim()
}

/// A fixed 200-step horizon so every size pays one factorisation plus the
/// same number of substitutions.
fn options(backend: SolverBackend) -> TransientOptions {
    TransientOptions::new(Time::from_picoseconds(200.0), Time::from_picoseconds(1.0))
        .with_backend(backend)
}

fn time_one(spec: &TreeSpec, backend: SolverBackend) -> f64 {
    let net = spec.build().expect("bench tree builds");
    let opts = options(backend);
    let start = Instant::now();
    let result = run_transient(black_box(&net.circuit), &opts).expect("simulates");
    let elapsed = start.elapsed().as_secs_f64();
    black_box(result.len());
    elapsed
}

fn bench_tree_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_scaling");
    group.sample_size(smoke_or(2, 10));
    for (levels, fanout, segments) in shapes() {
        let spec = tree_spec(levels, fanout, segments);
        let dim = mna_dim(&spec);
        group.bench_with_input(BenchmarkId::new("sparse", dim), &spec, |b, spec| {
            let net = spec.build().expect("bench tree builds");
            let opts = options(SolverBackend::Sparse);
            b.iter(|| run_transient(black_box(&net.circuit), &opts).expect("simulates"))
        });
        if dim <= FULL_KERNEL_DIM_LIMIT {
            group.bench_with_input(BenchmarkId::new("dense", dim), &spec, |b, spec| {
                let net = spec.build().expect("bench tree builds");
                let opts = options(SolverBackend::Dense);
                b.iter(|| run_transient(black_box(&net.circuit), &opts).expect("simulates"))
            });
        }
    }
    group.finish();
}

/// One timed pass per configuration, written to `BENCH_tree.json`.
///
/// Criterion's own numbers stay on stdout; this single-shot sweep is what the
/// perf trajectory records.
fn write_perf_trajectory() {
    let mut report = PerfReport::new("tree");
    for (levels, fanout, segments) in shapes() {
        let spec = tree_spec(levels, fanout, segments);
        let dim = mna_dim(&spec);
        report.push(format!("nodes/{dim}"), dim as f64, "count");
        report.push(format!("branches/{dim}"), spec.branches.len() as f64, "count");
        let sparse = time_one(&spec, SolverBackend::Sparse);
        report.push(format!("sparse/{dim}"), sparse, "seconds");
        if dim <= FULL_KERNEL_DIM_LIMIT {
            let dense = time_one(&spec, SolverBackend::Dense);
            let banded = time_one(&spec, SolverBackend::Banded);
            let speedup = dense / sparse;
            report.push(format!("dense/{dim}"), dense, "seconds");
            report.push(format!("banded/{dim}"), banded, "seconds");
            report.push(format!("speedup/{dim}"), speedup, "x");
            report.push(format!("speedup_vs_banded/{dim}"), banded / sparse, "x");
            println!(
                "{dim:>5} unknowns ({levels} levels x {fanout} fanout): sparse {sparse:.4} s, \
                 dense {dense:.4} s, banded {banded:.4} s, dense/sparse speedup {speedup:.1}x"
            );
        } else {
            println!(
                "{dim:>5} unknowns ({levels} levels x {fanout} fanout): sparse {sparse:.4} s \
                 (dense and banded skipped)"
            );
        }
    }
    // The bench process runs with the package directory as CWD; anchor the
    // trajectory file at the workspace root where the other BENCH_*.json live.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    match report.write(&root) {
        Ok(path) => println!("perf trajectory written to {}", path.display()),
        Err(e) => eprintln!("could not write perf trajectory: {e}"),
    }
}

fn bench_with_trajectory(c: &mut Criterion) {
    bench_tree_scaling(c);
    write_perf_trajectory();
}

criterion_group!(benches, bench_with_trajectory);
criterion_main!(benches);
