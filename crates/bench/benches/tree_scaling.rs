//! Sparse vs dense (and banded) solver scaling on branching RLC trees,
//! plus the power-grid mesh workload that scales the sparse kernel to
//! 10⁵⁺ unknowns.
//!
//! Tree-shaped MNA systems are the workload the banded kernel cannot help
//! with: under any ordering their bandwidth grows with the fan-out, so band
//! storage degenerates toward a dense matrix while the actual pattern stays
//! `O(n)` sparse. This bench builds symmetric routing trees of growing size,
//! times a fixed 200-step transient run under each forced backend, and
//! writes the measurements — including the dense/sparse speedup per size —
//! into the perf trajectory as `BENCH_tree.json`.
//!
//! Meshes go where trees cannot: a regular grid has no fill-free elimination
//! order, so it exercises the AMD ordering quality and the value-only
//! refactorisation path for real. The mesh sweep factors each grid cold
//! (symbolic analysis + pivoting Gilbert–Peierls), refactors it warm
//! (frozen pattern, new values — the per-timestep/per-frequency operation),
//! records the `refactor_speedup` ratio, and runs a short bounded-step
//! transient at every size up to a ≥100 000-unknown grid in the full run.
//! Every size also records its fill ratio `(nnz(L)+nnz(U))/nnz(A)` so
//! ordering-quality regressions show up in the trajectory, not just time.
//!
//! The dense and banded kernels are only swept while the MNA dimension stays
//! below [`FULL_KERNEL_DIM_LIMIT`]: beyond that a single dense factorisation
//! takes many seconds, which is exactly the point.
//!
//! Run with `cargo bench -p rlckit-bench --bench tree_scaling`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use rlckit_bench::report::{
    smoke_or, write_profile_if_enabled, write_trajectory_or_exit, PerfReport,
};
use rlckit_circuit::mesh::MeshSpec;
use rlckit_circuit::mna::MnaSystem;
use rlckit_circuit::netlist::Circuit;
use rlckit_circuit::transient::{run_transient, TransientOptions};
use rlckit_circuit::tree::TreeSpec;
use rlckit_circuit::SolverBackend;
use rlckit_interconnect::{DistributedLine, RoutingTree};
use rlckit_numeric::sparse::SparseLuFactor;
use rlckit_units::{
    Capacitance, CapacitancePerLength, InductancePerLength, Length, Resistance,
    ResistancePerLength, Time, Voltage,
};

/// Tree shapes swept: `(levels, fanout, segments per branch)`. Smoke mode
/// (`RLCKIT_BENCH_SMOKE`) keeps the two cheapest shapes, whose record labels
/// are a strict subset of the full run's.
fn shapes() -> Vec<(usize, usize, usize)> {
    smoke_or(
        vec![(3, 2, 4), (3, 3, 8)],
        vec![(3, 2, 4), (3, 3, 8), (4, 3, 9), (4, 4, 8), (5, 4, 8)],
    )
}

/// Mesh shapes swept: `(rows, cols)` power-grid style RC grids. The full
/// sweep tops out past 100 000 unknowns (317² junctions); smoke mode keeps
/// two cheap grids whose labels are a subset of the full run's while still
/// exercising every mesh record family.
fn mesh_shapes() -> Vec<(usize, usize)> {
    smoke_or(vec![(8, 8), (24, 24)], vec![(8, 8), (24, 24), (100, 100), (180, 180), (317, 317)])
}

/// Largest MNA dimension the dense and banded kernels are still timed at.
const FULL_KERNEL_DIM_LIMIT: usize = 1300;

/// Transient steps run per mesh size: enough substitutions to dominate a
/// single factorisation without `O(steps·n)` state storage exploding at
/// the 100 000-unknown grid.
const MESH_TRANSIENT_STEPS: u32 = 50;

/// The paper's Fig. 1 electrical regime as the root-to-sink path: 10 mm of
/// 50 Ω/mm, 1 nH/mm, 0.1 fF/µm wire behind a 250 Ω driver.
fn tree_spec(levels: usize, fanout: usize, segments: usize) -> TreeSpec {
    let path = DistributedLine::new(
        ResistancePerLength::from_ohms_per_millimeter(50.0),
        InductancePerLength::from_nanohenries_per_millimeter(1.0),
        CapacitancePerLength::from_femtofarads_per_micrometer(0.1),
        Length::from_millimeters(10.0),
    )
    .expect("paper line parameters are valid");
    let tree = RoutingTree::symmetric(&path, levels, fanout, Capacitance::from_femtofarads(50.0))
        .expect("bench tree shapes are valid");
    tree.to_tree_spec(Resistance::from_ohms(250.0), Voltage::from_volts(1.0), segments)
        .expect("bench trees lower to circuit specs")
}

/// A power-grid style RC mesh: 2 Ω segments, 10 fF junctions, a 10 Ω pad.
fn mesh_spec(rows: usize, cols: usize) -> MeshSpec {
    MeshSpec::new(
        rows,
        cols,
        Resistance::from_ohms(2.0),
        Capacitance::from_femtofarads(10.0),
        Resistance::from_ohms(10.0),
    )
}

/// MNA dimension of a circuit — the "node count" the records are labelled by.
fn mna_dim(circuit: &Circuit) -> usize {
    MnaSystem::build(circuit).expect("bench circuit assembles").dim()
}

/// A fixed 200-step horizon so every size pays one factorisation plus the
/// same number of substitutions.
fn options(backend: SolverBackend) -> TransientOptions {
    TransientOptions::new(Time::from_picoseconds(200.0), Time::from_picoseconds(1.0))
        .with_backend(backend)
}

fn time_one(spec: &TreeSpec, backend: SolverBackend) -> f64 {
    let net = spec.build().expect("bench tree builds");
    let opts = options(backend);
    let start = Instant::now();
    let result = run_transient(black_box(&net.circuit), &opts).expect("simulates");
    let elapsed = start.elapsed().as_secs_f64();
    black_box(result.len());
    elapsed
}

fn bench_tree_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_scaling");
    group.sample_size(smoke_or(2, 10));
    for (levels, fanout, segments) in shapes() {
        let spec = tree_spec(levels, fanout, segments);
        let dim = mna_dim(&spec.build().expect("bench tree builds").circuit);
        group.bench_with_input(BenchmarkId::new("sparse", dim), &spec, |b, spec| {
            let net = spec.build().expect("bench tree builds");
            let opts = options(SolverBackend::Sparse);
            b.iter(|| run_transient(black_box(&net.circuit), &opts).expect("simulates"))
        });
        if dim <= FULL_KERNEL_DIM_LIMIT {
            group.bench_with_input(BenchmarkId::new("dense", dim), &spec, |b, spec| {
                let net = spec.build().expect("bench tree builds");
                let opts = options(SolverBackend::Dense);
                b.iter(|| run_transient(black_box(&net.circuit), &opts).expect("simulates"))
            });
        }
    }
    group.finish();
}

/// Cold-factor, warm-refactor and fill statistics of one assembled system.
struct KernelStats {
    /// One pivoting factorisation from the symbolic analysis, seconds.
    factor: f64,
    /// One value-only refactorisation of the frozen pattern, seconds
    /// (best of three, so scheduler noise cannot fake a slowdown).
    refactor: f64,
    /// `(nnz(L) + nnz(U)) / nnz(A)`.
    fill_ratio: f64,
    /// `nnz(L)` (unit diagonal included).
    l_nnz: f64,
}

/// Times the sparse kernel directly on a circuit's transient-step matrix
/// `G + C/dt`, then refactors the same pattern with a different timestep
/// scalar — the exact warm operation a timestep change or AC sweep pays.
fn kernel_stats(circuit: &Circuit) -> KernelStats {
    let mna = MnaSystem::build(circuit).expect("bench circuit assembles");
    let dt = 1e-12;
    let a = mna.assemble_csc_real(1.0, 1.0 / dt);
    let start = Instant::now();
    let mut factor =
        SparseLuFactor::factor(&a, mna.sparse_symbolic()).expect("bench system factors");
    let factor_time = start.elapsed().as_secs_f64();
    let fill_ratio = (factor.l_nnz() + factor.u_nnz()) as f64 / a.nnz() as f64;
    let l_nnz = factor.l_nnz() as f64;
    let a2 = mna.assemble_csc_real(1.0, 2.0 / dt);
    let mut refactor_time = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        factor.refactor(black_box(&a2)).expect("bench system refactors");
        refactor_time = refactor_time.min(start.elapsed().as_secs_f64());
    }
    black_box(factor.solve(&vec![1.0; mna.dim()]));
    KernelStats { factor: factor_time, refactor: refactor_time, fill_ratio, l_nnz }
}

/// One timed pass per configuration, written to `BENCH_tree.json`.
///
/// Criterion's own numbers stay on stdout; this single-shot sweep is what the
/// perf trajectory records.
fn write_perf_trajectory() {
    let mut report = PerfReport::new("tree");
    for (levels, fanout, segments) in shapes() {
        let spec = tree_spec(levels, fanout, segments);
        let net = spec.build().expect("bench tree builds");
        let dim = mna_dim(&net.circuit);
        report.push(format!("nodes/{dim}"), dim as f64, "count");
        report.push(format!("branches/{dim}"), spec.branches.len() as f64, "count");
        let stats = kernel_stats(&net.circuit);
        report.push(format!("fill_ratio/{dim}"), stats.fill_ratio, "x");
        report.push(format!("l_nnz/{dim}"), stats.l_nnz, "count");
        let sparse = time_one(&spec, SolverBackend::Sparse);
        report.push(format!("sparse/{dim}"), sparse, "seconds");
        if dim <= FULL_KERNEL_DIM_LIMIT {
            let dense = time_one(&spec, SolverBackend::Dense);
            let banded = time_one(&spec, SolverBackend::Banded);
            let speedup = dense / sparse;
            report.push(format!("dense/{dim}"), dense, "seconds");
            report.push(format!("banded/{dim}"), banded, "seconds");
            report.push(format!("speedup/{dim}"), speedup, "x");
            report.push(format!("speedup_vs_banded/{dim}"), banded / sparse, "x");
            println!(
                "{dim:>6} unknowns ({levels} levels x {fanout} fanout): sparse {sparse:.4} s, \
                 dense {dense:.4} s, banded {banded:.4} s, dense/sparse speedup {speedup:.1}x"
            );
        } else {
            println!(
                "{dim:>6} unknowns ({levels} levels x {fanout} fanout): sparse {sparse:.4} s \
                 (dense and banded skipped)"
            );
        }
    }
    let mut largest_speedup = None;
    for (rows, cols) in mesh_shapes() {
        let spec = mesh_spec(rows, cols);
        let net = spec.build().expect("bench mesh builds");
        let dim = mna_dim(&net.circuit);
        report.push(format!("mesh_nodes/{dim}"), dim as f64, "count");
        let stats = kernel_stats(&net.circuit);
        let speedup = stats.factor / stats.refactor;
        report.push(format!("mesh_factor/{dim}"), stats.factor, "seconds");
        report.push(format!("mesh_refactor/{dim}"), stats.refactor, "seconds");
        report.push(format!("refactor_speedup/{dim}"), speedup, "x");
        report.push(format!("mesh_fill_ratio/{dim}"), stats.fill_ratio, "x");
        report.push(format!("mesh_l_nnz/{dim}"), stats.l_nnz, "count");
        // A short bounded-step transient: one factorisation plus
        // `MESH_TRANSIENT_STEPS` substitutions, sparse-forced.
        let step = Time::from_picoseconds(1.0);
        let opts = TransientOptions::new(step * f64::from(MESH_TRANSIENT_STEPS), step)
            .with_backend(SolverBackend::Sparse);
        let start = Instant::now();
        let result = run_transient(black_box(&net.circuit), &opts).expect("mesh simulates");
        let transient = start.elapsed().as_secs_f64();
        black_box(result.len());
        report.push(format!("mesh_transient/{dim}"), transient, "seconds");
        largest_speedup = Some(speedup);
        println!(
            "{dim:>6} unknowns ({rows}x{cols} mesh): factor {:.4} s, refactor {:.4} s \
             (speedup {speedup:.1}x), fill ratio {:.2}, {MESH_TRANSIENT_STEPS}-step transient \
             {transient:.4} s",
            stats.factor, stats.refactor, stats.fill_ratio
        );
    }
    // The warm path must stay clearly ahead of a cold factorisation at the
    // largest grid of the sweep — the whole point of the refactor path.
    let speedup = largest_speedup.expect("mesh sweep is never empty");
    assert!(
        speedup >= 2.0,
        "value-only refactorisation must be at least 2x faster than a cold \
         factorisation at the largest mesh (got {speedup:.2}x)"
    );
    write_trajectory_or_exit(&report);
}

/// Under `RLCKIT_PROFILE=1` only: exercise the sweep executor's cache twice
/// (one cold pass, one fully warm replay) so the emitted `PROFILE_tree.json`
/// also carries the `sweep.cache_hits` / `sweep.cache_misses` counters next
/// to the solver and transient spans this bench produces anyway.
fn profile_sweep_cache() {
    if !rlckit_telemetry::enabled() {
        return;
    }
    use rlckit_sweep::{
        eval::DelayModelEvaluator,
        exec::{run_sweep_cached, SweepOptions},
        scenario::{Param, Scenario},
        spec::{Axis, SweepSpec},
    };
    let spec = SweepSpec::new(Scenario::default())
        .axis(Axis::new("length_mm", [5.0, 10.0].map(Param::LineLengthMm)));
    let mut cache = rlckit_sweep::cache::SweepCache::in_memory();
    let opts = SweepOptions::with_threads(2);
    let cold = run_sweep_cached(&spec, &DelayModelEvaluator, &opts, &mut cache)
        .expect("profile sweep runs");
    let warm = run_sweep_cached(&spec, &DelayModelEvaluator, &opts, &mut cache)
        .expect("profile sweep replays");
    assert_eq!(cold.computed, spec.len());
    assert_eq!(warm.cache_hits, spec.len());
}

fn bench_with_trajectory(c: &mut Criterion) {
    bench_tree_scaling(c);
    write_perf_trajectory();
    profile_sweep_cache();
    write_profile_if_enabled("tree");
}

criterion_group!(benches, bench_with_trajectory);
criterion_main!(benches);
