//! High-level repeater design for physical lines.
//!
//! [`RepeaterDesigner`] takes a [`DistributedLine`] in a [`Technology`] and
//! produces a physically realisable design: an **integer** number of sections
//! (the continuous optimum rounded to the better of floor/ceil, never below
//! one) with the buffer size re-optimised for that integer count. Three
//! strategies are offered so the experiments can compare them directly.

use rlckit_interconnect::{DistributedLine, Technology};
use rlckit_units::{Area, Energy, Length, Time};

use crate::error::RepeaterError;
use crate::numerical::optimize_size_for_sections;
use crate::system::{RepeaterDesign, RepeaterProblem};

/// How the repeater design is derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DesignStrategy {
    /// The paper's closed-form RLC optimum (Eqs. 14–15) — the default.
    #[default]
    RlcClosedForm,
    /// The Bakoglu RC optimum (Eq. 11), ignoring inductance.
    RcClosedForm,
    /// Direct numerical minimisation of the total delay.
    Numerical,
}

/// A physically realisable repeater design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacedRepeaterDesign {
    /// Strategy used to derive the design.
    pub strategy: DesignStrategy,
    /// Repeater size as a multiple of the minimum buffer.
    pub size: f64,
    /// Integer number of sections (= number of repeaters).
    pub sections: usize,
    /// Length of each section.
    pub section_length: Length,
    /// Estimated total propagation delay.
    pub total_delay: Time,
    /// Total repeater silicon area.
    pub repeater_area: Area,
    /// Switching energy per transition of line plus repeaters.
    pub switching_energy: Energy,
}

/// Designs repeaters for one line in one technology.
#[derive(Debug, Clone, Copy)]
pub struct RepeaterDesigner<'a> {
    line: &'a DistributedLine,
    technology: &'a Technology,
}

impl<'a> RepeaterDesigner<'a> {
    /// Creates a designer for the given line and technology.
    pub fn new(line: &'a DistributedLine, technology: &'a Technology) -> Self {
        Self { line, technology }
    }

    /// The underlying continuous repeater problem.
    ///
    /// # Errors
    ///
    /// Returns [`RepeaterError::InvalidParameter`] if the line or technology
    /// parameters are degenerate.
    pub fn problem(&self) -> Result<RepeaterProblem, RepeaterError> {
        RepeaterProblem::for_line(self.line, self.technology)
    }

    /// Produces an integer-section design with the given strategy.
    ///
    /// The continuous optimum `k*` is rounded by evaluating both `floor(k*)`
    /// and `ceil(k*)` (clamped to at least 1) with the buffer size re-optimised
    /// for each, and keeping the faster one.
    ///
    /// # Errors
    ///
    /// Returns [`RepeaterError`] if the problem is degenerate or the
    /// size re-optimisation fails.
    pub fn design(&self, strategy: DesignStrategy) -> Result<PlacedRepeaterDesign, RepeaterError> {
        let problem = self.problem()?;
        let continuous: RepeaterDesign = match strategy {
            DesignStrategy::RlcClosedForm => problem.rlc_optimum(),
            DesignStrategy::RcClosedForm => problem.bakoglu_optimum(),
            DesignStrategy::Numerical => crate::numerical::optimize(&problem)?.design,
        };

        let k_low = continuous.sections.floor().max(1.0);
        let k_high = continuous.sections.ceil().max(1.0);
        let mut best: Option<RepeaterDesign> = None;
        let mut k_seen = Vec::new();
        for k in [k_low, k_high] {
            if k_seen.contains(&(k as u64)) {
                continue;
            }
            k_seen.push(k as u64);
            let candidate = match strategy {
                // The RC strategy keeps the RC-formula size to represent an
                // RC-only flow faithfully; the others re-optimise the size.
                DesignStrategy::RcClosedForm => problem.design(continuous.size, k)?,
                _ => optimize_size_for_sections(&problem, k)?,
            };
            let better = match &best {
                None => true,
                Some(b) => candidate.total_delay < b.total_delay,
            };
            if better {
                best = Some(candidate);
            }
        }
        let chosen = best.expect("at least one candidate section count is evaluated");

        let sections = chosen.sections.round().max(1.0) as usize;
        Ok(PlacedRepeaterDesign {
            strategy,
            size: chosen.size,
            sections,
            section_length: self.line.length() / sections as f64,
            total_delay: chosen.total_delay,
            repeater_area: problem.repeater_area(&chosen),
            switching_energy: problem.switching_energy(&chosen),
        })
    }

    /// Convenience: the default (RLC closed-form) design.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RepeaterDesigner::design`].
    pub fn design_default(&self) -> Result<PlacedRepeaterDesign, RepeaterError> {
        self.design(DesignStrategy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_units::Length;

    fn designer_for(
        mm: f64,
        tech: &Technology,
        wire: rlckit_interconnect::technology::WireClass,
    ) -> (DistributedLine, Technology) {
        let line = wire.line(Length::from_millimeters(mm)).unwrap();
        (line, *tech)
    }

    #[test]
    fn default_design_is_rlc_closed_form() {
        let tech = Technology::quarter_micron();
        let (line, tech) = designer_for(50.0, &tech, Technology::quarter_micron().global_wire);
        let designer = RepeaterDesigner::new(&line, &tech);
        let d = designer.design_default().unwrap();
        assert_eq!(d.strategy, DesignStrategy::RlcClosedForm);
        assert!(d.sections >= 1);
        assert!(d.size > 1.0);
        assert!(d.total_delay.seconds() > 0.0);
        assert!(
            (d.section_length.meters() * d.sections as f64 - line.length().meters()).abs() < 1e-12
        );
    }

    #[test]
    fn integer_rounding_never_beats_the_continuous_optimum_by_much() {
        let tech = Technology::quarter_micron();
        let (line, tech) =
            designer_for(10.0, &tech, Technology::quarter_micron().intermediate_wire);
        let designer = RepeaterDesigner::new(&line, &tech);
        let placed = designer.design(DesignStrategy::Numerical).unwrap();
        let continuous = crate::numerical::optimize(&designer.problem().unwrap()).unwrap();
        let ratio = placed.total_delay.seconds() / continuous.design.total_delay.seconds();
        assert!((0.999..1.2).contains(&ratio), "integer design is {ratio}× the continuous optimum");
    }

    #[test]
    fn rc_strategy_is_never_faster_than_rlc_strategy() {
        let tech = Technology::quarter_micron();
        for mm in [20.0, 50.0] {
            let (line, tech) = designer_for(mm, &tech, Technology::quarter_micron().global_wire);
            let designer = RepeaterDesigner::new(&line, &tech);
            let rc = designer.design(DesignStrategy::RcClosedForm).unwrap();
            let rlc = designer.design(DesignStrategy::RlcClosedForm).unwrap();
            assert!(
                rc.total_delay.seconds() >= rlc.total_delay.seconds() * 0.999,
                "RC design faster than RLC design on a {mm} mm global wire"
            );
            assert!(rc.repeater_area.square_meters() >= rlc.repeater_area.square_meters());
        }
    }

    #[test]
    fn numerical_and_closed_form_strategies_agree_closely() {
        let tech = Technology::quarter_micron();
        let (line, tech) =
            designer_for(30.0, &tech, Technology::quarter_micron().intermediate_wire);
        let designer = RepeaterDesigner::new(&line, &tech);
        let closed = designer.design(DesignStrategy::RlcClosedForm).unwrap();
        let numerical = designer.design(DesignStrategy::Numerical).unwrap();
        let diff = (closed.total_delay.seconds() - numerical.total_delay.seconds()).abs()
            / numerical.total_delay.seconds();
        assert!(diff < 0.02, "strategies differ by {diff}");
    }

    #[test]
    fn resistive_lines_get_more_repeaters_than_inductive_lines() {
        let tech = Technology::quarter_micron();
        let (global, t1) = designer_for(30.0, &tech, Technology::quarter_micron().global_wire);
        let (intermediate, t2) =
            designer_for(30.0, &tech, Technology::quarter_micron().intermediate_wire);
        let d_global = RepeaterDesigner::new(&global, &t1).design_default().unwrap();
        let d_intermediate = RepeaterDesigner::new(&intermediate, &t2).design_default().unwrap();
        assert!(d_intermediate.sections > d_global.sections);
    }
}
