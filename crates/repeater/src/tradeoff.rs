//! Delay / area / energy trade-offs for repeater systems.
//!
//! The paper optimises for delay alone; its reference \[10\] (Adler & Friedman)
//! studies how much area and power can be recovered by backing off slightly
//! from the delay-optimal point. This module provides that extension on top of
//! the RLC-aware machinery: the Pareto front of repeated-line designs over the
//! number of sections, and a "cheapest design within a delay budget" query —
//! the form in which a physical-design flow actually consumes repeater
//! insertion.

use rlckit_units::{Area, Energy, Time};

use crate::error::RepeaterError;
use crate::numerical::optimize_size_for_sections;
use crate::system::RepeaterProblem;

/// One point on the delay/area/energy trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// Integer number of sections (repeaters).
    pub sections: usize,
    /// Repeater size (multiple of the minimum buffer), re-optimised for this
    /// section count.
    pub size: f64,
    /// Total propagation delay at this point.
    pub total_delay: Time,
    /// Total repeater area at this point.
    pub repeater_area: Area,
    /// Switching energy per transition (line + repeaters) at this point.
    pub switching_energy: Energy,
}

/// Sweeps the number of sections from 1 to `max_sections`, re-optimising the
/// repeater size for each count, and returns one [`TradeoffPoint`] per count.
///
/// The returned points trace the delay/area trade-off: small `k` is cheap but
/// (for resistive lines) slow, large `k` wastes area and — on inductive lines —
/// eventually delay as well.
///
/// # Errors
///
/// Returns [`RepeaterError::InvalidParameter`] if `max_sections` is zero, and
/// propagates optimisation failures.
pub fn sections_sweep(
    problem: &RepeaterProblem,
    max_sections: usize,
) -> Result<Vec<TradeoffPoint>, RepeaterError> {
    if max_sections == 0 {
        return Err(RepeaterError::InvalidParameter { what: "maximum section count", value: 0.0 });
    }
    let mut points = Vec::with_capacity(max_sections);
    for k in 1..=max_sections {
        let design = optimize_size_for_sections(problem, k as f64)?;
        points.push(TradeoffPoint {
            sections: k,
            size: design.size,
            total_delay: design.total_delay,
            repeater_area: problem.repeater_area(&design),
            switching_energy: problem.switching_energy(&design),
        });
    }
    Ok(points)
}

/// Finds the design with the smallest repeater area whose delay is within
/// `slack_percent` of the best delay achievable over the swept section counts.
///
/// This is the Adler–Friedman-style question "how much area/power does one
/// delay per cent buy?", answered with the RLC-aware section delay model.
///
/// # Errors
///
/// Returns [`RepeaterError::InvalidParameter`] for a negative slack or zero
/// `max_sections`, and propagates optimisation failures.
pub fn cheapest_within_slack(
    problem: &RepeaterProblem,
    max_sections: usize,
    slack_percent: f64,
) -> Result<TradeoffPoint, RepeaterError> {
    if !(slack_percent >= 0.0) || !slack_percent.is_finite() {
        return Err(RepeaterError::InvalidParameter {
            what: "delay slack percent",
            value: slack_percent,
        });
    }
    let points = sections_sweep(problem, max_sections)?;
    let best_delay = points.iter().map(|p| p.total_delay.seconds()).fold(f64::INFINITY, f64::min);
    let budget = best_delay * (1.0 + slack_percent / 100.0);
    let cheapest = points
        .into_iter()
        .filter(|p| p.total_delay.seconds() <= budget)
        .min_by(|a, b| {
            a.repeater_area
                .square_meters()
                .partial_cmp(&b.repeater_area.square_meters())
                .expect("finite areas")
        })
        .expect("at least the delay-optimal point satisfies the budget");
    Ok(cheapest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_interconnect::Technology;
    use rlckit_units::Length;

    fn resistive_problem() -> RepeaterProblem {
        let tech = Technology::quarter_micron();
        let line = tech.intermediate_wire.line(Length::from_millimeters(20.0)).unwrap();
        RepeaterProblem::for_line(&line, &tech).unwrap()
    }

    fn inductive_problem() -> RepeaterProblem {
        let tech = Technology::quarter_micron();
        let line = tech.global_wire.line(Length::from_millimeters(50.0)).unwrap();
        RepeaterProblem::for_line(&line, &tech).unwrap()
    }

    #[test]
    fn sweep_produces_one_point_per_section_count() {
        let p = resistive_problem();
        let points = sections_sweep(&p, 8).unwrap();
        assert_eq!(points.len(), 8);
        for (i, point) in points.iter().enumerate() {
            assert_eq!(point.sections, i + 1);
            assert!(point.size > 0.0);
            assert!(point.total_delay.seconds() > 0.0);
        }
        // Area grows with the number of sections (roughly h·k·Amin with h ~ constant).
        assert!(points[7].repeater_area.square_meters() > points[0].repeater_area.square_meters());
        assert!(sections_sweep(&p, 0).is_err());
    }

    #[test]
    fn delay_curve_has_an_interior_minimum_for_resistive_lines() {
        // A long resistive line wants several repeaters: delay at k=1 and at the
        // far end of the sweep both exceed the minimum in between.
        let p = resistive_problem();
        let points = sections_sweep(&p, 12).unwrap();
        let delays: Vec<f64> = points.iter().map(|p| p.total_delay.seconds()).collect();
        let min = delays.iter().cloned().fold(f64::INFINITY, f64::min);
        let argmin = delays.iter().position(|&d| d == min).unwrap();
        assert!(argmin > 0, "optimum should need more than one section");
        assert!(argmin < delays.len() - 1, "optimum should not be at the sweep edge");
        // The continuous closed form agrees with the discrete sweep's argmin ±1.
        let continuous = p.rlc_optimum().sections;
        assert!((continuous - (argmin + 1) as f64).abs() <= 1.0);
    }

    #[test]
    fn inductive_lines_prefer_few_sections() {
        let p = inductive_problem();
        let points = sections_sweep(&p, 8).unwrap();
        let best = points
            .iter()
            .min_by(|a, b| a.total_delay.seconds().partial_cmp(&b.total_delay.seconds()).unwrap())
            .unwrap();
        assert!(best.sections <= 2, "inductive line wanted {} sections", best.sections);
        // And adding sections beyond the optimum strictly hurts.
        assert!(points[7].total_delay > best.total_delay);
    }

    #[test]
    fn slack_buys_area() {
        let p = resistive_problem();
        let tight = cheapest_within_slack(&p, 12, 0.0).unwrap();
        let relaxed = cheapest_within_slack(&p, 12, 10.0).unwrap();
        assert!(relaxed.repeater_area.square_meters() <= tight.repeater_area.square_meters());
        assert!(relaxed.total_delay >= tight.total_delay);
        // 10% slack should buy a tangible area saving on a resistive line.
        assert!(
            relaxed.repeater_area.square_meters() < 0.95 * tight.repeater_area.square_meters(),
            "10% slack saved only {:.1}%",
            100.0
                * (1.0
                    - relaxed.repeater_area.square_meters() / tight.repeater_area.square_meters())
        );
        assert!(cheapest_within_slack(&p, 12, -1.0).is_err());
    }

    #[test]
    fn zero_slack_returns_the_delay_optimal_point() {
        let p = inductive_problem();
        let points = sections_sweep(&p, 8).unwrap();
        let best_delay =
            points.iter().map(|p| p.total_delay.seconds()).fold(f64::INFINITY, f64::min);
        let chosen = cheapest_within_slack(&p, 8, 0.0).unwrap();
        assert!((chosen.total_delay.seconds() - best_delay).abs() < 1e-15);
    }
}
