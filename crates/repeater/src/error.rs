//! Error type for repeater-insertion analysis.

use std::error::Error;
use std::fmt;

/// Error returned by repeater-insertion construction and optimisation.
#[derive(Debug, Clone, PartialEq)]
pub enum RepeaterError {
    /// A problem parameter is non-positive or not finite.
    InvalidParameter {
        /// Which parameter was invalid.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The numerical optimiser failed to converge.
    Optimization {
        /// Human-readable description of the failure.
        reason: String,
    },
}

impl fmt::Display for RepeaterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter { what, value } => write!(f, "invalid {what}: {value}"),
            Self::Optimization { reason } => write!(f, "repeater optimisation failed: {reason}"),
        }
    }
}

impl Error for RepeaterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(RepeaterError::InvalidParameter { what: "buffer size", value: -1.0 }
            .to_string()
            .contains("buffer size"));
        assert!(RepeaterError::Optimization { reason: "did not converge".into() }
            .to_string()
            .contains("did not converge"));
    }
}
