//! Tree-aware repeater insertion: the paper's closed forms applied per
//! root-to-sink path.
//!
//! Hybrid tree repeater schemes (RIP-style) decompose a branching net into
//! its root-to-sink paths, size and space repeaters on each path as if it
//! were a uniform line, and judge the net by its *worst sink*. This module
//! implements exactly that on top of [`RoutingTree::path_line`]: every sink
//! path becomes a [`RepeaterProblem`], the paper's RLC optimum (Eqs. 14–15)
//! and the Bakoglu RC optimum are evaluated on it, and the report carries
//! the worst-sink delay under each scheme — so the cost of ignoring
//! inductance on a *tree* is one subtraction away.

use rlckit_interconnect::{RoutingTree, Technology};
use rlckit_units::{Length, Time};

use crate::error::RepeaterError;
use crate::system::{RepeaterDesign, RepeaterProblem};

/// The repeater plans of one root-to-sink path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinkRepeaterPlan {
    /// Leaf branch index in the source tree.
    pub sink: usize,
    /// Root-to-sink path length.
    pub path_length: Length,
    /// The paper's `T_{L/R}` of the path-equivalent uniform line.
    pub t_l_over_r: f64,
    /// The RLC closed-form optimum (Eqs. 14–15) on this path.
    pub rlc: RepeaterDesign,
    /// The inductance-blind Bakoglu optimum, with its delay evaluated on the
    /// true RLC path (what you actually get when you design with an RC model).
    pub rc: RepeaterDesign,
}

/// Tree-wide result of per-path repeater evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeRepeaterReport {
    /// One plan per sink, in tree sink order.
    pub per_sink: Vec<SinkRepeaterPlan>,
}

impl TreeRepeaterReport {
    /// The sink whose RLC-optimal path delay is largest — the delay of the
    /// repeatered net.
    ///
    /// # Panics
    ///
    /// Never panics on a report from [`evaluate_tree_repeaters`], which
    /// rejects sink-free trees.
    pub fn worst_sink(&self) -> &SinkRepeaterPlan {
        self.per_sink
            .iter()
            .max_by(|a, b| a.rlc.total_delay.seconds().total_cmp(&b.rlc.total_delay.seconds()))
            .expect("an evaluated tree has at least one sink")
    }

    /// Worst-sink delay when every path uses the paper's RLC optimum.
    pub fn worst_sink_delay_rlc(&self) -> Time {
        self.worst_sink().rlc.total_delay
    }

    /// Worst-sink delay when every path is designed with the RC model
    /// (Bakoglu `h`, `k`) but evaluated on the true RLC line.
    pub fn worst_sink_delay_rc(&self) -> Time {
        Time::from_seconds(
            self.per_sink.iter().map(|p| p.rc.total_delay.seconds()).fold(0.0, f64::max),
        )
    }

    /// Relative delay penalty (per cent) of designing the worst path with an
    /// RC model instead of the paper's RLC closed forms.
    pub fn rc_design_penalty_percent(&self) -> f64 {
        let rlc = self.worst_sink_delay_rlc().seconds();
        let rc = self.worst_sink_delay_rc().seconds();
        100.0 * (rc - rlc) / rlc
    }

    /// Total repeater count over all paths under the RLC scheme (continuous
    /// sections summed; round per path for a physical design).
    pub fn total_rlc_sections(&self) -> f64 {
        self.per_sink.iter().map(|p| p.rlc.sections).sum()
    }
}

/// Evaluates repeater insertion on every root-to-sink path of a tree.
///
/// Each path is summarised as its equivalent uniform line
/// ([`RoutingTree::path_line`]); the paper's RLC optimum and the Bakoglu RC
/// optimum are computed on that line with the technology's minimum buffer.
///
/// # Errors
///
/// Returns [`RepeaterError::InvalidParameter`] for a tree without sinks, and
/// propagates path/problem construction failures.
pub fn evaluate_tree_repeaters(
    tree: &RoutingTree,
    technology: &Technology,
) -> Result<TreeRepeaterReport, RepeaterError> {
    let sinks = tree.sinks();
    if sinks.is_empty() {
        return Err(RepeaterError::InvalidParameter { what: "tree sink count", value: 0.0 });
    }
    let mut per_sink = Vec::with_capacity(sinks.len());
    for sink in sinks {
        let line = tree.path_line(sink).map_err(|_| RepeaterError::InvalidParameter {
            what: "root-to-sink path line",
            value: f64::NAN,
        })?;
        let problem = RepeaterProblem::for_line(&line, technology)?;
        per_sink.push(SinkRepeaterPlan {
            sink,
            path_length: tree.path_length(sink),
            t_l_over_r: problem.t_l_over_r(),
            rlc: problem.rlc_optimum(),
            rc: problem.bakoglu_optimum(),
        });
    }
    Ok(TreeRepeaterReport { per_sink })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_interconnect::DistributedLine;
    use rlckit_units::{Capacitance, Length};

    fn technology() -> Technology {
        Technology::quarter_micron()
    }

    fn long_inductive_tree(levels: usize, fanout: usize) -> RoutingTree {
        let tech = technology();
        let path = tech.global_wire.line(Length::from_millimeters(30.0)).unwrap();
        RoutingTree::symmetric(&path, levels, fanout, Capacitance::from_femtofarads(50.0)).unwrap()
    }

    #[test]
    fn every_sink_gets_a_plan_and_symmetric_sinks_match() {
        let tree = long_inductive_tree(3, 2);
        let report = evaluate_tree_repeaters(&tree, &technology()).unwrap();
        assert_eq!(report.per_sink.len(), 4);
        let d0 = report.per_sink[0].rlc.total_delay.seconds();
        for p in &report.per_sink {
            assert!((p.rlc.total_delay.seconds() - d0).abs() < 1e-15 * d0.max(1.0));
            assert!(p.t_l_over_r > 0.0);
            assert!((p.path_length.meters() - 0.03).abs() < 1e-12);
        }
        assert!(report.total_rlc_sections() > 0.0);
    }

    #[test]
    fn inductance_means_fewer_repeaters_and_rc_designs_are_slower() {
        // The 30 mm wide global wire in 0.25 µm is strongly inductive: the
        // RLC optimum must use fewer sections than Bakoglu and the RC design
        // must pay a delay penalty on the true line (the paper's Fig. 4 /
        // Table 2 story, now per tree path).
        let tree = long_inductive_tree(2, 3);
        let report = evaluate_tree_repeaters(&tree, &technology()).unwrap();
        let worst = report.worst_sink();
        assert!(worst.rlc.sections < worst.rc.sections);
        assert!(report.worst_sink_delay_rc() >= report.worst_sink_delay_rlc());
        assert!(report.rc_design_penalty_percent() >= 0.0);
    }

    #[test]
    fn asymmetric_trees_report_the_long_path_as_worst() {
        let tech = technology();
        let mut tree = long_inductive_tree(2, 2);
        let stretched = tech.global_wire.line(Length::from_millimeters(45.0)).unwrap();
        let leaf = tree.sinks()[1];
        tree.branches[leaf].line = stretched;
        let report = evaluate_tree_repeaters(&tree, &tech).unwrap();
        assert_eq!(report.worst_sink().sink, leaf);
        assert!(report.worst_sink().path_length.meters() > 0.03);
    }

    #[test]
    fn single_path_tree_matches_the_uniform_line_machinery() {
        let tech = technology();
        let line = tech.global_wire.line(Length::from_millimeters(30.0)).unwrap();
        let mut tree = RoutingTree::new();
        tree.branches.push(rlckit_interconnect::RoutingBranch {
            parent: None,
            line,
            sink_capacitance: Capacitance::ZERO,
        });
        let report = evaluate_tree_repeaters(&tree, &tech).unwrap();
        let reference = RepeaterProblem::for_line(&line, &tech).unwrap().rlc_optimum();
        let got = report.worst_sink_delay_rlc().seconds();
        assert!((got - reference.total_delay.seconds()).abs() < 1e-18);
        let _ = DistributedLine::from_totals(
            line.total_resistance(),
            line.total_inductance(),
            line.total_capacitance(),
            line.length(),
        )
        .unwrap();
    }

    #[test]
    fn sink_free_trees_are_rejected() {
        let empty = RoutingTree::new();
        assert!(evaluate_tree_repeaters(&empty, &technology()).is_err());
    }
}
