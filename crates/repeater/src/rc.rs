//! The classical Bakoglu RC repeater optimum (Eq. 11).
//!
//! For a purely resistive-capacitive line driven through repeaters of size `h`
//! partitioning it into `k` sections, minimising the total Elmore-style delay
//! gives the well-known closed forms
//!
//! ```text
//! h_opt(RC) = sqrt( R0·Ct / (Rt·C0) )
//! k_opt(RC) = sqrt( Rt·Ct / (2·R0·C0) )
//! ```
//!
//! The paper recovers these as the `Lt → 0` limit of its RLC expressions; this
//! module provides them directly so the comparison experiments can quantify
//! the penalty of using them on inductive lines.

use rlckit_units::{Capacitance, Resistance};

/// Optimum repeater size `h_opt(RC) = sqrt(R0·Ct / (Rt·C0))` for an RC line.
///
/// # Panics
///
/// Panics if any argument is non-positive (repeater sizing for a degenerate
/// line is meaningless); construct inputs through
/// [`RepeaterProblem`](crate::system::RepeaterProblem) to get validation as an
/// error instead.
pub fn optimal_size_rc(
    line_resistance: Resistance,
    line_capacitance: Capacitance,
    buffer_resistance: Resistance,
    buffer_capacitance: Capacitance,
) -> f64 {
    let rt = line_resistance.ohms();
    let ct = line_capacitance.farads();
    let r0 = buffer_resistance.ohms();
    let c0 = buffer_capacitance.farads();
    assert!(
        rt > 0.0 && ct > 0.0 && r0 > 0.0 && c0 > 0.0,
        "all impedances must be strictly positive"
    );
    (r0 * ct / (rt * c0)).sqrt()
}

/// Optimum number of sections `k_opt(RC) = sqrt(Rt·Ct / (2·R0·C0))` for an RC line.
///
/// # Panics
///
/// Same conditions as [`optimal_size_rc`].
pub fn optimal_sections_rc(
    line_resistance: Resistance,
    line_capacitance: Capacitance,
    buffer_resistance: Resistance,
    buffer_capacitance: Capacitance,
) -> f64 {
    let rt = line_resistance.ohms();
    let ct = line_capacitance.farads();
    let r0 = buffer_resistance.ohms();
    let c0 = buffer_capacitance.farads();
    assert!(
        rt > 0.0 && ct > 0.0 && r0 > 0.0 && c0 > 0.0,
        "all impedances must be strictly positive"
    );
    (rt * ct / (2.0 * r0 * c0)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ohms(v: f64) -> Resistance {
        Resistance::from_ohms(v)
    }
    fn farads(v: f64) -> Capacitance {
        Capacitance::from_farads(v)
    }

    #[test]
    fn matches_hand_calculation() {
        // Rt = 100 Ω, Ct = 2 pF, R0 = 10 kΩ, C0 = 2 fF.
        let h = optimal_size_rc(ohms(100.0), farads(2e-12), ohms(10e3), farads(2e-15));
        assert!((h - (10e3f64 * 2e-12 / (100.0 * 2e-15)).sqrt()).abs() < 1e-9);
        let k = optimal_sections_rc(ohms(100.0), farads(2e-12), ohms(10e3), farads(2e-15));
        assert!((k - (100.0f64 * 2e-12 / (2.0 * 10e3 * 2e-15)).sqrt()).abs() < 1e-9);
        assert!(h > 1.0, "global wires want large repeaters (h = {h})");
        assert!(k > 1.0, "long resistive lines want several sections (k = {k})");
    }

    #[test]
    fn size_shrinks_for_more_resistive_lines() {
        let less = optimal_size_rc(ohms(1000.0), farads(1e-12), ohms(10e3), farads(2e-15));
        let more = optimal_size_rc(ohms(100.0), farads(1e-12), ohms(10e3), farads(2e-15));
        assert!(less < more);
    }

    #[test]
    fn sections_grow_with_line_length() {
        // Doubling the length doubles Rt and Ct, so k grows by 2 (k ∝ length).
        let k1 = optimal_sections_rc(ohms(100.0), farads(1e-12), ohms(10e3), farads(2e-15));
        let k2 = optimal_sections_rc(ohms(200.0), farads(2e-12), ohms(10e3), farads(2e-15));
        assert!((k2 / k1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn size_is_independent_of_line_length() {
        // h depends only on the R/C ratio per unit length, not the length.
        let h1 = optimal_size_rc(ohms(100.0), farads(1e-12), ohms(10e3), farads(2e-15));
        let h2 = optimal_size_rc(ohms(200.0), farads(2e-12), ohms(10e3), farads(2e-15));
        assert!((h1 - h2).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_resistance_panics() {
        let _ = optimal_size_rc(ohms(0.0), farads(1e-12), ohms(10e3), farads(2e-15));
    }
}
