//! Optimum repeater insertion in RLC interconnect (Section III of the paper).
//!
//! Repeaters partition a long line into `k` sections, each driven by a buffer
//! `h` times larger than minimum size. For RC lines the classical Bakoglu
//! solution gives the optimum `h` and `k`; the paper shows that inductance
//! changes the optimum — fewer, appropriately sized repeaters — and provides
//! closed forms (Eqs. 14–15) whose error against the true numerical optimum is
//! negligible.
//!
//! This crate implements:
//!
//! * [`rc`] — the Bakoglu RC optimum (Eq. 11);
//! * [`rlc`] — the paper's `T_{L/R}` parameter (Eq. 13) and the RLC closed
//!   forms (Eqs. 14–15) with their error factors `h'`, `k'`;
//! * [`system`] — evaluation of the total delay `tpdtotal(h, k)`, repeater
//!   area and switching energy for an arbitrary design point;
//! * [`numerical`] — direct numerical minimisation of `tpdtotal(h, k)` (the
//!   reference the closed forms are validated against, reproducing Fig. 4);
//! * [`comparison`] — the cost of designing with an RC model when the line is
//!   really RLC: delay increase (Eqs. 16–17) and area increase (Eq. 18);
//! * [`design`] — a high-level `RepeaterDesigner` that picks integer repeater
//!   counts for a physical line in a given technology;
//! * [`tree`] — tree-aware evaluation: the closed forms applied per
//!   root-to-sink path of a branching net, judged by the worst sink.
//!
//! # Example
//!
//! ```
//! use rlckit_interconnect::Technology;
//! use rlckit_repeater::RepeaterProblem;
//! use rlckit_units::Length;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tech = Technology::quarter_micron();
//! // A long, wide clock spine: strongly inductive (T_L/R ≈ 5).
//! let line = tech.global_wire.line(Length::from_millimeters(50.0))?;
//! let problem = RepeaterProblem::for_line(&line, &tech)?;
//!
//! let rc = problem.bakoglu_optimum();     // ignores inductance
//! let rlc = problem.rlc_optimum();        // the paper's closed form
//! assert!(rlc.sections < rc.sections);    // inductance ⇒ fewer repeaters
//! assert!(rlc.total_delay < rc.total_delay);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comparison;
pub mod design;
pub mod error;
pub mod numerical;
pub mod rc;
pub mod rlc;
pub mod system;
pub mod tradeoff;
pub mod tree;

pub use error::RepeaterError;
pub use system::{RepeaterDesign, RepeaterProblem};
pub use tree::{evaluate_tree_repeaters, SinkRepeaterPlan, TreeRepeaterReport};
