//! Numerical minimisation of the total repeater-system delay.
//!
//! The paper validates Eqs. (14)–(15) against "numerical solutions" of the two
//! stationarity conditions (Eq. 10). Minimising `tpdtotal(h, k)` directly is
//! equivalent and more robust; this module does so with a Nelder–Mead simplex
//! in log-space (so `h` and `k` stay positive), seeded by the closed form.
//! Fig. 4 is reproduced by sweeping `T_{L/R}` and comparing this optimum with
//! the closed form.

use rlckit_numeric::optimize::{nelder_mead, NelderMeadOptions};

use crate::error::RepeaterError;
use crate::system::{RepeaterDesign, RepeaterProblem};

/// Result of the numerical optimisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumericalOptimum {
    /// The optimal design found.
    pub design: RepeaterDesign,
    /// Number of objective evaluations used by the optimiser.
    pub evaluations: usize,
}

/// Numerically minimises `tpdtotal(h, k)` over real `h > 0`, `k > 0`.
///
/// The optimiser works in `(ln h, ln k)` so both variables remain positive,
/// and is seeded from the closed-form optimum (Eqs. 14–15), which is always in
/// the basin of the global minimum.
///
/// Note that `k` is treated as a continuous variable, exactly as in the
/// paper's Fig. 4; use [`crate::design::RepeaterDesigner`] for integer
/// repeater counts.
///
/// # Errors
///
/// Returns [`RepeaterError::Optimization`] if the simplex fails to converge.
pub fn optimize(problem: &RepeaterProblem) -> Result<NumericalOptimum, RepeaterError> {
    let seed = problem.rlc_optimum();
    let start = [seed.size.ln(), seed.sections.ln()];

    let objective = |x: &[f64]| {
        let size = x[0].exp();
        let sections = x[1].exp();
        match problem.total_delay(size, sections) {
            Ok(t) => t.seconds(),
            Err(_) => f64::INFINITY,
        }
    };

    let options = NelderMeadOptions { initial_step: 0.25, tolerance: 1e-12, max_iterations: 4000 };
    let minimum = nelder_mead(objective, &start, options)
        .map_err(|e| RepeaterError::Optimization { reason: e.to_string() })?;

    let size = minimum.point[0].exp();
    let sections = minimum.point[1].exp();
    let design = problem.design(size, sections)?;
    Ok(NumericalOptimum { design, evaluations: minimum.evaluations })
}

/// Numerically minimises the delay with the number of sections fixed.
///
/// Used by the integer-rounding designer: once `k` is chosen, the best `h`
/// for that `k` is a one-dimensional problem.
///
/// # Errors
///
/// Returns [`RepeaterError::InvalidParameter`] for a non-positive `sections`
/// and [`RepeaterError::Optimization`] if the search fails.
pub fn optimize_size_for_sections(
    problem: &RepeaterProblem,
    sections: f64,
) -> Result<RepeaterDesign, RepeaterError> {
    if !(sections > 0.0) || !sections.is_finite() {
        return Err(RepeaterError::InvalidParameter { what: "section count k", value: sections });
    }
    let seed = problem.rlc_optimum().size;
    let objective = |x: &[f64]| {
        let size = x[0].exp();
        match problem.total_delay(size, sections) {
            Ok(t) => t.seconds(),
            Err(_) => f64::INFINITY,
        }
    };
    let options = NelderMeadOptions { initial_step: 0.25, tolerance: 1e-12, max_iterations: 2000 };
    let minimum = nelder_mead(objective, &[seed.ln()], options)
        .map_err(|e| RepeaterError::Optimization { reason: e.to_string() })?;
    problem.design(minimum.point[0].exp(), sections)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_interconnect::Technology;
    use rlckit_units::Length;

    fn problem(mm: f64) -> RepeaterProblem {
        let tech = Technology::quarter_micron();
        let line = tech.global_wire.line(Length::from_millimeters(mm)).unwrap();
        RepeaterProblem::for_line(&line, &tech).unwrap()
    }

    fn resistive_problem(mm: f64) -> RepeaterProblem {
        let tech = Technology::quarter_micron();
        let line = tech.intermediate_wire.line(Length::from_millimeters(mm)).unwrap();
        RepeaterProblem::for_line(&line, &tech).unwrap()
    }

    #[test]
    fn numerical_optimum_is_at_least_as_good_as_the_closed_form() {
        for p in [problem(50.0), resistive_problem(10.0), problem(20.0)] {
            let closed = p.rlc_optimum();
            let numerical = optimize(&p).unwrap();
            assert!(
                numerical.design.total_delay.seconds() <= closed.total_delay.seconds() * 1.0001,
                "numerical optimum should not be worse than the closed form"
            );
            assert!(numerical.evaluations > 0);
        }
    }

    #[test]
    fn closed_form_is_within_a_fraction_of_a_percent_of_the_numerical_optimum() {
        // The paper claims the closed forms give a total delay within 0.05% of
        // the numerical optimum; allow a slightly looser bound here because the
        // objective is the full Eq. (9) rather than the paper's fitting setup.
        for p in [problem(50.0), resistive_problem(10.0)] {
            let closed = p.rlc_optimum();
            let numerical = optimize(&p).unwrap();
            let excess = (closed.total_delay.seconds() - numerical.design.total_delay.seconds())
                / numerical.design.total_delay.seconds();
            assert!(excess.abs() < 5e-3, "closed-form delay excess {excess}");
        }
    }

    #[test]
    fn numerical_optimum_prefers_fewer_sections_on_inductive_lines() {
        let inductive = optimize(&problem(50.0)).unwrap();
        let resistive = optimize(&resistive_problem(50.0)).unwrap();
        // Same length, but the wide (inductive) wire wants fewer repeaters.
        assert!(inductive.design.sections < resistive.design.sections);
    }

    #[test]
    fn fixed_sections_search_matches_full_optimum_at_the_optimal_k() {
        let p = resistive_problem(10.0);
        let full = optimize(&p).unwrap();
        let fixed = optimize_size_for_sections(&p, full.design.sections).unwrap();
        let diff = (fixed.total_delay.seconds() - full.design.total_delay.seconds()).abs()
            / full.design.total_delay.seconds();
        assert!(diff < 1e-6, "fixed-k search should recover the same optimum (diff {diff})");
        assert!(optimize_size_for_sections(&p, 0.0).is_err());
        assert!(optimize_size_for_sections(&p, f64::NAN).is_err());
    }
}
