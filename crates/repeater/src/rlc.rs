//! The paper's closed-form RLC repeater optimum (Eqs. 13–15).
//!
//! Inductance is folded into a single dimensionless parameter
//!
//! ```text
//! T_{L/R} = sqrt( (Lt/Rt) / (R0·C0) )                       (Eq. 13)
//! ```
//!
//! which compares the line's `L/R` time constant with the intrinsic buffer
//! delay. The optimum repeater size and count are the Bakoglu RC values
//! multiplied by error factors that depend only on `T_{L/R}`:
//!
//! ```text
//! h' = 1 / [1 + 0.16·(T_{L/R})³]^0.24                        (Eq. 14)
//! k' = 1 / [1 + 0.18·(T_{L/R})³]^0.30                        (Eq. 15)
//! h_opt = h'·sqrt(R0·Ct/(Rt·C0)),   k_opt = k'·sqrt(Rt·Ct/(2·R0·C0))
//! ```
//!
//! Both factors approach 1 as `Lt → 0` and fall below 1 as inductance grows:
//! inductive lines want fewer (and relatively smaller) repeaters, because the
//! delay of an LC-dominated line is linear in length and partitioning it buys
//! nothing.

use rlckit_units::{Capacitance, Inductance, Resistance, Time};

/// The `T_{L/R}` figure of merit of Eq. (13): `sqrt((Lt/Rt)/(R0·C0))`.
///
/// # Panics
///
/// Panics if any argument is non-positive; use
/// [`RepeaterProblem`](crate::system::RepeaterProblem) for validated
/// construction.
pub fn t_l_over_r(
    line_resistance: Resistance,
    line_inductance: Inductance,
    buffer_time_constant: Time,
) -> f64 {
    let rt = line_resistance.ohms();
    let lt = line_inductance.henries();
    let tau = buffer_time_constant.seconds();
    assert!(rt > 0.0 && lt > 0.0 && tau > 0.0, "all parameters must be strictly positive");
    ((lt / rt) / tau).sqrt()
}

/// The repeater-size error factor `h'(T_{L/R})` of Eq. (14).
///
/// Equals 1 at `T_{L/R} = 0` and decreases monotonically with inductance.
pub fn size_error_factor(t_l_over_r: f64) -> f64 {
    assert!(t_l_over_r >= 0.0, "T_L/R must be non-negative");
    1.0 / (1.0 + 0.16 * t_l_over_r.powi(3)).powf(0.24)
}

/// The section-count error factor `k'(T_{L/R})` of Eq. (15).
///
/// Equals 1 at `T_{L/R} = 0` and decreases monotonically with inductance.
pub fn sections_error_factor(t_l_over_r: f64) -> f64 {
    assert!(t_l_over_r >= 0.0, "T_L/R must be non-negative");
    1.0 / (1.0 + 0.18 * t_l_over_r.powi(3)).powf(0.30)
}

/// Optimum repeater size for an RLC line (Eq. 14):
/// `h_opt = sqrt(R0·Ct/(Rt·C0)) / [1 + 0.16·T³]^0.24`.
///
/// # Panics
///
/// Panics if any impedance is non-positive.
pub fn optimal_size_rlc(
    line_resistance: Resistance,
    line_inductance: Inductance,
    line_capacitance: Capacitance,
    buffer_resistance: Resistance,
    buffer_capacitance: Capacitance,
) -> f64 {
    let t = t_l_over_r(line_resistance, line_inductance, buffer_resistance * buffer_capacitance);
    crate::rc::optimal_size_rc(
        line_resistance,
        line_capacitance,
        buffer_resistance,
        buffer_capacitance,
    ) * size_error_factor(t)
}

/// Optimum number of sections for an RLC line (Eq. 15):
/// `k_opt = sqrt(Rt·Ct/(2·R0·C0)) / [1 + 0.18·T³]^0.30`.
///
/// # Panics
///
/// Panics if any impedance is non-positive.
pub fn optimal_sections_rlc(
    line_resistance: Resistance,
    line_inductance: Inductance,
    line_capacitance: Capacitance,
    buffer_resistance: Resistance,
    buffer_capacitance: Capacitance,
) -> f64 {
    let t = t_l_over_r(line_resistance, line_inductance, buffer_resistance * buffer_capacitance);
    crate::rc::optimal_sections_rc(
        line_resistance,
        line_capacitance,
        buffer_resistance,
        buffer_capacitance,
    ) * sections_error_factor(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ohms(v: f64) -> Resistance {
        Resistance::from_ohms(v)
    }
    fn farads(v: f64) -> Capacitance {
        Capacitance::from_farads(v)
    }
    fn henries(v: f64) -> Inductance {
        Inductance::from_henries(v)
    }

    #[test]
    fn t_l_over_r_matches_equation_13() {
        // Lt/Rt = 5 nH / 10 Ω = 0.5 ns; R0·C0 = 20 ps ⇒ T = sqrt(25) = 5.
        let t = t_l_over_r(ohms(10.0), henries(5e-9), Time::from_picoseconds(20.0));
        assert!((t - 5.0).abs() < 1e-9);
    }

    #[test]
    fn error_factors_are_one_without_inductance() {
        assert!((size_error_factor(0.0) - 1.0).abs() < 1e-12);
        assert!((sections_error_factor(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn error_factors_decrease_monotonically() {
        let mut prev_h = 1.0;
        let mut prev_k = 1.0;
        for i in 1..=100 {
            let t = i as f64 * 0.1;
            let h = size_error_factor(t);
            let k = sections_error_factor(t);
            assert!(h < prev_h);
            assert!(k < prev_k);
            assert!(h > 0.0 && k > 0.0);
            prev_h = h;
            prev_k = k;
        }
    }

    #[test]
    fn paper_reference_points() {
        // The paper's area-increase figures imply the products of the factors:
        // at T = 3, [1+0.18·27]^0.3 · [1+0.16·27]^0.24 ≈ 2.54 (154% increase);
        // at T = 5 the product is ≈ 5.35 (435% increase).
        let product = |t: f64| 1.0 / (size_error_factor(t) * sections_error_factor(t));
        assert!((product(3.0) - 2.54).abs() < 0.05, "product at T=3 is {}", product(3.0));
        assert!((product(5.0) - 5.35).abs() < 0.15, "product at T=5 is {}", product(5.0));
    }

    #[test]
    fn rlc_optimum_reduces_to_rc_as_inductance_vanishes() {
        let h_rlc =
            optimal_size_rlc(ohms(100.0), henries(1e-15), farads(2e-12), ohms(10e3), farads(2e-15));
        let h_rc =
            crate::rc::optimal_size_rc(ohms(100.0), farads(2e-12), ohms(10e3), farads(2e-15));
        assert!((h_rlc - h_rc).abs() / h_rc < 1e-6);
        let k_rlc = optimal_sections_rlc(
            ohms(100.0),
            henries(1e-15),
            farads(2e-12),
            ohms(10e3),
            farads(2e-15),
        );
        let k_rc =
            crate::rc::optimal_sections_rc(ohms(100.0), farads(2e-12), ohms(10e3), farads(2e-15));
        assert!((k_rlc - k_rc).abs() / k_rc < 1e-6);
    }

    #[test]
    fn inductance_reduces_both_size_and_sections() {
        let h_rc = crate::rc::optimal_size_rc(ohms(10.0), farads(2e-12), ohms(10e3), farads(2e-15));
        let k_rc =
            crate::rc::optimal_sections_rc(ohms(10.0), farads(2e-12), ohms(10e3), farads(2e-15));
        let h_rlc =
            optimal_size_rlc(ohms(10.0), henries(5e-9), farads(2e-12), ohms(10e3), farads(2e-15));
        let k_rlc = optimal_sections_rlc(
            ohms(10.0),
            henries(5e-9),
            farads(2e-12),
            ohms(10e3),
            farads(2e-15),
        );
        assert!(h_rlc < h_rc);
        assert!(k_rlc < k_rc);
    }

    #[test]
    #[should_panic]
    fn negative_t_panics() {
        let _ = size_error_factor(-1.0);
    }
}
