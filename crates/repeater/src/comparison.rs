//! The cost of ignoring inductance when inserting repeaters (Eqs. 16–18).
//!
//! An RC-only flow sizes and counts repeaters with Bakoglu's formulas. On a
//! line with significant inductance that design is doubly wrong: it is slower
//! (Eqs. 16–17) and it wastes silicon and power on repeaters that do not help
//! (Eq. 18). This module computes both penalties exactly — by evaluating the
//! total delay of each design with the closed-form section delay — and with
//! the paper's closed-form approximations, which depend only on `T_{L/R}`.

use crate::error::RepeaterError;
use crate::rlc::{sections_error_factor, size_error_factor};
use crate::system::{RepeaterDesign, RepeaterProblem};

/// Side-by-side comparison of the RC-designed and RLC-designed repeater systems
/// for the same physical line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcVsRlcComparison {
    /// The `T_{L/R}` figure of merit of the line/buffer combination.
    pub t_l_over_r: f64,
    /// Repeater design produced by the RC (Bakoglu) formulas.
    pub rc_design: RepeaterDesign,
    /// Repeater design produced by the paper's RLC formulas.
    pub rlc_design: RepeaterDesign,
    /// Per-cent increase in total delay from using the RC design (Eq. 16).
    pub delay_increase_percent: f64,
    /// Per-cent increase in total repeater area from using the RC design.
    pub area_increase_percent: f64,
    /// Per-cent increase in switching energy per transition from using the RC design.
    pub energy_increase_percent: f64,
}

/// Compares the RC and RLC repeater designs for a problem, evaluating both
/// with the RLC section-delay model (Eq. 9).
///
/// # Errors
///
/// Returns [`RepeaterError::Optimization`] if either design cannot be evaluated
/// (which cannot happen for a validated [`RepeaterProblem`]).
pub fn compare(problem: &RepeaterProblem) -> Result<RcVsRlcComparison, RepeaterError> {
    let rc_design = problem.bakoglu_optimum();
    let rlc_design = problem.rlc_optimum();

    let t_rc = rc_design.total_delay.seconds();
    let t_rlc = rlc_design.total_delay.seconds();
    let delay_increase_percent = 100.0 * (t_rc - t_rlc) / t_rlc;

    let a_rc = problem.repeater_area(&rc_design).square_meters();
    let a_rlc = problem.repeater_area(&rlc_design).square_meters();
    let area_increase_percent = 100.0 * (a_rc - a_rlc) / a_rlc;

    let e_rc = problem.switching_energy(&rc_design).joules();
    let e_rlc = problem.switching_energy(&rlc_design).joules();
    let energy_increase_percent = 100.0 * (e_rc - e_rlc) / e_rlc;

    Ok(RcVsRlcComparison {
        t_l_over_r: problem.t_l_over_r(),
        rc_design,
        rlc_design,
        delay_increase_percent,
        area_increase_percent,
        energy_increase_percent,
    })
}

/// The paper's closed-form repeater-area increase (Eq. 18):
///
/// ```text
/// %AI = 100·( [1 + 0.18·T³]^0.3 · [1 + 0.16·T³]^0.24 − 1 )
/// ```
///
/// For `T_{L/R} = 3` this is ≈ 154%, for `T_{L/R} = 5` ≈ 435%.
pub fn area_increase_percent_closed_form(t_l_over_r: f64) -> f64 {
    assert!(t_l_over_r >= 0.0, "T_L/R must be non-negative");
    let product = 1.0 / (size_error_factor(t_l_over_r) * sections_error_factor(t_l_over_r));
    100.0 * (product - 1.0)
}

/// An approximation of the paper's Eq. (17): per-cent total-delay increase as a
/// function of `T_{L/R}` only.
///
/// The functional family of Eq. (17) is a saturating curve that reaches ≈10% at
/// `T_{L/R} = 3`, ≈20% at 5 and ≈30% at 10; the published rendering of the
/// equation is typographically ambiguous, so the coefficients used here were
/// re-fitted to those anchor values (see EXPERIMENTS.md). Use
/// [`compare`] for an exact evaluation of any particular line.
pub fn delay_increase_percent_approx(t_l_over_r: f64) -> f64 {
    assert!(t_l_over_r >= 0.0, "T_L/R must be non-negative");
    if t_l_over_r == 0.0 {
        return 0.0;
    }
    30.0 / (1.0 + 0.5 / t_l_over_r + 23.0 * (-0.84 * t_l_over_r).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_interconnect::Technology;
    use rlckit_units::{Area, Capacitance, Inductance, Resistance, Voltage};

    /// A problem with an exactly chosen T_L/R, built by scaling the line inductance.
    fn problem_with_t(t_l_over_r: f64) -> RepeaterProblem {
        let tech = Technology::quarter_micron();
        // A long resistive-enough line so that several repeaters are wanted.
        let rt = 250.0;
        let ct = 7.5e-12;
        let tau = tech.buffer_time_constant().seconds();
        let lt = t_l_over_r * t_l_over_r * tau * rt;
        RepeaterProblem::new(
            Resistance::from_ohms(rt),
            Inductance::from_henries(lt),
            Capacitance::from_farads(ct),
            tech.min_buffer_resistance,
            tech.min_buffer_capacitance,
            Area::from_square_micrometers(4.0),
            Voltage::from_volts(2.5),
        )
        .unwrap()
    }

    #[test]
    fn area_increase_matches_paper_anchor_points() {
        assert!((area_increase_percent_closed_form(3.0) - 154.0).abs() < 6.0);
        assert!((area_increase_percent_closed_form(5.0) - 435.0).abs() < 15.0);
        assert!(area_increase_percent_closed_form(0.0).abs() < 1e-9);
    }

    #[test]
    fn delay_increase_approx_matches_paper_anchor_points() {
        assert!(delay_increase_percent_approx(0.0).abs() < 1e-9);
        assert!((delay_increase_percent_approx(3.0) - 10.0).abs() < 2.0);
        assert!((delay_increase_percent_approx(5.0) - 20.0).abs() < 2.0);
        assert!((delay_increase_percent_approx(10.0) - 30.0).abs() < 3.0);
        // Monotone increasing in T.
        let mut prev = 0.0;
        for i in 0..=100 {
            let v = delay_increase_percent_approx(i as f64 * 0.1);
            assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    #[test]
    fn exact_comparison_penalties_grow_with_t() {
        let low = compare(&problem_with_t(1.0)).unwrap();
        let mid = compare(&problem_with_t(3.0)).unwrap();
        let high = compare(&problem_with_t(5.0)).unwrap();
        assert!(low.delay_increase_percent >= -1e-9);
        assert!(mid.delay_increase_percent > low.delay_increase_percent);
        assert!(high.delay_increase_percent > mid.delay_increase_percent);
        assert!(mid.area_increase_percent > low.area_increase_percent);
        assert!(high.area_increase_percent > mid.area_increase_percent);
        assert!(high.energy_increase_percent > 0.0);
        assert!((high.t_l_over_r - 5.0).abs() < 1e-9);
    }

    #[test]
    fn exact_delay_penalty_is_in_the_paper_ballpark() {
        // The paper quotes ≈10% at T = 3, ≈20% at T = 5 and ≈30% at T = 10 for
        // the Eq. 16 penalty; the exact evaluation on a concrete line should
        // land in the same range (within a factor accounting for the k ≥ 1
        // clamp and the particular line chosen).
        let at3 = compare(&problem_with_t(3.0)).unwrap().delay_increase_percent;
        let at5 = compare(&problem_with_t(5.0)).unwrap().delay_increase_percent;
        assert!(at3 > 4.0 && at3 < 20.0, "delay increase at T=3 is {at3}%");
        assert!(at5 > 12.0 && at5 < 32.0, "delay increase at T=5 is {at5}%");
    }

    #[test]
    fn rc_design_never_beats_rlc_design_meaningfully() {
        // The closed forms (Eqs. 14-15) are fits; at small T_L/R they can land a
        // hair's breadth away from the true optimum, so allow the RC design to be
        // at most 0.5% "better" (numerical noise), never materially better.
        for t in [0.5, 1.0, 2.0, 4.0, 6.0, 8.0] {
            let c = compare(&problem_with_t(t)).unwrap();
            assert!(
                c.delay_increase_percent >= -0.5,
                "RC design unexpectedly faster at T = {t}: {}%",
                c.delay_increase_percent
            );
            assert!(c.area_increase_percent >= -1e-6);
        }
    }

    #[test]
    #[should_panic]
    fn negative_t_panics_in_closed_forms() {
        let _ = area_increase_percent_closed_form(-1.0);
    }
}
