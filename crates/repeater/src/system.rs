//! The repeater system: total delay, area and energy of a design point.
//!
//! A design point is a pair `(h, k)`: `k` uniform sections, each driven by a
//! buffer `h` times larger than minimum size. Following the paper's appendix,
//! the total delay is `k` times the closed-form delay (Eq. 9) of one section,
//! whose impedances are `Rt/k`, `Lt/k`, `Ct/k` driven by `R0/h` and loaded by
//! `h·C0`.

use rlckit_core::load::GateRlcLoad;
use rlckit_core::model::propagation_delay;
use rlckit_interconnect::{DistributedLine, Technology};
use rlckit_units::{Area, Capacitance, Energy, Inductance, Resistance, Time, Voltage};

use crate::error::RepeaterError;
use crate::{rc, rlc};

/// A repeater-insertion problem: one line and one buffer family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepeaterProblem {
    total_resistance: Resistance,
    total_inductance: Inductance,
    total_capacitance: Capacitance,
    buffer_resistance: Resistance,
    buffer_capacitance: Capacitance,
    buffer_area: Area,
    supply: Voltage,
}

/// A candidate or optimum repeater design for a [`RepeaterProblem`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepeaterDesign {
    /// Repeater size as a multiple of the minimum buffer, `h`.
    pub size: f64,
    /// Number of line sections, `k` (continuous; round for a physical design).
    pub sections: f64,
    /// Total propagation delay of the repeater system at this design point.
    pub total_delay: Time,
}

impl RepeaterProblem {
    /// Creates a problem from explicit totals and buffer parameters.
    ///
    /// # Errors
    ///
    /// Returns [`RepeaterError::InvalidParameter`] if any value is
    /// non-positive or not finite (the buffer area may be zero).
    pub fn new(
        total_resistance: Resistance,
        total_inductance: Inductance,
        total_capacitance: Capacitance,
        buffer_resistance: Resistance,
        buffer_capacitance: Capacitance,
        buffer_area: Area,
        supply: Voltage,
    ) -> Result<Self, RepeaterError> {
        let strictly_positive = |v: f64, what: &'static str| -> Result<(), RepeaterError> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(RepeaterError::InvalidParameter { what, value: v })
            }
        };
        strictly_positive(total_resistance.ohms(), "total line resistance")?;
        strictly_positive(total_inductance.henries(), "total line inductance")?;
        strictly_positive(total_capacitance.farads(), "total line capacitance")?;
        strictly_positive(buffer_resistance.ohms(), "minimum buffer resistance")?;
        strictly_positive(buffer_capacitance.farads(), "minimum buffer capacitance")?;
        strictly_positive(supply.volts(), "supply voltage")?;
        if !(buffer_area.square_meters() >= 0.0) || !buffer_area.square_meters().is_finite() {
            return Err(RepeaterError::InvalidParameter {
                what: "minimum buffer area",
                value: buffer_area.square_meters(),
            });
        }
        Ok(Self {
            total_resistance,
            total_inductance,
            total_capacitance,
            buffer_resistance,
            buffer_capacitance,
            buffer_area,
            supply,
        })
    }

    /// Creates a problem for a physical line in a given technology.
    ///
    /// # Errors
    ///
    /// Returns [`RepeaterError::InvalidParameter`] under the same rules as
    /// [`RepeaterProblem::new`].
    pub fn for_line(
        line: &DistributedLine,
        technology: &Technology,
    ) -> Result<Self, RepeaterError> {
        Self::new(
            line.total_resistance(),
            line.total_inductance(),
            line.total_capacitance(),
            technology.min_buffer_resistance,
            technology.min_buffer_capacitance,
            technology.min_buffer_area,
            technology.supply,
        )
    }

    /// Total line resistance `Rt`.
    pub fn total_resistance(&self) -> Resistance {
        self.total_resistance
    }

    /// Total line inductance `Lt`.
    pub fn total_inductance(&self) -> Inductance {
        self.total_inductance
    }

    /// Total line capacitance `Ct`.
    pub fn total_capacitance(&self) -> Capacitance {
        self.total_capacitance
    }

    /// Minimum-buffer output resistance `R0`.
    pub fn buffer_resistance(&self) -> Resistance {
        self.buffer_resistance
    }

    /// Minimum-buffer input capacitance `C0`.
    pub fn buffer_capacitance(&self) -> Capacitance {
        self.buffer_capacitance
    }

    /// Minimum-buffer area `Amin`.
    pub fn buffer_area(&self) -> Area {
        self.buffer_area
    }

    /// Supply voltage used for the switching-energy estimate.
    pub fn supply(&self) -> Voltage {
        self.supply
    }

    /// The `T_{L/R}` figure of merit of Eq. (13) for this problem.
    pub fn t_l_over_r(&self) -> f64 {
        rlc::t_l_over_r(
            self.total_resistance,
            self.total_inductance,
            self.buffer_resistance * self.buffer_capacitance,
        )
    }

    /// The [`GateRlcLoad`] of one of `k` sections driven by a size-`h` repeater.
    ///
    /// # Errors
    ///
    /// Returns [`RepeaterError::InvalidParameter`] if `h` or `k` is not
    /// strictly positive and finite.
    pub fn section_load(&self, size: f64, sections: f64) -> Result<GateRlcLoad, RepeaterError> {
        if !(size > 0.0) || !size.is_finite() {
            return Err(RepeaterError::InvalidParameter { what: "repeater size h", value: size });
        }
        if !(sections > 0.0) || !sections.is_finite() {
            return Err(RepeaterError::InvalidParameter {
                what: "section count k",
                value: sections,
            });
        }
        GateRlcLoad::new(
            self.total_resistance / sections,
            self.total_inductance / sections,
            self.total_capacitance / sections,
            self.buffer_resistance / size,
            self.buffer_capacitance * size,
        )
        .map_err(|e| RepeaterError::Optimization {
            reason: format!("section load construction failed: {e}"),
        })
    }

    /// Total propagation delay `tpdtotal(h, k)` of the repeater system,
    /// evaluated with the closed-form section delay (Eq. 9, per the appendix).
    ///
    /// # Errors
    ///
    /// Returns [`RepeaterError::InvalidParameter`] for non-positive `h` or `k`.
    pub fn total_delay(&self, size: f64, sections: f64) -> Result<Time, RepeaterError> {
        let load = self.section_load(size, sections)?;
        Ok(propagation_delay(&load) * sections)
    }

    /// The delay of the unrepeated line driven by a single size-`h` buffer.
    ///
    /// # Errors
    ///
    /// Returns [`RepeaterError::InvalidParameter`] for a non-positive `h`.
    pub fn unrepeated_delay(&self, size: f64) -> Result<Time, RepeaterError> {
        self.total_delay(size, 1.0)
    }

    /// Builds a design point (evaluating its total delay) from `h` and `k`.
    ///
    /// # Errors
    ///
    /// Returns [`RepeaterError::InvalidParameter`] for non-positive `h` or `k`.
    pub fn design(&self, size: f64, sections: f64) -> Result<RepeaterDesign, RepeaterError> {
        Ok(RepeaterDesign { size, sections, total_delay: self.total_delay(size, sections)? })
    }

    /// The Bakoglu RC-optimal design (Eq. 11) evaluated on this (RLC) line.
    pub fn bakoglu_optimum(&self) -> RepeaterDesign {
        let h = rc::optimal_size_rc(
            self.total_resistance,
            self.total_capacitance,
            self.buffer_resistance,
            self.buffer_capacitance,
        );
        let k = rc::optimal_sections_rc(
            self.total_resistance,
            self.total_capacitance,
            self.buffer_resistance,
            self.buffer_capacitance,
        )
        .max(1.0);
        self.design(h, k).expect("RC optimum is always a valid design point")
    }

    /// The paper's closed-form RLC-optimal design (Eqs. 14–15).
    pub fn rlc_optimum(&self) -> RepeaterDesign {
        let h = rlc::optimal_size_rlc(
            self.total_resistance,
            self.total_inductance,
            self.total_capacitance,
            self.buffer_resistance,
            self.buffer_capacitance,
        );
        let k = rlc::optimal_sections_rlc(
            self.total_resistance,
            self.total_inductance,
            self.total_capacitance,
            self.buffer_resistance,
            self.buffer_capacitance,
        )
        .max(1.0);
        self.design(h, k).expect("RLC optimum is always a valid design point")
    }

    /// Total silicon area of the repeaters in a design, `h·k·Amin`.
    pub fn repeater_area(&self, design: &RepeaterDesign) -> Area {
        self.buffer_area * (design.size * design.sections)
    }

    /// Switching energy per output transition of the whole repeated line:
    /// `(Ct + k·h·C0)·Vdd²` — the dynamic-power argument the paper makes
    /// qualitatively (more/larger repeaters switch more capacitance).
    pub fn switching_energy(&self, design: &RepeaterDesign) -> Energy {
        let repeater_cap = self.buffer_capacitance.farads() * design.size * design.sections;
        let total_cap = self.total_capacitance.farads() + repeater_cap;
        Energy::from_joules(total_cap * self.supply.volts() * self.supply.volts())
    }
}

impl RepeaterDesign {
    /// The nearest physically realisable (integer, at least 1) section count.
    pub fn rounded_sections(&self) -> usize {
        self.sections.round().max(1.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_units::Length;

    fn quarter_micron_problem(mm: f64) -> RepeaterProblem {
        let tech = Technology::quarter_micron();
        let line = tech.global_wire.line(Length::from_millimeters(mm)).unwrap();
        RepeaterProblem::for_line(&line, &tech).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let p = quarter_micron_problem(10.0);
        assert!((p.total_resistance().ohms() - 10.0).abs() < 1e-9);
        assert!((p.total_capacitance().picofarads() - 2.0).abs() < 1e-9);
        assert!((p.buffer_resistance().kilohms() - 10.0).abs() < 1e-9);
        assert!((p.buffer_capacitance().femtofarads() - 2.0).abs() < 1e-9);
        assert!(p.buffer_area().square_micrometers() > 0.0);
        assert!((p.supply().volts() - 2.5).abs() < 1e-9);
        assert!((p.t_l_over_r() - 5.0).abs() < 0.5);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let tech = Technology::quarter_micron();
        let bad = RepeaterProblem::new(
            Resistance::ZERO,
            Inductance::from_nanohenries(1.0),
            Capacitance::from_picofarads(1.0),
            tech.min_buffer_resistance,
            tech.min_buffer_capacitance,
            tech.min_buffer_area,
            tech.supply,
        );
        assert!(bad.is_err());
        let bad_supply = RepeaterProblem::new(
            Resistance::from_ohms(10.0),
            Inductance::from_nanohenries(1.0),
            Capacitance::from_picofarads(1.0),
            tech.min_buffer_resistance,
            tech.min_buffer_capacitance,
            tech.min_buffer_area,
            Voltage::ZERO,
        );
        assert!(bad_supply.is_err());
    }

    #[test]
    fn section_load_partitions_the_line() {
        let p = quarter_micron_problem(10.0);
        let load = p.section_load(100.0, 4.0).unwrap();
        assert!((load.total_resistance().ohms() - 2.5).abs() < 1e-9);
        assert!((load.total_capacitance().picofarads() - 0.5).abs() < 1e-9);
        assert!((load.driver_resistance().ohms() - 100.0).abs() < 1e-9);
        assert!((load.load_capacitance().femtofarads() - 200.0).abs() < 1e-9);
        assert!(p.section_load(0.0, 1.0).is_err());
        assert!(p.section_load(1.0, 0.0).is_err());
        assert!(p.section_load(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn optimum_designs_beat_neighbouring_design_points() {
        let p = quarter_micron_problem(50.0);
        let opt = p.rlc_optimum();
        let d_opt = opt.total_delay;
        for (dh, dk) in [(1.3, 1.0), (0.7, 1.0), (1.0, 1.6), (1.0, 0.6)] {
            let neighbour = p.design(opt.size * dh, (opt.sections * dk).max(1.0)).unwrap();
            assert!(
                neighbour.total_delay.seconds() >= d_opt.seconds() * 0.999,
                "neighbour (h×{dh}, k×{dk}) is faster than the closed-form optimum"
            );
        }
    }

    #[test]
    fn rlc_design_uses_fewer_repeaters_and_is_faster_on_inductive_lines() {
        // A long, wide global wire: T_L/R ≈ 5 and enough RC mass that the RC
        // design wants several repeaters.
        let p = quarter_micron_problem(50.0);
        let rc = p.bakoglu_optimum();
        let rlc = p.rlc_optimum();
        assert!(rlc.sections < rc.sections);
        assert!(rlc.size < rc.size);
        assert!(rlc.total_delay < rc.total_delay);
        assert!(p.repeater_area(&rlc).square_meters() < p.repeater_area(&rc).square_meters());
        assert!(
            p.switching_energy(&rlc).joules() < p.switching_energy(&rc).joules(),
            "the RLC design should switch less repeater capacitance"
        );
    }

    #[test]
    fn repeaters_help_long_resistive_lines() {
        // On a long intermediate-layer (resistive) wire, the optimal repeated
        // delay must beat the unrepeated delay.
        let tech = Technology::quarter_micron();
        let line = tech.intermediate_wire.line(Length::from_millimeters(10.0)).unwrap();
        let p = RepeaterProblem::for_line(&line, &tech).unwrap();
        let opt = p.rlc_optimum();
        let single = p.unrepeated_delay(opt.size).unwrap();
        assert!(opt.sections > 1.5);
        assert!(opt.total_delay < single);
    }

    #[test]
    fn rounded_sections_is_at_least_one() {
        let d =
            RepeaterDesign { size: 10.0, sections: 0.3, total_delay: Time::from_picoseconds(1.0) };
        assert_eq!(d.rounded_sections(), 1);
        let d =
            RepeaterDesign { size: 10.0, sections: 3.6, total_delay: Time::from_picoseconds(1.0) };
        assert_eq!(d.rounded_sections(), 4);
    }

    #[test]
    fn area_and_energy_scale_with_the_design() {
        let p = quarter_micron_problem(10.0);
        let small = p.design(10.0, 2.0).unwrap();
        let big = p.design(100.0, 4.0).unwrap();
        assert!(p.repeater_area(&big).square_meters() > p.repeater_area(&small).square_meters());
        assert!(p.switching_energy(&big).joules() > p.switching_energy(&small).joules());
        // Energy is at least the bare-line switching energy.
        let bare = p.total_capacitance().farads() * p.supply().volts().powi(2);
        assert!(p.switching_energy(&small).joules() > bare);
    }
}
