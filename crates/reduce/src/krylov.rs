//! The PRIMA-style block-Arnoldi projector.
//!
//! Starting from the descriptor system `G·x + C·ẋ = B·u, y = Lᵀx`, the
//! block Krylov subspace
//!
//! ```text
//! K_q(A, R) = span{R, A·R, A²·R, …},   A = G⁻¹C,  R = G⁻¹B
//! ```
//!
//! contains the leading moments of every transfer function of the system.
//! [`prima`] builds an orthonormal basis `V` of that subspace (modified
//! Gram–Schmidt with deflation, [`OrthoBuilder`]) and projects congruently —
//! `Gᵣ = VᵀGV`, `Cᵣ = VᵀCV`, `Bᵣ = VᵀB`, `Lᵣ = VᵀL` — the PRIMA recipe
//! that preserves the moment match (`⌈q/p⌉` block moments for `p` inputs,
//! `q` moments in the single-input case) while keeping the projection
//! numerically tame.
//!
//! The expensive part is `q` solves against `G`, which go through the same
//! pluggable dense/banded [`SolverBackend`] as every other analysis: on a
//! ladder-shaped circuit the whole reduction is `O(n·b²) + q·O(n·b)` — no
//! dense `n × n` matrix is ever formed.

use rlckit_circuit::state_space::DescriptorStateSpace;
use rlckit_numeric::matrix::Matrix;
use rlckit_numeric::orth::{dot, OrthoBuilder};
use rlckit_numeric::solver::SolverBackend;

use crate::error::ReduceError;
use crate::rom::ReducedSystem;

/// Options controlling a PRIMA reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReductionOptions {
    /// Target reduction order `q` (number of basis vectors).
    pub order: usize,
    /// Solver backend for the `G` factorisation (default
    /// [`SolverBackend::Auto`]: banded for ladder-shaped systems).
    pub backend: SolverBackend,
    /// Relative deflation tolerance of the Gram–Schmidt step.
    pub deflation_tol: f64,
}

impl ReductionOptions {
    /// Options for an order-`q` reduction with automatic backend selection.
    pub fn new(order: usize) -> Self {
        Self { order, backend: SolverBackend::Auto, deflation_tol: 1e-10 }
    }

    /// Returns a copy with the given solver backend.
    #[must_use]
    pub fn with_backend(mut self, backend: SolverBackend) -> Self {
        self.backend = backend;
        self
    }

    fn validate(&self, dim: usize) -> Result<(), ReduceError> {
        if self.order == 0 {
            return Err(ReduceError::InvalidOrder {
                order: 0,
                reason: "reduction order must be at least 1",
            });
        }
        if self.order > dim {
            return Err(ReduceError::InvalidOrder {
                order: self.order,
                reason: "reduction order exceeds the full system dimension",
            });
        }
        if !self.deflation_tol.is_finite() || !(self.deflation_tol > 0.0) {
            return Err(ReduceError::NonFinite {
                what: "deflation tolerance",
                value: self.deflation_tol,
            });
        }
        Ok(())
    }
}

/// Reduces a descriptor system to order ≤ `options.order` by block-Arnoldi
/// congruence projection.
///
/// The achieved order can be smaller than requested when the Krylov space
/// is exhausted (every candidate of a block deflates) — query it with
/// [`ReducedSystem::order`].
///
/// # Errors
///
/// Returns [`ReduceError::InvalidOrder`] / [`ReduceError::NonFinite`] for
/// bad options — including an order smaller than the input count, which
/// would silently leave some inputs with *zero* Krylov content (their
/// transfer functions would reduce to garbage, not merely low accuracy) —
/// [`ReduceError::Breakdown`] if the starting block deflates entirely or a
/// solve produces non-finite values, and propagates circuit errors from the
/// `G` factorisation.
pub fn prima(
    ss: &DescriptorStateSpace,
    options: &ReductionOptions,
) -> Result<ReducedSystem, ReduceError> {
    options.validate(ss.dim())?;
    if options.order < ss.input_count() {
        return Err(ReduceError::InvalidOrder {
            order: options.order,
            reason: "reduction order must be at least the input count \
                     (every B column needs Krylov content)",
        });
    }
    let _span = rlckit_telemetry::span("mor.prima");
    let factor = ss.factor_g(options.backend)?;
    let mut builder = OrthoBuilder::new(ss.dim(), options.deflation_tol);
    let mut iterations = 0u64;
    let mut deflations = 0u64;

    // Starting block: R = G⁻¹B, one candidate per input.
    let mut block: Vec<Vec<f64>> = Vec::new();
    for j in 0..ss.input_count() {
        if builder.len() == options.order {
            break;
        }
        let r = finite_solve(&factor, ss.input_column(j))?;
        iterations += 1;
        if builder.push(&r) {
            block.push(builder.columns().last().expect("vector just accepted").clone());
        } else {
            deflations += 1;
        }
    }
    if builder.is_empty() {
        return Err(ReduceError::Breakdown { stage: "starting Krylov block deflated" });
    }

    // Arnoldi recursion: next block = A·(previous block), orthogonalized.
    while builder.len() < options.order && !block.is_empty() {
        let mut next = Vec::new();
        for v in &block {
            if builder.len() == options.order {
                break;
            }
            let w = finite_solve(&factor, &ss.apply_c(v))?;
            iterations += 1;
            if builder.push(&w) {
                next.push(builder.columns().last().expect("vector just accepted").clone());
            } else {
                deflations += 1;
            }
        }
        block = next;
    }
    rlckit_telemetry::counter_add("mor.arnoldi_iterations", iterations);
    rlckit_telemetry::counter_add("mor.deflations", deflations);

    // Congruence projection through the stamp-level mat-vecs — in the
    // PRIMA sign convention: the branch-current equation rows (inductor and
    // source branches, appended after the node rows) are negated, which
    // turns the storage matrix into `diag(C, +L) ⪰ 0` and the conductance
    // matrix into "semidefinite plus skew". Row scaling cancels inside
    // `G⁻¹C`, so the Krylov space above is untouched, but projecting the
    // *signed* matrices is what makes the reduced model provably stable —
    // the symmetric (−L) form can and does produce spurious right-half-
    // plane poles.
    let flip_from = ss.mna().node_unknowns();
    let flip = |mut y: Vec<f64>| -> Vec<f64> {
        for x in &mut y[flip_from..] {
            *x = -*x;
        }
        y
    };
    let v = builder.columns();
    let q = v.len();
    let mut gr = Matrix::zeros(q, q);
    let mut cr = Matrix::zeros(q, q);
    for j in 0..q {
        let gv = flip(ss.apply_g(&v[j]));
        let cv = flip(ss.apply_c(&v[j]));
        for i in 0..q {
            gr[(i, j)] = dot(&v[i], &gv);
            cr[(i, j)] = dot(&v[i], &cv);
        }
    }
    let mut br = Matrix::zeros(q, ss.input_count());
    for j in 0..ss.input_count() {
        let b = flip(ss.input_column(j).to_vec());
        for i in 0..q {
            br[(i, j)] = dot(&v[i], &b);
        }
    }
    let mut lr = Matrix::zeros(q, ss.output_count());
    for k in 0..ss.output_count() {
        let l = ss.output_column(k);
        for i in 0..q {
            lr[(i, k)] = dot(&v[i], l);
        }
    }
    ReducedSystem::new(gr, cr, br, lr)
}

fn finite_solve(
    factor: &rlckit_circuit::solve::FactoredMna<f64>,
    rhs: &[f64],
) -> Result<Vec<f64>, ReduceError> {
    let x = factor.solve(rhs);
    if x.iter().all(|v| v.is_finite()) {
        Ok(x)
    } else {
        Err(ReduceError::Breakdown { stage: "Krylov solve produced non-finite values" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_circuit::source::SourceWaveform;
    use rlckit_circuit::{Circuit, NodeId, SourceId};
    use rlckit_units::{Capacitance, Inductance, Resistance};

    fn rlc_chain(segments: usize) -> (Circuit, SourceId, NodeId) {
        let mut c = Circuit::new();
        let gnd = c.ground();
        let input = c.add_node();
        let src = c.add_voltage_source(input, gnd, SourceWaveform::unit_step()).unwrap();
        let mut prev = input;
        for _ in 0..segments {
            let mid = c.add_node();
            let next = c.add_node();
            c.add_resistor(prev, mid, Resistance::from_ohms(12.0)).unwrap();
            c.add_inductor(mid, next, Inductance::from_picohenries(80.0)).unwrap();
            c.add_capacitor(next, gnd, Capacitance::from_femtofarads(25.0)).unwrap();
            prev = next;
        }
        (c, src, prev)
    }

    fn state_space(segments: usize) -> DescriptorStateSpace {
        let (c, src, out) = rlc_chain(segments);
        DescriptorStateSpace::new(&c, &[src], &[out]).unwrap()
    }

    #[test]
    fn order_and_dc_gain_are_preserved() {
        let ss = state_space(20);
        let sys = prima(&ss, &ReductionOptions::new(6)).unwrap();
        assert_eq!(sys.order(), 6);
        assert_eq!(sys.input_count(), 1);
        assert_eq!(sys.output_count(), 1);
        // m₀ of the reduction equals the full DC gain (= 1 for the chain).
        let m = sys.moments(0, 0, 1).unwrap();
        assert!((m[0] - 1.0).abs() < 1e-6, "reduced DC gain {}", m[0]);
    }

    #[test]
    fn invalid_options_are_rejected() {
        let ss = state_space(3);
        assert!(matches!(
            prima(&ss, &ReductionOptions::new(0)),
            Err(ReduceError::InvalidOrder { .. })
        ));
        assert!(matches!(
            prima(&ss, &ReductionOptions::new(10_000)),
            Err(ReduceError::InvalidOrder { .. })
        ));
        let mut bad = ReductionOptions::new(2);
        bad.deflation_tol = f64::NAN;
        assert!(matches!(prima(&ss, &bad), Err(ReduceError::NonFinite { .. })));
    }

    #[test]
    fn order_below_the_input_count_is_rejected() {
        // Regression: a MIMO reduction whose order is smaller than the input
        // count used to succeed with zero Krylov content for the dropped
        // inputs — their transfer functions came out wildly wrong as `Ok`.
        let (mut c, src1, out) = rlc_chain(4);
        let gnd = c.ground();
        let extra = c.add_node();
        let src2 = c.add_voltage_source(extra, gnd, SourceWaveform::unit_step()).unwrap();
        c.add_resistor(extra, out, Resistance::from_ohms(100.0)).unwrap();
        let ss = DescriptorStateSpace::new(&c, &[src1, src2], &[out]).unwrap();
        assert_eq!(ss.input_count(), 2);
        assert!(matches!(
            prima(&ss, &ReductionOptions::new(1)),
            Err(ReduceError::InvalidOrder { order: 1, .. })
        ));
        // At order == input count every input gets its starting vector.
        let sys = prima(&ss, &ReductionOptions::new(2)).unwrap();
        let m0 = sys.moments(0, 1, 1).unwrap()[0];
        assert!(m0.abs() > 1e-3, "second input must carry Krylov content, m0 = {m0}");
    }

    #[test]
    fn dense_and_banded_backends_agree() {
        let ss = state_space(25);
        let dense =
            prima(&ss, &ReductionOptions::new(8).with_backend(SolverBackend::Dense)).unwrap();
        let banded =
            prima(&ss, &ReductionOptions::new(8).with_backend(SolverBackend::Banded)).unwrap();
        let md = dense.moments(0, 0, 8).unwrap();
        let mb = banded.moments(0, 0, 8).unwrap();
        for (d, b) in md.iter().zip(mb.iter()) {
            assert!((d - b).abs() <= 1e-9 * d.abs().max(1e-300), "dense moment {d} vs banded {b}");
        }
    }

    #[test]
    fn krylov_exhaustion_truncates_the_order() {
        // A 1-segment chain has a tiny state space; asking for the full
        // dimension must still succeed with q ≤ dim and no breakdown.
        let ss = state_space(1);
        let sys = prima(&ss, &ReductionOptions::new(ss.dim())).unwrap();
        assert!(sys.order() >= 1 && sys.order() <= ss.dim());
    }
}
