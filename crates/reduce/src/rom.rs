//! Reduced systems, pole/residue models and closed-form step-response
//! metrics — the payoff of model-order reduction: `delay_50`, overshoot and
//! settling time **without time-stepping**.
//!
//! A [`ReducedSystem`] is the projected descriptor pencil
//! `(Gᵣ, Cᵣ, Bᵣ, Lᵣᵀ)` of order `q` (tens at most). Its transfer functions
//! are rational with a shared denominator, so each input/output pair
//! collapses to a [`PoleResidueModel`]
//!
//! ```text
//! H(s) = d + Σᵢ rᵢ / (s − pᵢ)
//! ```
//!
//! whose unit-step response is the closed-form sum of exponentials
//! `y(t) = d + Σᵢ Re[zᵢ·(1 − e^{pᵢ t})]` with `zᵢ = −rᵢ/pᵢ`. Delay and
//! settling metrics then come from scalar root-finding on that expression —
//! thousands of times cheaper than a transient run of the full ladder.
//!
//! Pole extraction goes through the dense QR eigensolver on
//! `Aᵣ = Gᵣ⁻¹Cᵣ`, and clusters of (nearly) repeated eigenvalues — which
//! symmetric buses produce by construction — are split with
//! [`rlckit_numeric::poly::separate_clustered`] before the
//! partial-fraction solve, keeping it non-singular.

use rlckit_numeric::complex::Complex;
use rlckit_numeric::eig::eigenvalues;
use rlckit_numeric::lu::LuFactor;
use rlckit_numeric::matrix::Matrix;
use rlckit_numeric::poly::separate_clustered;
use rlckit_numeric::roots::brent;
use rlckit_units::Time;

use crate::error::ReduceError;

/// Relative threshold under which an eigenvalue of `Aᵣ` counts as zero (a
/// pole at infinity, folded into the direct term).
const ZERO_EIGENVALUE_TOL: f64 = 1e-12;

/// Relative cluster-splitting tolerance applied to the eigenvalues of `Aᵣ`
/// before the residue solve.
const CLUSTER_TOL: f64 = 1e-8;

/// The order-`q` projected descriptor system `(Gᵣ, Cᵣ, Bᵣ, Lᵣᵀ)`.
#[derive(Debug, Clone)]
pub struct ReducedSystem {
    gr: Matrix<f64>,
    cr: Matrix<f64>,
    br: Matrix<f64>,
    lr: Matrix<f64>,
}

impl ReducedSystem {
    /// Bundles projected matrices into a reduced system.
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::InvalidOrder`] for inconsistent shapes and
    /// [`ReduceError::NonFinite`] if any entry is not finite.
    pub fn new(
        gr: Matrix<f64>,
        cr: Matrix<f64>,
        br: Matrix<f64>,
        lr: Matrix<f64>,
    ) -> Result<Self, ReduceError> {
        let q = gr.rows();
        if !gr.is_square() || !cr.is_square() || cr.rows() != q || br.rows() != q || lr.rows() != q
        {
            return Err(ReduceError::InvalidOrder {
                order: q,
                reason: "projected matrices must share the reduction order",
            });
        }
        for (m, what) in [(&gr, "Gr"), (&cr, "Cr"), (&br, "Br"), (&lr, "Lr")] {
            if !m.is_finite() {
                return Err(ReduceError::NonFinite { what, value: f64::NAN });
            }
        }
        Ok(Self { gr, cr, br, lr })
    }

    /// The reduction order `q`.
    pub fn order(&self) -> usize {
        self.gr.rows()
    }

    /// Number of inputs (columns of `Bᵣ`).
    pub fn input_count(&self) -> usize {
        self.br.cols()
    }

    /// Number of outputs (columns of `Lᵣ`).
    pub fn output_count(&self) -> usize {
        self.lr.cols()
    }

    /// The projected conductance matrix `Gᵣ`.
    pub fn gr(&self) -> &Matrix<f64> {
        &self.gr
    }

    /// The projected storage matrix `Cᵣ`.
    pub fn cr(&self) -> &Matrix<f64> {
        &self.cr
    }

    /// Transfer-function moments `m₀..m_{count−1}` of one input/output pair,
    /// from the recursion `m_k = (−1)^k·lᵀ(Gᵣ⁻¹Cᵣ)^k Gᵣ⁻¹b`.
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::Breakdown`] if `Gᵣ` is singular and
    /// [`ReduceError::Measurement`] for out-of-range indices.
    pub fn moments(
        &self,
        output: usize,
        input: usize,
        count: usize,
    ) -> Result<Vec<f64>, ReduceError> {
        let (l, b) = self.pair(output, input)?;
        let lu = LuFactor::new(&self.gr)
            .map_err(|_| ReduceError::Breakdown { stage: "reduced G factorisation" })?;
        let mut v = lu.solve(&b);
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(l.iter().zip(v.iter()).map(|(a, x)| a * x).sum());
            let cv = self.cr.mul_vec(&v);
            v = lu.solve(&cv);
            for x in &mut v {
                *x = -*x;
            }
        }
        Ok(out)
    }

    /// The exact reduced transfer function of one pair at a complex
    /// frequency: `H(s) = lᵀ(Gᵣ + s·Cᵣ)⁻¹b`.
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::Breakdown`] if `Gᵣ + s·Cᵣ` is singular (`s`
    /// on a pole) and [`ReduceError::Measurement`] for out-of-range indices.
    pub fn transfer_at(
        &self,
        output: usize,
        input: usize,
        s: Complex,
    ) -> Result<Complex, ReduceError> {
        let (l, b) = self.pair(output, input)?;
        let q = self.order();
        let mut a = Matrix::<Complex>::zeros(q, q);
        for i in 0..q {
            for j in 0..q {
                a[(i, j)] = Complex::from_real(self.gr[(i, j)]) + s * self.cr[(i, j)];
            }
        }
        let bc: Vec<Complex> = b.iter().map(|&v| Complex::from_real(v)).collect();
        let x = rlckit_numeric::lu::solve(&a, &bc)
            .map_err(|_| ReduceError::Breakdown { stage: "reduced transfer evaluation" })?;
        Ok(l.iter().zip(x.iter()).map(|(&li, &xi)| xi.scale(li)).fold(Complex::ZERO, |a, b| a + b))
    }

    /// Collapses one input/output pair to its pole/residue form.
    ///
    /// Poles are `pᵢ = −1/μᵢ` for the eigenvalues `μᵢ` of `Aᵣ = Gᵣ⁻¹Cᵣ`
    /// (near-zero `μ` fold into the direct term), with clusters of (nearly)
    /// repeated eigenvalues split first. Residues are then fitted to exact
    /// samples of the reduced transfer function — `s = 0` plus
    /// logarithmically spaced points `jω` spanning the pole frequencies — a
    /// Cauchy-structured solve that stays well conditioned where the
    /// classical moment (Vandermonde) solve does not, and conjugate pairs
    /// are symmetrised so the impulse response is exactly real.
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::Breakdown`] on singular kernels and propagates
    /// eigensolver failures.
    pub fn pole_residue(
        &self,
        output: usize,
        input: usize,
    ) -> Result<PoleResidueModel, ReduceError> {
        let q = self.order();
        let lu = LuFactor::new(&self.gr)
            .map_err(|_| ReduceError::Breakdown { stage: "reduced G factorisation" })?;
        // Aᵣ = Gᵣ⁻¹Cᵣ, column by column.
        let mut ar = Matrix::zeros(q, q);
        let mut col = vec![0.0; q];
        for j in 0..q {
            for (i, c) in col.iter_mut().enumerate() {
                *c = self.cr[(i, j)];
            }
            let x = lu.solve(&col);
            for (i, &v) in x.iter().enumerate() {
                ar[(i, j)] = v;
            }
        }
        let mut mu = eigenvalues(&ar)?;
        separate_clustered(&mut mu, CLUSTER_TOL);
        let mu_max = mu.iter().map(|m| m.abs()).fold(0.0f64, f64::max);
        // Keep the numerically meaningful eigenvalues; the rest are poles at
        // infinity whose step contribution is a constant.
        let poles: Vec<Complex> = mu
            .iter()
            .filter(|m| m.abs() > ZERO_EIGENVALUE_TOL * mu_max)
            .map(|m| -m.recip())
            .collect();
        let f = poles.len();
        if f == 0 {
            let dc = self.moments(output, input, 1)?[0];
            return PoleResidueModel::from_parts(Vec::new(), Vec::new(), dc);
        }

        // Fit [r₁..r_f, d] to f + 1 exact samples of H(s): the DC point plus
        // f points jωₖ log-spaced across the pole frequency range.
        let p_min = poles.iter().map(|p| p.abs()).fold(f64::INFINITY, f64::min);
        let p_max = poles.iter().map(|p| p.abs()).fold(0.0f64, f64::max);
        let (lo, hi) = (0.3 * p_min, 3.0 * p_max);
        let mut a = Matrix::<Complex>::zeros(f + 1, f + 1);
        let mut rhs = vec![Complex::ZERO; f + 1];
        for k in 0..=f {
            let s = if k == 0 {
                Complex::ZERO
            } else {
                let t = (k - 1) as f64 / (f.max(2) - 1) as f64;
                Complex::new(0.0, lo * (hi / lo).powf(t))
            };
            for (i, p) in poles.iter().enumerate() {
                a[(k, i)] = (s - *p).recip();
            }
            a[(k, f)] = Complex::ONE;
            rhs[k] = self.transfer_at(output, input, s)?;
        }
        let mut fit = rlckit_numeric::lu::solve(&a, &rhs)
            .map_err(|_| ReduceError::Breakdown { stage: "residue fit solve" })?;
        let direct = fit[f].re;
        fit.truncate(f);
        symmetrize_conjugate_pairs(&poles, &mut fit);
        PoleResidueModel::from_parts(poles, fit, direct)
    }

    /// Checked access to one output selector / input column pair.
    fn pair(&self, output: usize, input: usize) -> Result<(Vec<f64>, Vec<f64>), ReduceError> {
        if output >= self.output_count() || input >= self.input_count() {
            return Err(ReduceError::Measurement {
                reason: format!(
                    "pair ({output}, {input}) out of range for a {}x{} reduced system",
                    self.output_count(),
                    self.input_count()
                ),
            });
        }
        let q = self.order();
        let mut l = vec![0.0; q];
        let mut b = vec![0.0; q];
        for i in 0..q {
            l[i] = self.lr[(i, output)];
            b[i] = self.br[(i, input)];
        }
        Ok((l, b))
    }
}

/// Makes the residues of exact conjugate pole pairs exact conjugates (and
/// of real poles exactly real), so the recovered impulse response is real.
/// The QR eigensolver emits conjugate pairs bit-exactly, so exact matching
/// is safe here; an unpaired complex pole is left untouched.
fn symmetrize_conjugate_pairs(poles: &[Complex], residues: &mut [Complex]) {
    let n = poles.len();
    let mut done = vec![false; n];
    for i in 0..n {
        if done[i] {
            continue;
        }
        if poles[i].im == 0.0 {
            residues[i] = Complex::from_real(residues[i].re);
            done[i] = true;
            continue;
        }
        let partner = (i + 1..n)
            .find(|&j| !done[j] && poles[j].re == poles[i].re && poles[j].im == -poles[i].im);
        if let Some(j) = partner {
            let w = (residues[i] + residues[j].conj()).scale(0.5);
            residues[i] = w;
            residues[j] = w.conj();
            done[j] = true;
        }
        done[i] = true;
    }
}

/// A rational transfer function in pole/residue form,
/// `H(s) = d + Σ rᵢ/(s − pᵢ)`, with its closed-form unit-step response.
///
/// Built from a [`ReducedSystem`] pair or from AWE Padé coefficients; also
/// used directly as a *waveform* model for superposed bus responses (where
/// `d` additionally absorbs constant initial levels).
#[derive(Debug, Clone)]
pub struct PoleResidueModel {
    poles: Vec<Complex>,
    residues: Vec<Complex>,
    direct: f64,
}

impl PoleResidueModel {
    /// Builds a model from explicit poles, residues and direct term.
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::NonFinite`] for non-finite entries and
    /// [`ReduceError::InvalidOrder`] for mismatched lengths.
    pub fn from_parts(
        poles: Vec<Complex>,
        residues: Vec<Complex>,
        direct: f64,
    ) -> Result<Self, ReduceError> {
        if poles.len() != residues.len() {
            return Err(ReduceError::InvalidOrder {
                order: poles.len(),
                reason: "poles and residues must pair up",
            });
        }
        if !direct.is_finite() {
            return Err(ReduceError::NonFinite { what: "direct term", value: direct });
        }
        for p in &poles {
            if !p.is_finite() {
                return Err(ReduceError::NonFinite { what: "pole", value: p.re });
            }
        }
        for r in &residues {
            if !r.is_finite() {
                return Err(ReduceError::NonFinite { what: "residue", value: r.re });
            }
        }
        Ok(Self { poles, residues, direct })
    }

    /// The finite poles.
    pub fn poles(&self) -> &[Complex] {
        &self.poles
    }

    /// The residues, paired with [`PoleResidueModel::poles`].
    pub fn residues(&self) -> &[Complex] {
        &self.residues
    }

    /// The direct (constant) term.
    pub fn direct(&self) -> f64 {
        self.direct
    }

    /// Number of finite poles.
    pub fn order(&self) -> usize {
        self.poles.len()
    }

    /// Returns `true` if every pole lies strictly in the left half-plane.
    pub fn is_stable(&self) -> bool {
        self.poles.iter().all(|p| p.re < 0.0)
    }

    /// `H(s)` at a complex frequency.
    pub fn transfer_at(&self, s: Complex) -> Complex {
        let mut h = Complex::from_real(self.direct);
        for (p, r) in self.poles.iter().zip(self.residues.iter()) {
            h += *r / (s - *p);
        }
        h
    }

    /// The steady-state value of the unit-step response,
    /// `y(∞) = d − Σ Re(rᵢ/pᵢ)` (equals `H(0)` for stable models).
    pub fn final_value(&self) -> f64 {
        self.direct
            + self.poles.iter().zip(self.residues.iter()).map(|(p, r)| -(*r / *p).re).sum::<f64>()
    }

    /// The unit-step response `y(t)` in closed form (no time-stepping).
    ///
    /// Returns 0 for `t < 0`.
    pub fn step_response(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        let mut y = self.direct;
        for (p, r) in self.poles.iter().zip(self.residues.iter()) {
            let z = -(*r / *p); // step weight zᵢ = −rᵢ/pᵢ
            y += (z * (Complex::ONE - (p.scale(t)).exp())).re;
        }
        y
    }

    /// The slowest time constant `max 1/|Re pᵢ|` — the natural horizon unit
    /// for scanning the response.
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::Measurement`] if there is no decaying pole.
    pub fn dominant_time_constant(&self) -> Result<f64, ReduceError> {
        self.poles
            .iter()
            .filter(|p| p.re < 0.0)
            .map(|p| 1.0 / -p.re)
            .fold(None, |acc: Option<f64>, t| Some(acc.map_or(t, |a| a.max(t))))
            .ok_or_else(|| ReduceError::Measurement {
                reason: "model has no decaying pole to set a time scale".to_owned(),
            })
    }

    /// First time the step response crosses `level` in the given direction
    /// (scan plus Brent refinement on the closed form).
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::NonFinite`] for a non-finite level and
    /// [`ReduceError::Measurement`] if no crossing is found within a
    /// generous horizon.
    pub fn time_to_cross(&self, level: f64, rising: bool) -> Result<Time, ReduceError> {
        if !level.is_finite() {
            return Err(ReduceError::NonFinite { what: "crossing level", value: level });
        }
        let tau = self.dominant_time_constant()?;
        let mut horizon = 10.0 * tau;
        const SAMPLES: usize = 4096;
        for _ in 0..5 {
            let mut prev_t = 0.0;
            let mut prev_y = self.step_response(0.0);
            for i in 1..=SAMPLES {
                let t = horizon * i as f64 / SAMPLES as f64;
                let y = self.step_response(t);
                let crossed = if rising {
                    prev_y < level && y >= level
                } else {
                    prev_y > level && y <= level
                };
                if crossed {
                    let root = brent(
                        |x| {
                            let v = self.step_response(x) - level;
                            if rising {
                                v
                            } else {
                                -v
                            }
                        },
                        prev_t,
                        t,
                        tau * 1e-12,
                        200,
                    )
                    .map_err(|e| ReduceError::Measurement {
                        reason: format!("could not refine the {level} crossing: {e}"),
                    })?;
                    return Ok(Time::from_seconds(root));
                }
                prev_t = t;
                prev_y = y;
            }
            horizon *= 4.0;
        }
        Err(ReduceError::Measurement {
            reason: format!("step response never crossed {level} within {horizon:.3e} s"),
        })
    }

    /// Time for the step response to first reach `fraction` of its final
    /// value (e.g. `0.5` for the 50% propagation delay).
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::Measurement`] for a fraction outside `(0, 1)`
    /// or an unlocatable crossing.
    pub fn delay_to_fraction(&self, fraction: f64) -> Result<Time, ReduceError> {
        if !(fraction > 0.0 && fraction < 1.0) {
            return Err(ReduceError::Measurement {
                reason: format!("threshold fraction {fraction} must lie strictly in (0, 1)"),
            });
        }
        self.time_to_cross(fraction * self.final_value(), true)
    }

    /// The 50% propagation delay of the unit-step response.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PoleResidueModel::delay_to_fraction`].
    pub fn delay_50(&self) -> Result<Time, ReduceError> {
        self.delay_to_fraction(0.5)
    }

    /// All step-response metrics at once: 50% delay, overshoot above the
    /// final value (per cent) and the 2% settling time.
    ///
    /// # Errors
    ///
    /// Propagates [`ReduceError::Measurement`] from the individual metrics.
    pub fn step_metrics(&self) -> Result<StepMetrics, ReduceError> {
        let delay_50 = self.delay_50()?;
        let tau = self.dominant_time_constant()?;
        let final_value = self.final_value();
        // One dense scan covers both the peak and the settling boundary.
        const SAMPLES: usize = 8192;
        const SETTLE_BAND: f64 = 0.02;
        let mut horizon = 12.0 * tau;
        for _ in 0..5 {
            let dt = horizon / SAMPLES as f64;
            let mut peak = f64::MIN;
            let mut last_outside: Option<usize> = None;
            for i in 0..=SAMPLES {
                let y = self.step_response(i as f64 * dt);
                peak = peak.max(y);
                if (y - final_value).abs() > SETTLE_BAND * final_value.abs() {
                    last_outside = Some(i);
                }
            }
            match last_outside {
                Some(i) if i == SAMPLES => {
                    // Not settled inside this horizon yet; widen and retry.
                    horizon *= 4.0;
                }
                Some(i) => {
                    // Refine the band boundary between samples i and i+1.
                    let g = |t: f64| {
                        (self.step_response(t) - final_value).abs()
                            - SETTLE_BAND * final_value.abs()
                    };
                    let lo = i as f64 * dt;
                    let hi = (i + 1) as f64 * dt;
                    let settle = brent(g, lo, hi, tau * 1e-9, 200).unwrap_or(hi);
                    let overshoot = (100.0 * (peak - final_value) / final_value.abs()).max(0.0);
                    return Ok(StepMetrics {
                        delay_50,
                        overshoot_percent: overshoot,
                        settling_time: Time::from_seconds(settle),
                        final_value,
                    });
                }
                None => {
                    // Inside the band from t = 0 on: settled immediately.
                    let overshoot = (100.0 * (peak - final_value) / final_value.abs()).max(0.0);
                    return Ok(StepMetrics {
                        delay_50,
                        overshoot_percent: overshoot,
                        settling_time: Time::ZERO,
                        final_value,
                    });
                }
            }
        }
        Err(ReduceError::Measurement {
            reason: "step response did not settle within the scan horizon".to_owned(),
        })
    }

    /// A copy with every residue and the direct term scaled by `k` —
    /// superposition building block for multi-input responses.
    #[must_use]
    pub fn scaled(&self, k: f64) -> Self {
        Self {
            poles: self.poles.clone(),
            residues: self.residues.iter().map(|r| r.scale(k)).collect(),
            direct: self.direct * k,
        }
    }

    /// Superposes waveform models (shared time axis): concatenates all
    /// pole/residue terms, sums direct terms and adds `offset` — used to
    /// assemble a bus victim waveform from per-aggressor responses.
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::Measurement`] for an empty model list and
    /// [`ReduceError::NonFinite`] for a non-finite offset.
    pub fn superpose(models: &[Self], offset: f64) -> Result<Self, ReduceError> {
        if models.is_empty() {
            return Err(ReduceError::Measurement {
                reason: "cannot superpose an empty set of models".to_owned(),
            });
        }
        if !offset.is_finite() {
            return Err(ReduceError::NonFinite { what: "superposition offset", value: offset });
        }
        let mut poles = Vec::new();
        let mut residues = Vec::new();
        let mut direct = offset;
        for m in models {
            poles.extend_from_slice(&m.poles);
            residues.extend_from_slice(&m.residues);
            direct += m.direct;
        }
        Self::from_parts(poles, residues, direct)
    }
}

/// Step-response metrics of a reduced model, computed in closed form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepMetrics {
    /// Time to first reach 50% of the final value.
    pub delay_50: Time,
    /// Peak overshoot above the final value, in per cent (0 when monotone).
    pub overshoot_percent: f64,
    /// Time after which the response stays within ±2% of the final value.
    pub settling_time: Time,
    /// Steady-state value of the unit-step response.
    pub final_value: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single-pole RC model: H(s) = (1/τ)/(s + 1/τ), y(t) = 1 − e^{−t/τ}.
    fn rc_model(tau: f64) -> PoleResidueModel {
        PoleResidueModel::from_parts(
            vec![Complex::from_real(-1.0 / tau)],
            vec![Complex::from_real(1.0 / tau)],
            0.0,
        )
        .unwrap()
    }

    /// Underdamped two-pole model with ωn = 1, ζ: poles −ζ ± j√(1−ζ²),
    /// residues chosen so H(s) = 1/(s² + 2ζs + 1).
    fn two_pole(zeta: f64) -> PoleResidueModel {
        let wd = (1.0 - zeta * zeta).sqrt();
        let p = Complex::new(-zeta, wd);
        // H = 1/((s−p)(s−p̄)); residue at p is 1/(p − p̄) = 1/(2j·wd).
        let r = (Complex::new(0.0, 2.0 * wd)).recip();
        PoleResidueModel::from_parts(vec![p, p.conj()], vec![r, -r], 0.0).unwrap()
    }

    #[test]
    fn rc_step_response_and_delay() {
        let tau = 2.5e-9;
        let m = rc_model(tau);
        assert!((m.final_value() - 1.0).abs() < 1e-12);
        assert!((m.step_response(tau) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        let d = m.delay_50().unwrap();
        assert!((d.seconds() - tau * std::f64::consts::LN_2).abs() < 1e-15 * 1e9);
        assert!(m.is_stable());
        let metrics = m.step_metrics().unwrap();
        assert_eq!(metrics.overshoot_percent, 0.0);
        // 2% settling of a first-order lag is ln(50)·τ ≈ 3.912 τ.
        assert!((metrics.settling_time.seconds() - tau * 50f64.ln()).abs() < 0.01 * tau);
    }

    #[test]
    fn underdamped_two_pole_overshoot_matches_theory() {
        let zeta = 0.3;
        let m = two_pole(zeta);
        assert!((m.final_value() - 1.0).abs() < 1e-12);
        let metrics = m.step_metrics().unwrap();
        let expected = 100.0 * (-std::f64::consts::PI * zeta / (1.0 - zeta * zeta).sqrt()).exp();
        assert!(
            (metrics.overshoot_percent - expected).abs() < 0.1,
            "overshoot {} vs theory {expected}",
            metrics.overshoot_percent
        );
        // Analytic 50% delay for ζ=0.3, ωn=1 is near 1.2 (first crossing).
        let d = metrics.delay_50.seconds();
        let y = m.step_response(d);
        assert!((y - 0.5).abs() < 1e-9, "response at the reported delay is {y}");
    }

    #[test]
    fn transfer_function_evaluation() {
        let m = rc_model(1.0);
        // H(0) = 1, H(j/τ) has magnitude 1/√2.
        assert!((m.transfer_at(Complex::ZERO).re - 1.0).abs() < 1e-12);
        assert!((m.transfer_at(Complex::J).abs() - 1.0 / 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn falling_crossing_direction() {
        // 1 − y falls through 0.5 exactly at the rising 50% point.
        let tau = 1.0;
        let m = rc_model(tau);
        let down = PoleResidueModel::from_parts(
            m.poles().to_vec(),
            m.residues().iter().map(|r| -*r).collect(),
            1.0,
        )
        .unwrap();
        let t = down.time_to_cross(0.5, false).unwrap();
        assert!((t.seconds() - tau * std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn scaling_and_superposition() {
        let a = rc_model(1.0).scaled(2.0);
        assert!((a.final_value() - 2.0).abs() < 1e-12);
        let b = rc_model(0.5).scaled(-1.0);
        let combined = PoleResidueModel::superpose(&[a, b], 1.0).unwrap();
        // Final: 2 − 1 + 1 = 2.
        assert!((combined.final_value() - 2.0).abs() < 1e-12);
        assert_eq!(combined.order(), 2);
        assert!(PoleResidueModel::superpose(&[], 0.0).is_err());
    }

    #[test]
    fn invalid_inputs_are_typed_errors() {
        assert!(matches!(
            PoleResidueModel::from_parts(vec![Complex::ONE], vec![], 0.0),
            Err(ReduceError::InvalidOrder { .. })
        ));
        assert!(matches!(
            PoleResidueModel::from_parts(vec![], vec![], f64::NAN),
            Err(ReduceError::NonFinite { .. })
        ));
        assert!(matches!(
            PoleResidueModel::from_parts(
                vec![Complex::new(f64::INFINITY, 0.0)],
                vec![Complex::ONE],
                0.0
            ),
            Err(ReduceError::NonFinite { .. })
        ));
        let m = rc_model(1.0);
        assert!(matches!(m.delay_to_fraction(1.5), Err(ReduceError::Measurement { .. })));
        assert!(matches!(m.time_to_cross(f64::NAN, true), Err(ReduceError::NonFinite { .. })));
        // A model with only a growing pole has no time scale.
        let unstable = PoleResidueModel::from_parts(
            vec![Complex::from_real(1.0)],
            vec![Complex::from_real(-1.0)],
            0.0,
        )
        .unwrap();
        assert!(!unstable.is_stable());
        assert!(unstable.dominant_time_constant().is_err());
    }

    #[test]
    fn reduced_system_shape_validation() {
        let ok = ReducedSystem::new(
            Matrix::identity(2),
            Matrix::identity(2),
            Matrix::zeros(2, 1),
            Matrix::zeros(2, 1),
        )
        .unwrap();
        assert_eq!(ok.order(), 2);
        assert_eq!(ok.input_count(), 1);
        assert_eq!(ok.output_count(), 1);
        assert!(matches!(
            ReducedSystem::new(
                Matrix::identity(2),
                Matrix::identity(3),
                Matrix::zeros(2, 1),
                Matrix::zeros(2, 1),
            ),
            Err(ReduceError::InvalidOrder { .. })
        ));
        let mut nan = Matrix::identity(2);
        nan[(0, 1)] = f64::NAN;
        assert!(matches!(
            ReducedSystem::new(nan, Matrix::identity(2), Matrix::zeros(2, 1), Matrix::zeros(2, 1)),
            Err(ReduceError::NonFinite { .. })
        ));
    }

    #[test]
    fn hand_built_reduced_system_round_trips_through_poles() {
        // Gr = diag(1, 2), Cr = diag(1, 1), b = l = [1, 1]ᵀ:
        // H(s) = 1/(1+s) + 1/(2+s), poles −1 and −2.
        let gr = Matrix::from_rows(2, 2, vec![1.0, 0.0, 0.0, 2.0]);
        let cr = Matrix::identity(2);
        let b = Matrix::from_rows(2, 1, vec![1.0, 1.0]);
        let l = Matrix::from_rows(2, 1, vec![1.0, 1.0]);
        let sys = ReducedSystem::new(gr, cr, b, l).unwrap();
        let m = sys.moments(0, 0, 3).unwrap();
        // m0 = 1 + 1/2, m1 = −(1 + 1/4), m2 = 1 + 1/8.
        assert!((m[0] - 1.5).abs() < 1e-12);
        assert!((m[1] + 1.25).abs() < 1e-12);
        assert!((m[2] - 1.125).abs() < 1e-12);
        let pr = sys.pole_residue(0, 0).unwrap();
        assert_eq!(pr.order(), 2);
        let mut re: Vec<f64> = pr.poles().iter().map(|p| p.re).collect();
        re.sort_by(f64::total_cmp);
        assert!((re[0] + 2.0).abs() < 1e-9 && (re[1] + 1.0).abs() < 1e-9, "poles {re:?}");
        // Transfer function matches at a probe frequency.
        let s = Complex::new(0.3, 1.1);
        let exact = (s + 1.0).recip() + (s + 2.0).recip();
        assert!((pr.transfer_at(s) - exact).abs() < 1e-9);
        assert!((pr.final_value() - 1.5).abs() < 1e-9);
        // Out-of-range pairs are rejected.
        assert!(sys.pole_residue(1, 0).is_err());
        assert!(sys.moments(0, 3, 2).is_err());
    }
}
