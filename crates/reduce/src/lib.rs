//! Krylov moment-matching model-order reduction for `rlckit`.
//!
//! The paper's two-pole transfer function (Eqs. 1/6/7) is exactly an
//! order-2 moment-matched reduction of the full RLC line. This crate
//! generalises that idea into a subsystem: project the descriptor system
//! `G·x + C·ẋ = B·u, y = Lᵀx` of any ladder or coupled bus onto a small
//! Krylov subspace, extract poles and residues, and read `delay_50`,
//! overshoot and settling time off a **closed-form sum of exponentials** —
//! no time-stepping. At 1000 ladder sections the reduced evaluation is
//! orders of magnitude faster than the transient reference (see
//! `BENCH_mor.json`), which is what repeater-optimisation loops and large
//! sweeps need.
//!
//! * [`krylov`] — the PRIMA-style block-Arnoldi congruence projector
//!   ([`prima`]), built on the banded `G`-solves and stamp-level `C`
//!   products of [`DescriptorStateSpace`](rlckit_circuit::state_space);
//! * [`awe`] — the AWE `[q−1/q]` Padé reducer ([`awe::awe`]) and the
//!   paper's own `[0/q]` denominator form ([`awe::pade_denominator`]),
//!   for cross-validation against `TransferMoments`;
//! * [`rom`] — [`ReducedSystem`], [`PoleResidueModel`] and the closed-form
//!   [`StepMetrics`];
//! * [`ladder`] — one-call reduction of a [`LadderSpec`]
//!   ([`reduce_ladder`]);
//! * [`bus`] — MIMO reduction of coupled buses ([`reduce_bus`]) with
//!   switching-pattern superposition;
//! * [`error`] — the [`ReduceError`] type (non-finite inputs rejected at
//!   every entry point).
//!
//! [`LadderSpec`]: rlckit_circuit::ladder::LadderSpec
//!
//! # Example: 50% delay of a 200-section ladder without time-stepping
//!
//! ```
//! use rlckit_circuit::ladder::LadderSpec;
//! use rlckit_circuit::SolverBackend;
//! use rlckit_reduce::reduce_ladder;
//! use rlckit_units::{Capacitance, Inductance, Resistance};
//!
//! # fn main() -> Result<(), rlckit_reduce::ReduceError> {
//! let mut spec = LadderSpec::new(
//!     Resistance::from_ohms(500.0),
//!     Inductance::from_nanohenries(10.0),
//!     Capacitance::from_picofarads(1.0),
//!     Resistance::from_ohms(250.0),
//!     Capacitance::from_picofarads(0.1),
//! );
//! spec.segments = 200;
//! let reduced = reduce_ladder(&spec, 8, SolverBackend::Auto)?;
//! let metrics = reduced.metrics()?;
//! assert!(metrics.delay_50.picoseconds() > 100.0);
//! assert!(metrics.overshoot_percent >= 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod awe;
pub mod bus;
pub mod error;
pub mod krylov;
pub mod ladder;
pub mod rom;

pub use bus::{reduce_bus, ReducedBus};
pub use error::ReduceError;
pub use krylov::{prima, ReductionOptions};
pub use ladder::{reduce_ladder, ReducedLadder};
pub use rom::{PoleResidueModel, ReducedSystem, StepMetrics};
