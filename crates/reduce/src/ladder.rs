//! One-call reduction of the paper's gate-driven RLC ladder.
//!
//! [`reduce_ladder`] builds the [`LadderSpec`] circuit, extracts its
//! descriptor state space (source → far-end output), runs the PRIMA
//! projector and collapses the result to a [`PoleResidueModel`] — after
//! which `delay_50`, overshoot and settling time are closed-form
//! evaluations instead of a transient run. This is the drop-in fast path
//! for [`measure_step_delay`](rlckit_circuit::ladder::measure_step_delay)
//! wherever a ≲1% delay error is acceptable (see the `mor_scaling` bench
//! for the measured speedup).

use rlckit_circuit::ladder::LadderSpec;
use rlckit_circuit::state_space::DescriptorStateSpace;
use rlckit_numeric::solver::SolverBackend;

use crate::error::ReduceError;
use crate::krylov::{prima, ReductionOptions};
use crate::rom::{PoleResidueModel, ReducedSystem, StepMetrics};

/// A reduced-order model of one driven ladder, ready for metric queries.
#[derive(Debug, Clone)]
pub struct ReducedLadder {
    system: ReducedSystem,
    model: PoleResidueModel,
}

impl ReducedLadder {
    /// The projected descriptor system.
    pub fn system(&self) -> &ReducedSystem {
        &self.system
    }

    /// The pole/residue form of the source → output transfer function
    /// (unit-step normalised; scale by the supply for absolute volts).
    pub fn model(&self) -> &PoleResidueModel {
        &self.model
    }

    /// Step-response metrics in closed form: 50% delay, overshoot and
    /// settling time. Thresholds are fractions of the final value, matching
    /// the simulator's supply-relative measurements (the ladder's DC gain
    /// is 1 up to `GMIN`).
    ///
    /// # Errors
    ///
    /// Propagates [`ReduceError::Measurement`] from the metric evaluation.
    pub fn metrics(&self) -> Result<StepMetrics, ReduceError> {
        self.model.step_metrics()
    }
}

/// Reduces a ladder specification to an order-`q` model.
///
/// # Errors
///
/// Propagates construction errors from the spec, reduction errors from
/// PRIMA and pole-extraction errors.
pub fn reduce_ladder(
    spec: &LadderSpec,
    order: usize,
    backend: SolverBackend,
) -> Result<ReducedLadder, ReduceError> {
    let line = spec.build()?;
    let ss = DescriptorStateSpace::new(&line.circuit, &[line.source], &[line.output])?;
    let system = prima(&ss, &ReductionOptions::new(order).with_backend(backend))?;
    let model = system.pole_residue(0, 0)?;
    Ok(ReducedLadder { system, model })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_units::{Capacitance, Inductance, Resistance};

    fn spec() -> LadderSpec {
        LadderSpec::new(
            Resistance::from_ohms(500.0),
            Inductance::from_nanohenries(10.0),
            Capacitance::from_picofarads(1.0),
            Resistance::from_ohms(250.0),
            Capacitance::from_picofarads(0.1),
        )
    }

    #[test]
    fn reduction_produces_a_stable_unit_gain_model() {
        let reduced = reduce_ladder(&spec(), 6, SolverBackend::Auto).unwrap();
        assert_eq!(reduced.system().order(), 6);
        let model = reduced.model();
        assert!(model.is_stable(), "poles {:?}", model.poles());
        assert!((model.final_value() - 1.0).abs() < 1e-6);
        let metrics = reduced.metrics().unwrap();
        assert!(metrics.delay_50.seconds() > 0.0);
        assert!(metrics.settling_time.seconds() > metrics.delay_50.seconds());
    }

    #[test]
    fn invalid_specs_propagate_as_circuit_errors() {
        let mut bad = spec();
        bad.total_resistance = Resistance::ZERO;
        assert!(matches!(
            reduce_ladder(&bad, 4, SolverBackend::Auto),
            Err(ReduceError::Circuit(_))
        ));
    }
}
