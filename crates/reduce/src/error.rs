//! Error type shared by the model-order-reduction pipeline.

use std::error::Error;
use std::fmt;

use rlckit_circuit::CircuitError;
use rlckit_coupling::CouplingError;
use rlckit_numeric::eig::EigError;

/// Error returned by reduction, pole extraction and reduced-model evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum ReduceError {
    /// The requested reduction order is unusable (zero, or beyond the full
    /// system dimension).
    InvalidOrder {
        /// The requested order.
        order: usize,
        /// Human-readable description of the problem.
        reason: &'static str,
    },
    /// An input value is NaN or infinite — rejected at the entry point,
    /// matching the `SourceWaveform::validate` convention.
    NonFinite {
        /// Which parameter was non-finite.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The Krylov iteration or a dense kernel broke down.
    Breakdown {
        /// Which stage broke down.
        stage: &'static str,
    },
    /// A measurement on the reduced model could not be completed.
    Measurement {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// Error propagated from circuit construction or MNA assembly.
    Circuit(CircuitError),
    /// Error propagated from coupled-bus construction.
    Coupling(CouplingError),
    /// Error propagated from the eigensolver.
    Eig(EigError),
}

impl fmt::Display for ReduceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidOrder { order, reason } => {
                write!(f, "invalid reduction order {order}: {reason}")
            }
            Self::NonFinite { what, value } => write!(f, "non-finite {what}: {value}"),
            Self::Breakdown { stage } => write!(f, "reduction breakdown during {stage}"),
            Self::Measurement { reason } => write!(f, "reduced-model measurement failed: {reason}"),
            Self::Circuit(e) => write!(f, "circuit error: {e}"),
            Self::Coupling(e) => write!(f, "coupling error: {e}"),
            Self::Eig(e) => write!(f, "eigensolver error: {e}"),
        }
    }
}

impl Error for ReduceError {}

impl From<CircuitError> for ReduceError {
    fn from(e: CircuitError) -> Self {
        Self::Circuit(e)
    }
}

impl From<CouplingError> for ReduceError {
    fn from(e: CouplingError) -> Self {
        Self::Coupling(e)
    }
}

impl From<EigError> for ReduceError {
    fn from(e: EigError) -> Self {
        Self::Eig(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ReduceError::InvalidOrder { order: 0, reason: "zero" }.to_string().contains('0'));
        assert!(ReduceError::NonFinite { what: "moment", value: f64::NAN }
            .to_string()
            .contains("moment"));
        assert!(ReduceError::Breakdown { stage: "arnoldi" }.to_string().contains("arnoldi"));
        assert!(ReduceError::Measurement { reason: "no crossing".into() }
            .to_string()
            .contains("no crossing"));
        let c: ReduceError = CircuitError::EmptyCircuit.into();
        assert!(c.to_string().contains("no elements"));
        let e: ReduceError = EigError::NonFinite.into();
        assert!(e.to_string().contains("eigensolver"));
        let k: ReduceError = CouplingError::InvalidParameter { what: "k", value: 2.0 }.into();
        assert!(k.to_string().contains("coupling"));
    }
}
