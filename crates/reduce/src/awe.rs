//! AWE-style single-expansion Padé reduction, for cross-checking PRIMA.
//!
//! Asymptotic waveform evaluation computes the transfer-function moments
//! `m₀..m_{2q−1}` of the full system by repeated `G`-solves and fits the
//! `[q−1/q]` Padé approximant: a Hankel solve for the denominator, companion
//! -matrix roots for the poles and a Vandermonde solve for the residues.
//! It matches twice as many moments per order as one-sided Arnoldi but
//! inherits AWE's famous ill-conditioning as `q` grows — which is exactly
//! why PRIMA ([`crate::krylov::prima`]) is the workhorse and this module is
//! the cross-check (and the fastest route to the paper's own two-pole form,
//! see [`pade_denominator`]).
//!
//! All computations run in the scaled variable `x = s·σ` (σ = |m₁|, the
//! Elmore time scale), keeping every Hankel/Vandermonde entry near unit
//! magnitude despite moments that physically decay like `b₁^k`.

use rlckit_circuit::state_space::DescriptorStateSpace;
use rlckit_numeric::complex::Complex;
use rlckit_numeric::lu;
use rlckit_numeric::matrix::Matrix;
use rlckit_numeric::poly::{separate_clustered, Polynomial};
use rlckit_numeric::solver::SolverBackend;

use crate::error::ReduceError;
use crate::rom::PoleResidueModel;

/// Transfer-function moments `m₀..m_{count−1}` of one input/output pair of
/// the **full** system, via `count` sparse `G`-solves
/// (`m_k = (−1)^k·lᵀ(G⁻¹C)^k G⁻¹ b`).
///
/// # Errors
///
/// Returns [`ReduceError::Measurement`] for out-of-range indices,
/// [`ReduceError::Breakdown`] for non-finite solve results and propagates
/// circuit errors from the `G` factorisation.
pub fn moments_of(
    ss: &DescriptorStateSpace,
    output: usize,
    input: usize,
    count: usize,
    backend: SolverBackend,
) -> Result<Vec<f64>, ReduceError> {
    if output >= ss.output_count() || input >= ss.input_count() {
        return Err(ReduceError::Measurement {
            reason: format!(
                "pair ({output}, {input}) out of range for a {}x{} state space",
                ss.output_count(),
                ss.input_count()
            ),
        });
    }
    let factor = ss.factor_g(backend)?;
    let l = ss.output_column(output);
    let mut v = factor.solve(ss.input_column(input));
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if !v.iter().all(|x| x.is_finite()) {
            return Err(ReduceError::Breakdown { stage: "moment recursion" });
        }
        out.push(l.iter().zip(v.iter()).map(|(a, x)| a * x).sum());
        let cv = ss.apply_c(&v);
        v = factor.solve(&cv);
        for x in &mut v {
            *x = -*x;
        }
    }
    Ok(out)
}

/// The `[0/q]` Padé denominator `1 + b₁s + … + b_q s^q` of a zero-free
/// transfer function, from its moments `m₀..m_q`.
///
/// For the paper's driven line (numerator exactly 1) this reproduces the
/// closed-form `TransferMoments` coefficients: `b₁`, `b₂`, `b₃` for
/// `q = 3`. Coefficients are returned lowest degree first.
///
/// # Errors
///
/// Returns [`ReduceError::InvalidOrder`] if fewer than `q + 1` moments are
/// supplied or `q == 0`, and [`ReduceError::NonFinite`] for non-finite
/// moments or a zero `m₀`.
pub fn pade_denominator(moments: &[f64], q: usize) -> Result<Polynomial, ReduceError> {
    validate_moments(moments, q, q + 1)?;
    let m0 = moments[0];
    if m0 == 0.0 {
        return Err(ReduceError::NonFinite { what: "zeroth moment (DC gain)", value: m0 });
    }
    let mut d = vec![1.0f64];
    for k in 1..=q {
        let mut acc = 0.0;
        for j in 0..k {
            acc += d[j] * moments[k - j];
        }
        d.push(-acc / m0);
    }
    Ok(Polynomial::new(d))
}

/// The order-`q` AWE (`[q−1/q]` Padé) pole/residue model from the moment
/// sequence `m₀..m_{2q−1}`.
///
/// Matches all `2q` supplied moments. Clustered denominator roots are split
/// with the standard perturbation before the residue solve, so repeated
/// poles (symmetric buses) do not make the Vandermonde singular.
///
/// # Errors
///
/// Returns [`ReduceError::InvalidOrder`] for too few moments,
/// [`ReduceError::NonFinite`] for non-finite moments and
/// [`ReduceError::Breakdown`] if the Hankel or Vandermonde system is
/// singular (the classic AWE failure mode at high order).
pub fn awe_from_moments(moments: &[f64], q: usize) -> Result<PoleResidueModel, ReduceError> {
    validate_moments(moments, q, 2 * q)?;
    // Work in x = s·σ so the Hankel entries sit near unit magnitude.
    let sigma = moments[1].abs();
    let sigma = if sigma > 0.0 && sigma.is_finite() { sigma } else { 1.0 };
    let scaled: Vec<f64> =
        moments.iter().enumerate().map(|(k, m)| m / sigma.powi(k as i32)).collect();

    // Hankel solve for the denominator of the scaled variable:
    // Σ_{j=1..q} d_j·μ_{k−j} = −μ_k for k = q..2q−1.
    let mut a = Matrix::zeros(q, q);
    let mut rhs = vec![0.0; q];
    for k in q..2 * q {
        for j in 1..=q {
            a[(k - q, j - 1)] = scaled[k - j];
        }
        rhs[k - q] = -scaled[k];
    }
    let d =
        lu::solve(&a, &rhs).map_err(|_| ReduceError::Breakdown { stage: "AWE Hankel solve" })?;
    let mut coeffs = vec![1.0];
    coeffs.extend_from_slice(&d);
    let denominator = Polynomial::new(coeffs);
    let mut roots = denominator.roots()?;
    separate_clustered(&mut roots, 1e-8);
    let f = roots.len();
    if f == 0 {
        return Err(ReduceError::Breakdown { stage: "AWE denominator has no roots" });
    }

    // Residues: Σᵢ zᵢ·wᵢ^k = μ_k for k = 0..f−1, with wᵢ = 1/xᵢ (xᵢ the
    // scaled roots), then pᵢ = xᵢ/σ and rᵢ = −zᵢ·pᵢ.
    let mut vand = Matrix::<Complex>::zeros(f, f);
    let mut vrhs = vec![Complex::ZERO; f];
    let w: Vec<Complex> = roots.iter().map(|x| x.recip()).collect();
    let mut power = vec![Complex::ONE; f];
    for k in 0..f {
        for (i, &p) in power.iter().enumerate() {
            vand[(k, i)] = p;
        }
        vrhs[k] = Complex::from_real(scaled[k]);
        for (p, wi) in power.iter_mut().zip(w.iter()) {
            *p *= *wi;
        }
    }
    let z = lu::solve(&vand, &vrhs)
        .map_err(|_| ReduceError::Breakdown { stage: "AWE residue Vandermonde solve" })?;
    let mut poles = Vec::with_capacity(f);
    let mut residues = Vec::with_capacity(f);
    for (zi, xi) in z.iter().zip(roots.iter()) {
        let p = xi.scale(1.0 / sigma);
        poles.push(p);
        residues.push(-(*zi * p));
    }
    PoleResidueModel::from_parts(poles, residues, 0.0)
}

/// End-to-end AWE: full-system moments plus [`awe_from_moments`].
///
/// # Errors
///
/// Propagates the errors of [`moments_of`] and [`awe_from_moments`].
pub fn awe(
    ss: &DescriptorStateSpace,
    output: usize,
    input: usize,
    q: usize,
    backend: SolverBackend,
) -> Result<PoleResidueModel, ReduceError> {
    if q == 0 {
        return Err(ReduceError::InvalidOrder { order: 0, reason: "AWE order must be at least 1" });
    }
    let moments = moments_of(ss, output, input, 2 * q, backend)?;
    awe_from_moments(&moments, q)
}

fn validate_moments(moments: &[f64], q: usize, needed: usize) -> Result<(), ReduceError> {
    if q == 0 {
        return Err(ReduceError::InvalidOrder { order: 0, reason: "order must be at least 1" });
    }
    if moments.len() < needed {
        return Err(ReduceError::InvalidOrder {
            order: q,
            reason: "not enough moments for the requested order",
        });
    }
    for &m in moments {
        if !m.is_finite() {
            return Err(ReduceError::NonFinite { what: "moment", value: m });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pade_denominator_recovers_known_coefficients() {
        // H(s) = 1/(1 + 2s + 3s² + 4s³): moments from long division.
        // m0=1, m1=−2, m2=2²−3=1, m3=−(2³)+2·2·3−4 = 8−… compute: the moment
        // recursion m_k = −Σ_{j=1..k} b_j m_{k−j} with b=[2,3,4].
        let b = [2.0, 3.0, 4.0];
        let mut m = vec![1.0];
        for k in 1..=3usize {
            let mut acc = 0.0;
            for (j, bj) in b.iter().enumerate().take(k) {
                acc += bj * m[k - 1 - j];
            }
            m.push(-acc);
        }
        let d = pade_denominator(&m, 3).unwrap();
        assert_eq!(d.degree(), 3);
        assert!((d.coeffs()[1] - 2.0).abs() < 1e-12);
        assert!((d.coeffs()[2] - 3.0).abs() < 1e-12);
        assert!((d.coeffs()[3] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn awe_matches_all_2q_moments_of_a_known_model() {
        // H(s) = 1/(s+1) + 2/(s+3): m_k = −(−1)^{k+1}(1 + 2/3^{k+1}) …
        // compute moments directly from the pole/residue form.
        let poles = [-1.0f64, -3.0];
        let residues = [1.0f64, 2.0];
        let moments: Vec<f64> = (0i32..4)
            .map(|k| poles.iter().zip(residues.iter()).map(|(p, r)| -r / p.powi(k + 1)).sum())
            .collect();
        let model = awe_from_moments(&moments, 2).unwrap();
        assert_eq!(model.order(), 2);
        let mut re: Vec<f64> = model.poles().iter().map(|p| p.re).collect();
        re.sort_by(f64::total_cmp);
        assert!((re[0] + 3.0).abs() < 1e-8 && (re[1] + 1.0).abs() < 1e-8, "poles {re:?}");
        // All 2q = 4 moments are matched.
        for (k, want) in moments.iter().enumerate() {
            let got: f64 = model
                .poles()
                .iter()
                .zip(model.residues().iter())
                .map(|(p, r)| {
                    let mut pk = Complex::ONE; // p^{k+1}
                    for _ in 0..=k {
                        pk *= *p;
                    }
                    -(*r / pk).re
                })
                .sum();
            assert!((got - want).abs() < 1e-9 * want.abs().max(1.0), "m{k}: {got} vs {want}");
        }
    }

    #[test]
    fn invalid_moment_sequences_are_typed_errors() {
        assert!(matches!(pade_denominator(&[1.0, 2.0], 3), Err(ReduceError::InvalidOrder { .. })));
        assert!(matches!(pade_denominator(&[1.0], 0), Err(ReduceError::InvalidOrder { .. })));
        assert!(matches!(pade_denominator(&[0.0, 1.0], 1), Err(ReduceError::NonFinite { .. })));
        assert!(matches!(
            pade_denominator(&[1.0, f64::NAN], 1),
            Err(ReduceError::NonFinite { .. })
        ));
        assert!(matches!(
            awe_from_moments(&[1.0, -1.0, 1.0], 2),
            Err(ReduceError::InvalidOrder { .. })
        ));
    }
}
