//! Reduced-order models of coupled multi-conductor buses.
//!
//! A bus is a MIMO system: every signal wire both drives and receives. One
//! PRIMA reduction with the block `B` of *all* signal sources and the block
//! `L` of *all* signal outputs captures every aggressor→victim path at
//! once; a switching pattern then becomes a **superposition** of per-input
//! step responses — rising wires add `+Vdd·yᵥⱼ(t)`, falling wires add
//! `Vdd·gᵥⱼ − Vdd·yᵥⱼ(t)` (they start charged), quiet wires contribute
//! their static level. The result is one [`PoleResidueModel`] *waveform*
//! per victim and pattern, so worst-case delay push-out across many
//! patterns costs closed-form evaluations instead of one transient per
//! pattern.

use rlckit_circuit::state_space::DescriptorStateSpace;
use rlckit_coupling::bus::CoupledBus;
use rlckit_coupling::netlist::{build_bus_circuit, BusDrive};
use rlckit_coupling::scenario::{LineDrive, SwitchingPattern};
use rlckit_numeric::solver::SolverBackend;
use rlckit_units::{Time, Voltage};

use crate::error::ReduceError;
use crate::krylov::{prima, ReductionOptions};
use crate::rom::{PoleResidueModel, ReducedSystem};

/// A reduced MIMO model of a driven bus (all signal sources → all signal
/// outputs).
#[derive(Debug, Clone)]
pub struct ReducedBus {
    system: ReducedSystem,
    supply: Voltage,
    signals: usize,
    /// Pole/residue form of every (output, input) pair, extracted once at
    /// construction: the poles are shared system-wide and the eigensolve is
    /// the dominant cost, so pattern queries must not repeat it.
    models: Vec<Vec<PoleResidueModel>>,
}

/// Reduces a bus + drive to an order-`q` MIMO model.
///
/// The drive supplies the electrical environment (driver resistance, load,
/// section count); the switching waveforms are irrelevant to the reduction
/// itself — they enter later through
/// [`ReducedBus::victim_model`].
///
/// # Errors
///
/// Propagates bus-construction, state-space and reduction errors.
pub fn reduce_bus(
    bus: &CoupledBus,
    drive: &BusDrive,
    order: usize,
    backend: SolverBackend,
) -> Result<ReducedBus, ReduceError> {
    let signals = bus.signal_count();
    // Any valid pattern yields the same topology; waveforms don't matter here.
    let pattern = SwitchingPattern::even_mode(signals)?;
    let built = build_bus_circuit(bus, &pattern, drive)?;
    let conductors = bus.signal_indices();
    let inputs: Vec<_> = conductors.iter().map(|&c| built.sources[c]).collect();
    let outputs: Vec<_> = conductors.iter().map(|&c| built.outputs[c]).collect();
    let ss = DescriptorStateSpace::new(&built.circuit, &inputs, &outputs)?;
    let system = prima(&ss, &ReductionOptions::new(order).with_backend(backend))?;
    let mut models = Vec::with_capacity(signals);
    for output in 0..signals {
        let mut row = Vec::with_capacity(signals);
        for input in 0..signals {
            row.push(system.pole_residue(output, input)?);
        }
        models.push(row);
    }
    Ok(ReducedBus { system, supply: drive.supply, signals, models })
}

impl ReducedBus {
    /// The projected MIMO descriptor system.
    pub fn system(&self) -> &ReducedSystem {
        &self.system
    }

    /// Number of signal wires the model covers.
    pub fn signal_count(&self) -> usize {
        self.signals
    }

    /// The achieved reduction order.
    pub fn order(&self) -> usize {
        self.system.order()
    }

    /// The waveform model of signal wire `victim` under a switching pattern
    /// (absolute volts; superposition of the per-aggressor responses).
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::Measurement`] for a pattern whose length does
    /// not match the signal count or an out-of-range victim, and propagates
    /// pole-extraction errors.
    pub fn victim_model(
        &self,
        victim: usize,
        pattern: &SwitchingPattern,
    ) -> Result<PoleResidueModel, ReduceError> {
        if pattern.lines() != self.signals {
            return Err(ReduceError::Measurement {
                reason: format!(
                    "pattern covers {} wires but the bus has {} signal wires",
                    pattern.lines(),
                    self.signals
                ),
            });
        }
        if victim >= self.signals {
            return Err(ReduceError::Measurement {
                reason: format!("victim {victim} out of range for {} signal wires", self.signals),
            });
        }
        let vdd = self.supply.volts();
        let mut parts = Vec::new();
        let mut offset = 0.0;
        for j in 0..self.signals {
            let pr = &self.models[victim][j];
            match pattern.drive(j)? {
                LineDrive::Rising => {
                    parts.push(pr.scaled(vdd));
                }
                LineDrive::Falling => {
                    // Starts charged at Vdd, steps to 0: static Vdd·gᵥⱼ minus
                    // the rising response.
                    offset += vdd * pr.final_value();
                    parts.push(pr.scaled(-vdd));
                }
                LineDrive::Quiet => {}
                LineDrive::QuietHigh => {
                    offset += vdd * pr.final_value();
                }
            }
        }
        if parts.is_empty() {
            // Nothing switches: a constant waveform at the static level.
            return PoleResidueModel::from_parts(Vec::new(), Vec::new(), offset);
        }
        PoleResidueModel::superpose(&parts, offset)
    }

    /// 50% propagation delay of a switching victim under a pattern,
    /// measured in its own switching direction (matching
    /// [`BusTransient::delay_50`](rlckit_coupling::crosstalk::BusTransient::delay_50)).
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::Measurement`] if the victim is quiet in the
    /// pattern or the crossing cannot be located.
    pub fn victim_delay_50(
        &self,
        victim: usize,
        pattern: &SwitchingPattern,
    ) -> Result<Time, ReduceError> {
        let model = self.victim_model(victim, pattern)?;
        let half = 0.5 * self.supply.volts();
        match pattern.drive(victim)? {
            LineDrive::Rising => model.time_to_cross(half, true),
            LineDrive::Falling => model.time_to_cross(half, false),
            LineDrive::Quiet | LineDrive::QuietHigh => Err(ReduceError::Measurement {
                reason: format!("signal wire {victim} is quiet in this pattern"),
            }),
        }
    }

    /// Peak excursion of a quiet victim from its steady level — the coupled
    /// noise, evaluated on the closed-form waveform.
    ///
    /// # Errors
    ///
    /// Returns [`ReduceError::Measurement`] if the victim switches in the
    /// pattern (its excursion is signal, not noise).
    pub fn victim_peak_noise(
        &self,
        victim: usize,
        pattern: &SwitchingPattern,
    ) -> Result<Voltage, ReduceError> {
        let drive = pattern.drive(victim)?;
        if drive.is_switching() {
            return Err(ReduceError::Measurement {
                reason: format!("signal wire {victim} switches in this pattern"),
            });
        }
        let model = self.victim_model(victim, pattern)?;
        let steady = drive.final_level(self.supply).volts();
        let tau = model.dominant_time_constant()?;
        const SAMPLES: usize = 4096;
        let horizon = 10.0 * tau;
        let mut peak = 0.0f64;
        for i in 0..=SAMPLES {
            let v = model.step_response(horizon * i as f64 / SAMPLES as f64);
            peak = peak.max((v - steady).abs());
        }
        Ok(Voltage::from_volts(peak))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_coupling::bus::UniformBusSpec;
    use rlckit_units::{
        Capacitance, CapacitancePerLength, InductancePerLength, Length, Resistance,
        ResistancePerLength,
    };

    fn bus(lines: usize) -> CoupledBus {
        UniformBusSpec {
            lines,
            resistance: ResistancePerLength::from_ohms_per_millimeter(1.3),
            self_inductance: InductancePerLength::from_nanohenries_per_millimeter(0.5),
            ground_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.21),
            coupling_capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.1),
            inductive_coupling: vec![0.35, 0.15],
            length: Length::from_millimeters(3.0),
        }
        .build()
        .unwrap()
    }

    fn drive() -> BusDrive {
        BusDrive::new(
            Resistance::from_ohms(120.0),
            Capacitance::from_femtofarads(100.0),
            Voltage::from_volts(1.8),
        )
        .with_sections(6)
    }

    #[test]
    fn even_mode_is_faster_than_odd_mode() {
        let bus = bus(2);
        let reduced = reduce_bus(&bus, &drive(), 12, SolverBackend::Auto).unwrap();
        assert_eq!(reduced.signal_count(), 2);
        assert!(reduced.order() <= 12);
        let even = reduced.victim_delay_50(0, &SwitchingPattern::even_mode(2).unwrap()).unwrap();
        let odd = reduced.victim_delay_50(0, &SwitchingPattern::odd_mode(0, 2).unwrap()).unwrap();
        assert!(
            odd.seconds() > even.seconds(),
            "odd-mode delay {} must exceed even-mode {}",
            odd.seconds(),
            even.seconds()
        );
    }

    #[test]
    fn quiet_victim_sees_noise_but_reports_no_delay() {
        let bus = bus(2);
        let reduced = reduce_bus(&bus, &drive(), 12, SolverBackend::Auto).unwrap();
        let pattern = SwitchingPattern::victim_quiet(0, 2).unwrap();
        let noise = reduced.victim_peak_noise(0, &pattern).unwrap();
        assert!(noise.volts() > 0.0);
        assert!(noise.volts() < 1.8);
        assert!(matches!(
            reduced.victim_delay_50(0, &pattern),
            Err(ReduceError::Measurement { .. })
        ));
        // A switching victim cannot report noise.
        let even = SwitchingPattern::even_mode(2).unwrap();
        assert!(matches!(
            reduced.victim_peak_noise(0, &even),
            Err(ReduceError::Measurement { .. })
        ));
    }

    #[test]
    fn mismatched_patterns_are_rejected() {
        let bus = bus(2);
        let reduced = reduce_bus(&bus, &drive(), 8, SolverBackend::Auto).unwrap();
        let three = SwitchingPattern::even_mode(3).unwrap();
        assert!(matches!(reduced.victim_model(0, &three), Err(ReduceError::Measurement { .. })));
        let two = SwitchingPattern::even_mode(2).unwrap();
        assert!(matches!(reduced.victim_model(5, &two), Err(ReduceError::Measurement { .. })));
    }
}
