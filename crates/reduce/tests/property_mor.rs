//! Property-based tests of the reduction subsystem.
//!
//! Over random (but physically sensible) driven lines:
//!
//! * the order-`q` AWE reduction matches the first `2q` transfer-function
//!   moments of the closed-form `TransferMoments` (the `[0/q]` denominator
//!   lands on `b₁..b₃` within the ladder's discretisation error);
//! * the order-`q` PRIMA reduction matches the leading moments of the full
//!   extracted system to near machine precision;
//! * the dense and banded solver backends agree on the extracted
//!   `(G, C, B, Lᵀ)` state space and everything derived from it.

use proptest::prelude::*;

use rlckit_circuit::ladder::{LadderSpec, SegmentStyle};
use rlckit_circuit::state_space::DescriptorStateSpace;
use rlckit_circuit::SolverBackend;
use rlckit_interconnect::moments::TransferMoments;
use rlckit_reduce::awe::{moments_of, pade_denominator};
use rlckit_reduce::{prima, ReductionOptions};
use rlckit_units::{Capacitance, Inductance, Resistance, Voltage};

/// A physically plausible driven line, finely segmented so the lumped
/// moments sit close to the distributed closed forms.
fn arb_spec() -> impl Strategy<Value = LadderSpec> {
    (10.0f64..5e3, 1e-10f64..5e-8, 1e-13f64..2e-12, 0.0f64..1e3, 0.0f64..1e-12).prop_map(
        |(rt, lt, ct, rtr, cl)| LadderSpec {
            total_resistance: Resistance::from_ohms(rt),
            total_inductance: Inductance::from_henries(lt),
            total_capacitance: Capacitance::from_farads(ct),
            segments: 100,
            style: SegmentStyle::Pi,
            driver_resistance: Resistance::from_ohms(rtr),
            load_capacitance: Capacitance::from_farads(cl),
            supply: Voltage::from_volts(1.0),
        },
    )
}

fn state_space(spec: &LadderSpec) -> DescriptorStateSpace {
    let line = spec.build().expect("spec builds");
    DescriptorStateSpace::new(&line.circuit, &[line.source], &[line.output])
        .expect("state space extracts")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn order_q_reduction_matches_2q_closed_form_moments(spec in arb_spec()) {
        // q = 2 AWE consumes 2q = 4 moments (m₀..m₃ ⇔ 1, b₁, b₂, b₃); the
        // [0/q] denominator of the extracted moments must land on the
        // closed-form TransferMoments within the ladder's O(1/N²) error.
        let ss = state_space(&spec);
        let m = moments_of(&ss, 0, 0, 4, SolverBackend::Auto).unwrap();
        let d = pade_denominator(&m, 3).unwrap();
        let closed = TransferMoments::from_impedances(
            spec.total_resistance.ohms(),
            spec.total_inductance.henries(),
            spec.total_capacitance.farads(),
            spec.driver_resistance.ohms(),
            spec.load_capacitance.farads(),
        );
        for (k, want) in [closed.b1, closed.b2, closed.b3].iter().enumerate() {
            let got = d.coeffs()[k + 1];
            let err = (got - want).abs() / want.abs();
            prop_assert!(
                err < 5e-3,
                "b{}: reduced {:e} vs closed form {:e} (err {:e})",
                k + 1, got, want, err
            );
        }
    }

    #[test]
    fn prima_matches_the_leading_moments_of_the_full_system(spec in arb_spec()) {
        // One-sided Arnoldi of order q matches the first q moments of the
        // extracted system itself (not just the distributed limit) to
        // numerical precision.
        let q = 6;
        let ss = state_space(&spec);
        let full = moments_of(&ss, 0, 0, q, SolverBackend::Auto).unwrap();
        let sys = prima(&ss, &ReductionOptions::new(q)).unwrap();
        prop_assert!(sys.order() == q);
        let reduced = sys.moments(0, 0, q).unwrap();
        for (k, (f, r)) in full.iter().zip(reduced.iter()).enumerate() {
            let err = (f - r).abs() / f.abs();
            prop_assert!(err < 1e-6, "m{k}: full {f:e} vs reduced {r:e} (err {err:e})");
        }
    }

    #[test]
    fn dense_and_banded_backends_agree_on_the_state_space(spec in arb_spec()) {
        let ss = state_space(&spec);
        // Raw moment extraction agrees across backends…
        let dense_m = moments_of(&ss, 0, 0, 6, SolverBackend::Dense).unwrap();
        let banded_m = moments_of(&ss, 0, 0, 6, SolverBackend::Banded).unwrap();
        for (k, (d, b)) in dense_m.iter().zip(banded_m.iter()).enumerate() {
            prop_assert!(
                (d - b).abs() <= 1e-8 * d.abs(),
                "moment {k}: dense {d:e} vs banded {b:e}"
            );
        }
        // …and so does the full PRIMA pipeline down to the extracted delay.
        let dense =
            prima(&ss, &ReductionOptions::new(6).with_backend(SolverBackend::Dense)).unwrap();
        let banded =
            prima(&ss, &ReductionOptions::new(6).with_backend(SolverBackend::Banded)).unwrap();
        let dd = dense.pole_residue(0, 0).unwrap().delay_50().unwrap().seconds();
        let db = banded.pole_residue(0, 0).unwrap().delay_50().unwrap().seconds();
        prop_assert!(
            (dd - db).abs() <= 1e-6 * dd,
            "dense delay {dd:e} vs banded delay {db:e}"
        );
    }
}
