//! Cross-validation of the reduction subsystem against the rest of the
//! workspace — the acceptance criteria of the MOR tentpole:
//!
//! 1. the `q = 2` reduction of a driven line reproduces the paper's
//!    two-pole model and the `TransferMoments` closed forms (`b₁..b₃`);
//! 2. order-`q ≥ 4` reductions match the full dense/banded transient
//!    `delay_50` to ≤ 1% on RC and RLC ladders;
//! 3. the same holds on a coupled 2-line bus, for both even- and odd-mode
//!    switching.

use rlckit_circuit::ladder::{measure_step_delay, LadderSpec};
use rlckit_circuit::state_space::DescriptorStateSpace;
use rlckit_circuit::SolverBackend;
use rlckit_core::response::TwoPoleResponse;
use rlckit_coupling::bus::UniformBusSpec;
use rlckit_coupling::crosstalk::{simulate_bus, suggested_options};
use rlckit_coupling::netlist::BusDrive;
use rlckit_coupling::scenario::SwitchingPattern;
use rlckit_interconnect::moments::TransferMoments;
use rlckit_reduce::awe::{moments_of, pade_denominator};
use rlckit_reduce::{reduce_bus, reduce_ladder};
use rlckit_units::{Capacitance, Inductance, Resistance, Voltage};

fn paper_spec() -> LadderSpec {
    LadderSpec::new(
        Resistance::from_ohms(500.0),
        Inductance::from_nanohenries(10.0),
        Capacitance::from_picofarads(1.0),
        Resistance::from_ohms(250.0),
        Capacitance::from_picofarads(0.1),
    )
}

#[test]
fn q2_reduction_reproduces_transfer_moments_closed_forms() {
    // Moments of the finely segmented ladder must land on the distributed
    // closed forms of Eq. (7): the ladder converges O(1/N²), so at N = 200
    // the b's agree to ~1e-4 relative.
    let mut spec = paper_spec();
    spec.segments = 200;
    let line = spec.build().unwrap();
    let ss = DescriptorStateSpace::new(&line.circuit, &[line.source], &[line.output]).unwrap();
    let m = moments_of(&ss, 0, 0, 4, SolverBackend::Auto).unwrap();
    let d = pade_denominator(&m, 3).unwrap();

    let closed = TransferMoments::from_impedances(500.0, 10e-9, 1e-12, 250.0, 0.1e-12);
    let checks = [
        (d.coeffs()[1], closed.b1, "b1"),
        (d.coeffs()[2], closed.b2, "b2"),
        (d.coeffs()[3], closed.b3, "b3"),
    ];
    for (got, want, name) in checks {
        let err = (got - want).abs() / want.abs();
        assert!(err < 2e-3, "{name}: reduced {got:e} vs closed form {want:e} (err {err:e})");
    }
}

#[test]
fn q2_reduction_reproduces_the_papers_two_pole_model() {
    // Build the paper's two-pole response from the MOR-extracted b1/b2 and
    // from the closed-form moments: the two must predict the same delay.
    let mut spec = paper_spec();
    spec.segments = 200;
    let line = spec.build().unwrap();
    let ss = DescriptorStateSpace::new(&line.circuit, &[line.source], &[line.output]).unwrap();
    let m = moments_of(&ss, 0, 0, 3, SolverBackend::Auto).unwrap();
    let d = pade_denominator(&m, 2).unwrap();
    let reduced_two_pole = TwoPoleResponse::from_moments(&TransferMoments {
        b1: d.coeffs()[1],
        b2: d.coeffs()[2],
        b3: 0.0,
    });
    let closed = TransferMoments::from_impedances(500.0, 10e-9, 1e-12, 250.0, 0.1e-12);
    let paper_two_pole = TwoPoleResponse::from_moments(&closed);

    let dr = reduced_two_pole.delay_50().unwrap().seconds();
    let dp = paper_two_pole.delay_50().unwrap().seconds();
    let err = (dr - dp).abs() / dp;
    assert!(err < 2e-3, "two-pole delay from MOR {dr:e} vs paper {dp:e} (err {err:e})");
    assert!(
        (reduced_two_pole.damping_ratio() - paper_two_pole.damping_ratio()).abs()
            / paper_two_pole.damping_ratio()
            < 2e-3
    );
}

/// Shared check: reduced `delay_50`, overshoot and settling vs the full
/// transient simulation of the same spec.
fn assert_reduced_delay_matches_transient(spec: &LadderSpec, order: usize, tol: f64) {
    let full = measure_step_delay(spec).unwrap();
    let reduced = reduce_ladder(spec, order, SolverBackend::Auto).unwrap();
    let metrics = reduced.metrics().unwrap();
    let err =
        (metrics.delay_50.seconds() - full.delay_50.seconds()).abs() / full.delay_50.seconds();
    assert!(
        err < tol,
        "order-{order} delay {:e} vs transient {:e} (err {err:e})",
        metrics.delay_50.seconds(),
        full.delay_50.seconds()
    );
    // Overshoot agreement is looser (peak vs sampled peak) but must agree on
    // the regime: both ringing or both monotone, within a few points.
    assert!(
        (metrics.overshoot_percent - full.overshoot_percent).abs() < 5.0,
        "overshoot {} vs transient {}",
        metrics.overshoot_percent,
        full.overshoot_percent
    );
}

#[test]
fn order_4_and_up_match_full_transient_on_the_rlc_ladder() {
    let spec = paper_spec();
    assert_reduced_delay_matches_transient(&spec, 4, 0.01);
    assert_reduced_delay_matches_transient(&spec, 8, 0.01);
}

#[test]
fn order_4_and_up_match_full_transient_on_an_rc_ladder() {
    let mut spec = paper_spec();
    // RC regime: negligible inductance.
    spec.total_inductance = Inductance::from_picohenries(1.0);
    assert_reduced_delay_matches_transient(&spec, 4, 0.01);
    assert_reduced_delay_matches_transient(&spec, 6, 0.01);
}

#[test]
fn reduced_bus_delays_match_the_coupled_transient_to_one_percent() {
    let bus = UniformBusSpec {
        lines: 2,
        resistance: rlckit_units::ResistancePerLength::from_ohms_per_millimeter(1.3),
        self_inductance: rlckit_units::InductancePerLength::from_nanohenries_per_millimeter(0.5),
        ground_capacitance: rlckit_units::CapacitancePerLength::from_femtofarads_per_micrometer(
            0.21,
        ),
        coupling_capacitance: rlckit_units::CapacitancePerLength::from_femtofarads_per_micrometer(
            0.1,
        ),
        inductive_coupling: vec![0.35],
        length: rlckit_units::Length::from_millimeters(3.0),
    }
    .build()
    .unwrap();
    let drive = BusDrive::new(
        Resistance::from_ohms(120.0),
        Capacitance::from_femtofarads(100.0),
        Voltage::from_volts(1.8),
    )
    .with_sections(6);

    let reduced = reduce_bus(&bus, &drive, 16, SolverBackend::Auto).unwrap();
    let options = suggested_options(&bus, &drive).unwrap();
    for pattern in
        [SwitchingPattern::even_mode(2).unwrap(), SwitchingPattern::odd_mode(0, 2).unwrap()]
    {
        let transient = simulate_bus(&bus, &pattern, &drive, &options).unwrap();
        let simulated = transient.delay_50(0).unwrap().seconds();
        let fast = reduced.victim_delay_50(0, &pattern).unwrap().seconds();
        let err = (fast - simulated).abs() / simulated;
        assert!(
            err < 0.01,
            "pattern {pattern:?}: reduced delay {fast:e} vs simulated {simulated:e} (err {err:e})"
        );
    }
}
