//! Error type for interconnect modelling.

use std::error::Error;
use std::fmt;

/// Error returned by interconnect model construction and analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum InterconnectError {
    /// A physical parameter is non-positive or not finite.
    InvalidParameter {
        /// Which parameter was invalid.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A derived computation failed (e.g. a crossing was never found).
    Analysis {
        /// Human-readable description of the failure.
        reason: String,
    },
}

impl fmt::Display for InterconnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter { what, value } => write!(f, "invalid {what}: {value}"),
            Self::Analysis { reason } => write!(f, "interconnect analysis failed: {reason}"),
        }
    }
}

impl Error for InterconnectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(InterconnectError::InvalidParameter { what: "length", value: -1.0 }
            .to_string()
            .contains("length"));
        assert!(InterconnectError::Analysis { reason: "no crossing".into() }
            .to_string()
            .contains("no crossing"));
    }
}
