//! Technology presets: minimum-buffer parasitics and representative wires.
//!
//! The paper's repeater expressions are parameterised by the minimum-size
//! buffer output resistance `R0` and input capacitance `C0`; the importance of
//! inductance is governed by `T_{L/R} = sqrt((Lt/Rt)/(R0·C0))`, which grows as
//! `R0·C0` shrinks with technology scaling. The presets below give
//! order-of-magnitude-correct values for a 0.25 µm generation (the paper's
//! "current" technology, for which it states `T_{L/R} ≈ 5` is common on wide
//! wires) and for scaled generations, so the scaling experiment can reproduce
//! the paper's trend without access to the original foundry data.

use rlckit_units::{
    Area, Capacitance, CapacitancePerLength, InductancePerLength, Length, Resistance,
    ResistancePerLength, Time, Voltage,
};

use crate::error::InterconnectError;
use crate::line::DistributedLine;

/// Per-unit-length parasitics of a representative wire class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireClass {
    /// Resistance per unit length.
    pub resistance: ResistancePerLength,
    /// Inductance per unit length.
    pub inductance: InductancePerLength,
    /// Capacitance per unit length.
    pub capacitance: CapacitancePerLength,
}

impl WireClass {
    /// Builds a [`DistributedLine`] of the given length in this wire class.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidParameter`] for a non-positive length.
    pub fn line(&self, length: Length) -> Result<DistributedLine, InterconnectError> {
        DistributedLine::new(self.resistance, self.inductance, self.capacitance, length)
    }
}

/// A CMOS technology generation, as needed by the repeater-insertion formulas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technology {
    /// Short name of the generation (e.g. `"0.25um"`).
    pub name: &'static str,
    /// Output resistance of a minimum-size buffer, `R0`.
    pub min_buffer_resistance: Resistance,
    /// Input capacitance of a minimum-size buffer, `C0`.
    pub min_buffer_capacitance: Capacitance,
    /// Layout area of a minimum-size buffer, `Amin`.
    pub min_buffer_area: Area,
    /// Nominal supply voltage.
    pub supply: Voltage,
    /// A wide, low-resistance upper-metal wire (clock spines, global buses).
    pub global_wire: WireClass,
    /// A narrower intermediate-layer signal wire.
    pub intermediate_wire: WireClass,
}

impl Technology {
    /// The intrinsic buffer delay scale `R0·C0` of this generation.
    pub fn buffer_time_constant(&self) -> Time {
        self.min_buffer_resistance * self.min_buffer_capacitance
    }

    /// A representative 0.25 µm generation (the paper's contemporary node).
    ///
    /// `R0·C0 = 20 ps`; on the wide global wire class a 10 mm line gives
    /// `T_{L/R} ≈ 5`, matching the paper's statement that values around 5 are
    /// common for wide wires in a 0.25 µm technology.
    pub fn quarter_micron() -> Self {
        Self {
            name: "0.25um",
            min_buffer_resistance: Resistance::from_kilohms(10.0),
            min_buffer_capacitance: Capacitance::from_femtofarads(2.0),
            min_buffer_area: Area::from_square_micrometers(4.0),
            supply: Voltage::from_volts(2.5),
            global_wire: WireClass {
                resistance: ResistancePerLength::from_ohms_per_millimeter(1.0),
                inductance: InductancePerLength::from_nanohenries_per_millimeter(0.5),
                capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.2),
            },
            intermediate_wire: WireClass {
                resistance: ResistancePerLength::from_ohms_per_millimeter(25.0),
                inductance: InductancePerLength::from_nanohenries_per_millimeter(0.4),
                capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.15),
            },
        }
    }

    /// A representative 0.18 µm generation.
    pub fn node_180nm() -> Self {
        Self {
            name: "0.18um",
            min_buffer_resistance: Resistance::from_kilohms(9.0),
            min_buffer_capacitance: Capacitance::from_femtofarads(1.5),
            min_buffer_area: Area::from_square_micrometers(2.1),
            supply: Voltage::from_volts(1.8),
            global_wire: WireClass {
                resistance: ResistancePerLength::from_ohms_per_millimeter(1.3),
                inductance: InductancePerLength::from_nanohenries_per_millimeter(0.5),
                capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.21),
            },
            intermediate_wire: WireClass {
                resistance: ResistancePerLength::from_ohms_per_millimeter(40.0),
                inductance: InductancePerLength::from_nanohenries_per_millimeter(0.4),
                capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.16),
            },
        }
    }

    /// A representative 0.13 µm generation.
    pub fn node_130nm() -> Self {
        Self {
            name: "0.13um",
            min_buffer_resistance: Resistance::from_kilohms(8.5),
            min_buffer_capacitance: Capacitance::from_femtofarads(1.0),
            min_buffer_area: Area::from_square_micrometers(1.1),
            supply: Voltage::from_volts(1.2),
            global_wire: WireClass {
                resistance: ResistancePerLength::from_ohms_per_millimeter(1.8),
                inductance: InductancePerLength::from_nanohenries_per_millimeter(0.5),
                capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.22),
            },
            intermediate_wire: WireClass {
                resistance: ResistancePerLength::from_ohms_per_millimeter(60.0),
                inductance: InductancePerLength::from_nanohenries_per_millimeter(0.4),
                capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.17),
            },
        }
    }

    /// A representative 90 nm generation.
    pub fn node_90nm() -> Self {
        Self {
            name: "90nm",
            min_buffer_resistance: Resistance::from_kilohms(8.0),
            min_buffer_capacitance: Capacitance::from_femtofarads(0.7),
            min_buffer_area: Area::from_square_micrometers(0.6),
            supply: Voltage::from_volts(1.0),
            global_wire: WireClass {
                resistance: ResistancePerLength::from_ohms_per_millimeter(2.5),
                inductance: InductancePerLength::from_nanohenries_per_millimeter(0.5),
                capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.23),
            },
            intermediate_wire: WireClass {
                resistance: ResistancePerLength::from_ohms_per_millimeter(90.0),
                inductance: InductancePerLength::from_nanohenries_per_millimeter(0.4),
                capacitance: CapacitancePerLength::from_femtofarads_per_micrometer(0.18),
            },
        }
    }

    /// The built-in generations ordered from the paper's node to the most scaled.
    pub fn roadmap() -> Vec<Self> {
        vec![Self::quarter_micron(), Self::node_180nm(), Self::node_130nm(), Self::node_90nm()]
    }

    /// Output resistance of a buffer `h` times larger than minimum size, `R0/h`.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidParameter`] if `h` is not positive.
    pub fn buffer_resistance(&self, h: f64) -> Result<Resistance, InterconnectError> {
        if !(h > 0.0) || !h.is_finite() {
            return Err(InterconnectError::InvalidParameter { what: "buffer size h", value: h });
        }
        Ok(self.min_buffer_resistance / h)
    }

    /// Input capacitance of a buffer `h` times larger than minimum size, `h·C0`.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidParameter`] if `h` is not positive.
    pub fn buffer_capacitance(&self, h: f64) -> Result<Capacitance, InterconnectError> {
        if !(h > 0.0) || !h.is_finite() {
            return Err(InterconnectError::InvalidParameter { what: "buffer size h", value: h });
        }
        Ok(self.min_buffer_capacitance * h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarter_micron_matches_paper_expectations() {
        let t = Technology::quarter_micron();
        assert_eq!(t.name, "0.25um");
        assert!((t.buffer_time_constant().picoseconds() - 20.0).abs() < 1e-9);
        // T_{L/R} = sqrt((Lt/Rt)/(R0 C0)) on a global wire is length-independent
        // (both Lt and Rt scale with l); check it is about 5.
        let line = t.global_wire.line(Length::from_millimeters(10.0)).unwrap();
        let t_lr = ((line.total_inductance().henries() / line.total_resistance().ohms())
            / t.buffer_time_constant().seconds())
        .sqrt();
        assert!((t_lr - 5.0).abs() < 0.5, "T_L/R = {t_lr}");
    }

    #[test]
    fn roadmap_has_strictly_decreasing_buffer_time_constant() {
        let roadmap = Technology::roadmap();
        assert_eq!(roadmap.len(), 4);
        for pair in roadmap.windows(2) {
            assert!(
                pair[1].buffer_time_constant() < pair[0].buffer_time_constant(),
                "{} should have a smaller R0·C0 than {}",
                pair[1].name,
                pair[0].name
            );
        }
    }

    #[test]
    fn sized_buffer_parasitics() {
        let t = Technology::quarter_micron();
        let r = t.buffer_resistance(50.0).unwrap();
        let c = t.buffer_capacitance(50.0).unwrap();
        assert!((r.ohms() - 200.0).abs() < 1e-9);
        assert!((c.femtofarads() - 100.0).abs() < 1e-9);
        assert!(t.buffer_resistance(0.0).is_err());
        assert!(t.buffer_capacitance(-1.0).is_err());
        assert!(t.buffer_resistance(f64::NAN).is_err());
    }

    #[test]
    fn wire_classes_build_lines() {
        let t = Technology::quarter_micron();
        let global = t.global_wire.line(Length::from_millimeters(5.0)).unwrap();
        let intermediate = t.intermediate_wire.line(Length::from_millimeters(5.0)).unwrap();
        assert!(intermediate.total_resistance() > global.total_resistance());
        assert!(t.global_wire.line(Length::ZERO).is_err());
    }

    #[test]
    fn global_wires_are_less_damped_than_intermediate_wires() {
        // The whole point of the paper: wide global wires are the inductive ones.
        let t = Technology::quarter_micron();
        let l = Length::from_millimeters(10.0);
        let global = t.global_wire.line(l).unwrap();
        let intermediate = t.intermediate_wire.line(l).unwrap();
        assert!(global.attenuation() < intermediate.attenuation());
    }
}
