//! Power/clock meshes: regular grids of physical wire segments.
//!
//! A [`MeshGeometry`] is the physical-layer description of a power-grid or
//! clock-mesh net: a `rows × cols` lattice of junctions joined by identical
//! wire segments, each one pitch of a [`DistributedLine`]. It lowers to the
//! circuit layer's [`MeshSpec`] for dynamic simulation, putting each
//! segment's series parasitics on the grid edges and spreading the total
//! wire capacitance uniformly over the junctions.

use rlckit_circuit::mesh::MeshSpec;
use rlckit_units::{Capacitance, Inductance, Length, Resistance, Voltage};

use crate::error::InterconnectError;
use crate::line::DistributedLine;

/// A regular grid of identical wire segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshGeometry {
    /// Number of junction rows (≥ 1).
    pub rows: usize,
    /// Number of junction columns (≥ 1, with `rows·cols ≥ 2`).
    pub cols: usize,
    /// One pitch of wire between adjacent junctions; its length is the grid
    /// pitch and its per-unit-length parasitics describe the wiring layer.
    pub segment: DistributedLine,
}

impl MeshGeometry {
    /// A grid of `rows × cols` junctions wired with `segment`.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidParameter`] for degenerate grids
    /// (`rows·cols < 2`) or when the junction count exceeds 4 000 000.
    pub fn new(
        rows: usize,
        cols: usize,
        segment: DistributedLine,
    ) -> Result<Self, InterconnectError> {
        match rows.checked_mul(cols) {
            Some(n) if n > 4_000_000 => {
                return Err(InterconnectError::InvalidParameter {
                    what: "mesh junction count (rows/cols too large)",
                    value: n as f64,
                });
            }
            None => {
                return Err(InterconnectError::InvalidParameter {
                    what: "mesh junction count (rows/cols too large)",
                    value: f64::INFINITY,
                });
            }
            Some(n) if rows == 0 || cols == 0 || n < 2 => {
                return Err(InterconnectError::InvalidParameter {
                    what: "mesh junction count (rows·cols must be at least 2)",
                    value: n as f64,
                });
            }
            Some(_) => {}
        }
        Ok(Self { rows, cols, segment })
    }

    /// Number of wire segments in the grid.
    pub fn segment_count(&self) -> usize {
        self.rows * (self.cols - 1) + (self.rows - 1) * self.cols
    }

    /// Total wire length over every segment.
    pub fn total_wire_length(&self) -> Length {
        self.segment.length() * self.segment_count() as f64
    }

    /// Total wire capacitance over every segment.
    pub fn total_wire_capacitance(&self) -> Capacitance {
        self.segment.total_capacitance() * self.segment_count() as f64
    }

    /// Lowers the grid to the circuit layer's [`MeshSpec`] for dynamic
    /// simulation.
    ///
    /// Series parasitics go on the edges (inductance only when
    /// `include_inductance` is set — RC meshes are the common power-grid
    /// abstraction and keep the unknown count at `rows·cols`); the total
    /// wire capacitance is spread uniformly over the junctions.
    ///
    /// # Errors
    ///
    /// This lowering cannot fail on a validated geometry, but the returned
    /// spec's own `build()` revalidates electrical values.
    pub fn to_mesh_spec(
        &self,
        driver_resistance: Resistance,
        supply: Voltage,
        include_inductance: bool,
    ) -> Result<MeshSpec, InterconnectError> {
        let junctions = (self.rows * self.cols) as f64;
        let node_capacitance = self.total_wire_capacitance() / junctions;
        Ok(MeshSpec {
            rows: self.rows,
            cols: self.cols,
            segment_resistance: self.segment.total_resistance(),
            segment_inductance: if include_inductance {
                self.segment.total_inductance()
            } else {
                Inductance::ZERO
            },
            node_capacitance,
            driver_resistance,
            load_capacitance: Capacitance::ZERO,
            supply,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_units::{CapacitancePerLength, InductancePerLength, ResistancePerLength};

    fn pitch() -> DistributedLine {
        DistributedLine::new(
            ResistancePerLength::from_ohms_per_millimeter(50.0),
            InductancePerLength::from_nanohenries_per_millimeter(1.0),
            CapacitancePerLength::from_femtofarads_per_micrometer(0.1),
            Length::from_micrometers(100.0),
        )
        .unwrap()
    }

    #[test]
    fn geometry_counts_segments_and_wire() {
        let mesh = MeshGeometry::new(4, 5, pitch()).unwrap();
        assert_eq!(mesh.segment_count(), 4 * 4 + 3 * 5);
        assert!((mesh.total_wire_length().meters() - 31.0 * 100e-6).abs() < 1e-12);
    }

    #[test]
    fn degenerate_grids_are_rejected() {
        assert!(MeshGeometry::new(1, 1, pitch()).is_err());
        assert!(MeshGeometry::new(0, 4, pitch()).is_err());
        assert!(MeshGeometry::new(3000, 3000, pitch()).is_err());
    }

    #[test]
    fn lowering_conserves_resistance_and_capacitance() {
        let mesh = MeshGeometry::new(3, 4, pitch()).unwrap();
        let spec =
            mesh.to_mesh_spec(Resistance::from_ohms(25.0), Voltage::from_volts(1.2), true).unwrap();
        assert_eq!(spec.rows, 3);
        assert_eq!(spec.cols, 4);
        // Each edge carries one pitch of series parasitics.
        assert!((spec.segment_resistance.ohms() - 5.0).abs() < 1e-12);
        assert!(spec.segment_inductance.henries() > 0.0);
        // Total capacitance is conserved: 12 junctions share 17 segments' C.
        let total = spec.node_capacitance * 12.0;
        assert!(
            (total.farads() - mesh.total_wire_capacitance().farads()).abs() < 1e-24,
            "lowered C {} vs wire C {}",
            total.farads(),
            mesh.total_wire_capacitance().farads()
        );
        let rc = mesh
            .to_mesh_spec(Resistance::from_ohms(25.0), Voltage::from_volts(1.2), false)
            .unwrap();
        assert_eq!(rc.segment_inductance, Inductance::ZERO);
    }

    #[test]
    fn lowered_mesh_simulates_through_the_circuit_layer() {
        let mesh = MeshGeometry::new(5, 5, pitch()).unwrap();
        let spec = mesh
            .to_mesh_spec(Resistance::from_ohms(50.0), Voltage::from_volts(1.0), false)
            .unwrap();
        let report = rlckit_circuit::mesh::measure_mesh_delay(&spec).unwrap();
        assert!(report.delay_50.seconds() > 0.0);
    }
}
