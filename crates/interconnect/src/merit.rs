//! Figures of merit deciding when on-chip inductance matters.
//!
//! Reference \[8\] of the paper (Ismail, Friedman & Neves, DAC 1998) gives the
//! now-standard criterion: transmission-line behaviour is significant when the
//! line length satisfies
//!
//! ```text
//! tr / (2·sqrt(L·C))   <   l   <   (2/R)·sqrt(L/C)
//! ```
//!
//! The lower bound says the input rise time must be comparable to (or faster
//! than) the round-trip time of flight; the upper bound says the line must not
//! attenuate the wave into an RC-like response. This module implements that
//! window, the line damping factor, and the `T_{L/R}` figure of merit used by
//! the repeater analysis (Eq. 13).

use rlckit_units::{Length, Time};

use crate::line::DistributedLine;

/// Why (or why not) inductance needs to be modelled for a particular line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InductanceAssessment {
    /// The line falls inside the significance window: use an RLC model.
    Significant,
    /// The line is shorter than the lower bound: the rise time is slow compared
    /// with the time of flight, so an RC model is adequate.
    TooShortForRiseTime,
    /// The line is longer than the upper bound: resistive attenuation dominates
    /// and the response is RC-like regardless of inductance.
    TooResistive,
    /// The significance window is empty (lower bound above upper bound):
    /// no length of this wire shows transmission-line behaviour at this rise time.
    WindowEmpty,
}

impl InductanceAssessment {
    /// Returns `true` if an RLC (rather than RC) model is warranted.
    pub fn needs_inductance(self) -> bool {
        matches!(self, Self::Significant)
    }
}

/// The length window within which inductance is significant for a wire class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignificanceWindow {
    /// Minimum length for transmission-line behaviour at the given rise time.
    pub min_length: Length,
    /// Maximum length before resistive attenuation hides the inductance.
    pub max_length: Length,
}

impl SignificanceWindow {
    /// Computes the window for the wire class of `line` at the given input rise time.
    ///
    /// The window depends only on the per-unit-length parasitics and the rise
    /// time, not on the particular length of `line`.
    pub fn for_line(line: &DistributedLine, rise_time: Time) -> Self {
        let r = line.resistance_per_length().ohms_per_meter();
        let l = line.inductance_per_length().henries_per_meter();
        let c = line.capacitance_per_length().farads_per_meter();
        let min_length = rise_time.seconds() / (2.0 * (l * c).sqrt());
        let max_length = 2.0 / r * (l / c).sqrt();
        Self {
            min_length: Length::from_meters(min_length),
            max_length: Length::from_meters(max_length),
        }
    }

    /// Returns `true` if the window is non-empty.
    pub fn is_open(&self) -> bool {
        self.min_length < self.max_length
    }

    /// Classifies a particular line length against this window.
    pub fn assess(&self, length: Length) -> InductanceAssessment {
        if !self.is_open() {
            InductanceAssessment::WindowEmpty
        } else if length < self.min_length {
            InductanceAssessment::TooShortForRiseTime
        } else if length > self.max_length {
            InductanceAssessment::TooResistive
        } else {
            InductanceAssessment::Significant
        }
    }
}

/// Assesses whether inductance matters for this specific line at the given rise time.
pub fn assess_inductance(line: &DistributedLine, rise_time: Time) -> InductanceAssessment {
    SignificanceWindow::for_line(line, rise_time).assess(line.length())
}

/// The `T_{L/R}` figure of merit of Eq. (13): `sqrt((Lt/Rt) / (R0·C0))`.
///
/// `buffer_time_constant` is the minimum-buffer `R0·C0` of the technology.
/// `T_{L/R}` is independent of the line length (both `Lt` and `Rt` scale with
/// `l`) and grows as gates get faster, which is the paper's scaling argument.
pub fn t_l_over_r(line: &DistributedLine, buffer_time_constant: Time) -> f64 {
    let lt = line.total_inductance().henries();
    let rt = line.total_resistance().ohms();
    ((lt / rt) / buffer_time_constant.seconds()).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technology::Technology;
    use rlckit_units::Length;

    fn global_line(mm: f64) -> DistributedLine {
        Technology::quarter_micron().global_wire.line(Length::from_millimeters(mm)).unwrap()
    }

    fn resistive_line(mm: f64) -> DistributedLine {
        Technology::quarter_micron().intermediate_wire.line(Length::from_millimeters(mm)).unwrap()
    }

    #[test]
    fn wide_global_wire_with_fast_edge_is_inductive() {
        let line = global_line(10.0);
        let assessment = assess_inductance(&line, Time::from_picoseconds(50.0));
        assert_eq!(assessment, InductanceAssessment::Significant);
        assert!(assessment.needs_inductance());
    }

    #[test]
    fn short_line_with_slow_edge_is_rc() {
        let line = global_line(0.3);
        let assessment = assess_inductance(&line, Time::from_nanoseconds(1.0));
        assert_eq!(assessment, InductanceAssessment::TooShortForRiseTime);
        assert!(!assessment.needs_inductance());
    }

    #[test]
    fn very_long_resistive_line_is_rc() {
        let line = resistive_line(40.0);
        let assessment = assess_inductance(&line, Time::from_picoseconds(50.0));
        assert_eq!(assessment, InductanceAssessment::TooResistive);
    }

    #[test]
    fn window_can_close_for_resistive_wires_and_slow_edges() {
        let line = resistive_line(5.0);
        let window = SignificanceWindow::for_line(&line, Time::from_nanoseconds(3.0));
        assert!(!window.is_open());
        assert_eq!(window.assess(line.length()), InductanceAssessment::WindowEmpty);
    }

    #[test]
    fn window_bounds_are_physically_ordered_for_global_wires() {
        let line = global_line(10.0);
        let window = SignificanceWindow::for_line(&line, Time::from_picoseconds(50.0));
        assert!(window.is_open());
        assert!(window.min_length.millimeters() < 10.0);
        assert!(window.max_length.millimeters() > 10.0);
        // Faster edges widen the window from below.
        let faster = SignificanceWindow::for_line(&line, Time::from_picoseconds(10.0));
        assert!(faster.min_length < window.min_length);
        assert_eq!(faster.max_length, window.max_length);
    }

    #[test]
    fn t_l_over_r_matches_quarter_micron_expectation_and_is_length_invariant() {
        let tech = Technology::quarter_micron();
        let t5 = t_l_over_r(&global_line(5.0), tech.buffer_time_constant());
        let t10 = t_l_over_r(&global_line(10.0), tech.buffer_time_constant());
        assert!((t5 - t10).abs() < 1e-9, "T_L/R should not depend on length");
        assert!((t10 - 5.0).abs() < 0.5, "T_L/R = {t10}");
        // Faster buffers (smaller R0·C0) increase T_L/R.
        let faster = t_l_over_r(&global_line(10.0), Technology::node_90nm().buffer_time_constant());
        assert!(faster > t10);
    }
}
