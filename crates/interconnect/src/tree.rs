//! Routing trees: branching interconnect built from physical lines.
//!
//! A [`RoutingTree`] is the physical-layer description of a branching global
//! net: every branch is a [`DistributedLine`] (per-unit-length `R`, `L`, `C`
//! and a length) hanging off its parent's far end, with an optional receiver
//! capacitance at the branch tip. It lowers to the circuit layer's
//! [`TreeSpec`] for dynamic simulation and summarises root-to-sink paths as
//! equivalent uniform lines for the closed-form repeater machinery.

use rlckit_circuit::tree::{TreeBranch, TreeSpec};
use rlckit_units::{Capacitance, Inductance, Length, Resistance, Time, Voltage};

use crate::error::InterconnectError;
use crate::line::DistributedLine;

/// One branch of a routing tree: a physical line plus its attachment point
/// and tip load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingBranch {
    /// Index of the parent branch, or `None` for a trunk branch at the
    /// driver output. Must be smaller than this branch's own index.
    pub parent: Option<usize>,
    /// The physical line of this branch.
    pub line: DistributedLine,
    /// Receiver capacitance at the branch tip (zero for junctions).
    pub sink_capacitance: Capacitance,
}

/// A branching net of distributed RLC lines.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoutingTree {
    /// The branches, in topological order (every parent precedes its child).
    pub branches: Vec<RoutingBranch>,
}

impl RoutingTree {
    /// An empty tree; push branches onto [`RoutingTree::branches`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a symmetric tree: `levels` levels of branches, each non-leaf
    /// branch fanning out into `fanout` children, every branch carrying the
    /// per-unit-length parasitics of `path` over `path.length() / levels` —
    /// so every root-to-sink path is electrically identical to `path` — and
    /// every sink loaded by `sink_capacitance`.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidParameter`] if `levels` or
    /// `fanout` is zero, if the resulting branch count would exceed 100 000,
    /// or if `sink_capacitance` is negative or not finite.
    pub fn symmetric(
        path: &DistributedLine,
        levels: usize,
        fanout: usize,
        sink_capacitance: Capacitance,
    ) -> Result<Self, InterconnectError> {
        if levels == 0 {
            return Err(InterconnectError::InvalidParameter { what: "tree levels", value: 0.0 });
        }
        if fanout == 0 {
            return Err(InterconnectError::InvalidParameter { what: "tree fanout", value: 0.0 });
        }
        if !(sink_capacitance.farads() >= 0.0) || !sink_capacitance.farads().is_finite() {
            return Err(InterconnectError::InvalidParameter {
                what: "sink capacitance",
                value: sink_capacitance.farads(),
            });
        }
        // Branch count: 1 + f + f² + … + f^(levels-1).
        let mut count = 0usize;
        let mut level_size = 1usize;
        for _ in 0..levels {
            count = count.checked_add(level_size).filter(|&c| c <= 100_000).ok_or(
                InterconnectError::InvalidParameter {
                    what: "tree branch count (levels/fanout too large)",
                    value: f64::INFINITY,
                },
            )?;
            level_size = level_size.saturating_mul(fanout);
        }
        let segment = path.with_length(path.length() / levels as f64)?;
        let mut tree = Self::new();
        // Parents of the previous level, used to attach the next one.
        let mut previous: Vec<Option<usize>> = vec![None];
        for level in 0..levels {
            let is_leaf_level = level + 1 == levels;
            let mut current = Vec::with_capacity(previous.len() * fanout.max(1));
            for &parent in &previous {
                let children = if level == 0 { 1 } else { fanout };
                for _ in 0..children {
                    let index = tree.branches.len();
                    tree.branches.push(RoutingBranch {
                        parent,
                        line: segment,
                        sink_capacitance: if is_leaf_level {
                            sink_capacitance
                        } else {
                            Capacitance::ZERO
                        },
                    });
                    current.push(Some(index));
                }
            }
            previous = current;
        }
        Ok(tree)
    }

    /// Number of branches.
    pub fn len(&self) -> usize {
        self.branches.len()
    }

    /// Returns `true` if the tree has no branches.
    pub fn is_empty(&self) -> bool {
        self.branches.is_empty()
    }

    /// Returns `true` if no other branch hangs off branch `i`.
    pub fn is_leaf(&self, i: usize) -> bool {
        !self.branches.iter().any(|b| b.parent == Some(i))
    }

    /// Indices of the leaf (sink) branches (one `O(branches)` pass).
    pub fn sinks(&self) -> Vec<usize> {
        let mut has_child = vec![false; self.branches.len()];
        for b in &self.branches {
            if let Some(p) = b.parent {
                has_child[p] = true;
            }
        }
        (0..self.branches.len()).filter(|&i| !has_child[i]).collect()
    }

    /// The branch indices from the root to branch `i` (inclusive),
    /// root-first.
    pub fn path_from_root(&self, i: usize) -> Vec<usize> {
        let mut path = vec![i];
        let mut cur = i;
        while let Some(p) = self.branches[cur].parent {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Length of the root-to-tip path of branch `i`.
    pub fn path_length(&self, i: usize) -> Length {
        self.path_from_root(i).iter().map(|&b| self.branches[b].line.length()).sum()
    }

    /// Summarises the root-to-tip path of branch `i` as an equivalent
    /// uniform line: summed totals distributed over the summed length.
    ///
    /// This is the per-path abstraction behind tree-aware repeater insertion:
    /// each root-to-sink path is treated as the uniform line the paper's
    /// closed forms apply to.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidParameter`] only for degenerate
    /// trees (it cannot fail on branches built from valid lines).
    pub fn path_line(&self, i: usize) -> Result<DistributedLine, InterconnectError> {
        let path = self.path_from_root(i);
        let mut r = Resistance::ZERO;
        let mut l = Inductance::ZERO;
        let mut c = Capacitance::ZERO;
        let mut len = Length::ZERO;
        for &b in &path {
            let line = &self.branches[b].line;
            r += line.total_resistance();
            l += line.total_inductance();
            c += line.total_capacitance();
            len += line.length();
        }
        DistributedLine::from_totals(r, l, c, len)
    }

    /// Total wire length over all branches.
    pub fn total_length(&self) -> Length {
        self.branches.iter().map(|b| b.line.length()).sum()
    }

    /// Worst (longest flight-time) sink: the leaf whose path has the largest
    /// `sqrt(Lt·Ct)`.
    pub fn slowest_sink_by_time_of_flight(&self) -> Option<usize> {
        self.sinks().into_iter().max_by(|&a, &b| {
            let tof = |i: usize| -> f64 {
                let path = self.path_from_root(i);
                let l: Inductance =
                    path.iter().map(|&k| self.branches[k].line.total_inductance()).sum();
                let c: Capacitance =
                    path.iter().map(|&k| self.branches[k].line.total_capacitance()).sum();
                (l.henries() * c.farads()).sqrt()
            };
            tof(a).total_cmp(&tof(b))
        })
    }

    /// Time of flight of the root-to-tip path of branch `i`.
    pub fn path_time_of_flight(&self, i: usize) -> Time {
        let path = self.path_from_root(i);
        let l: Inductance = path.iter().map(|&k| self.branches[k].line.total_inductance()).sum();
        let c: Capacitance = path.iter().map(|&k| self.branches[k].line.total_capacitance()).sum();
        Time::from_seconds((l.henries() * c.farads()).sqrt())
    }

    /// Lowers the tree to the circuit layer's [`TreeSpec`] for dynamic
    /// simulation.
    ///
    /// Each branch gets at least `min_segments_per_branch` lumped segments,
    /// scaled up proportionally to its length so long branches stay finely
    /// discretised.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidParameter`] for an empty tree or
    /// zero `min_segments_per_branch`.
    pub fn to_tree_spec(
        &self,
        driver_resistance: Resistance,
        supply: Voltage,
        min_segments_per_branch: usize,
    ) -> Result<TreeSpec, InterconnectError> {
        if self.is_empty() {
            return Err(InterconnectError::InvalidParameter {
                what: "tree branch count",
                value: 0.0,
            });
        }
        if min_segments_per_branch == 0 {
            return Err(InterconnectError::InvalidParameter {
                what: "segments per branch",
                value: 0.0,
            });
        }
        let shortest =
            self.branches.iter().map(|b| b.line.length().meters()).fold(f64::INFINITY, f64::min);
        let mut spec = TreeSpec::new(driver_resistance);
        spec.supply = supply;
        for b in &self.branches {
            let scale = (b.line.length().meters() / shortest).round().max(1.0) as usize;
            spec.branches.push(TreeBranch {
                parent: b.parent,
                total_resistance: b.line.total_resistance(),
                total_inductance: b.line.total_inductance(),
                total_capacitance: b.line.total_capacitance(),
                segments: min_segments_per_branch * scale,
                sink_capacitance: b.sink_capacitance,
            });
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_units::{CapacitancePerLength, InductancePerLength, ResistancePerLength};

    fn path() -> DistributedLine {
        DistributedLine::new(
            ResistancePerLength::from_ohms_per_millimeter(50.0),
            InductancePerLength::from_nanohenries_per_millimeter(1.0),
            CapacitancePerLength::from_femtofarads_per_micrometer(0.1),
            Length::from_millimeters(10.0),
        )
        .unwrap()
    }

    #[test]
    fn symmetric_tree_has_the_expected_shape() {
        let tree =
            RoutingTree::symmetric(&path(), 3, 2, Capacitance::from_femtofarads(20.0)).unwrap();
        // 1 trunk + 2 + 4 = 7 branches, 4 sinks.
        assert_eq!(tree.len(), 7);
        assert_eq!(tree.sinks().len(), 4);
        assert!(!tree.is_empty());
        // Every root-to-sink path is electrically the template line.
        for sink in tree.sinks() {
            let p = tree.path_line(sink).unwrap();
            assert!((p.length().meters() - 0.01).abs() < 1e-12);
            assert!((p.total_resistance().ohms() - 500.0).abs() < 1e-9);
        }
        // Sinks carry the load, junctions do not.
        assert_eq!(tree.branches[0].sink_capacitance, Capacitance::ZERO);
        let sink = tree.sinks()[0];
        assert!((tree.branches[sink].sink_capacitance.farads() - 20e-15).abs() < 1e-24);
    }

    #[test]
    fn degenerate_parameters_are_rejected() {
        let c = Capacitance::ZERO;
        assert!(RoutingTree::symmetric(&path(), 0, 2, c).is_err());
        assert!(RoutingTree::symmetric(&path(), 3, 0, c).is_err());
        assert!(RoutingTree::symmetric(&path(), 3, 2, Capacitance::from_farads(-1.0)).is_err());
        assert!(RoutingTree::symmetric(&path(), 30, 10, c).is_err(), "cap the branch count");
        let empty = RoutingTree::new();
        assert!(empty.to_tree_spec(Resistance::ZERO, Voltage::from_volts(1.0), 4).is_err());
    }

    #[test]
    fn path_summaries_accumulate_down_the_tree() {
        let tree = RoutingTree::symmetric(&path(), 2, 3, Capacitance::ZERO).unwrap();
        assert_eq!(tree.path_from_root(3), vec![0, 3]);
        assert!((tree.path_length(3).meters() - 0.01).abs() < 1e-12);
        assert!((tree.total_length().meters() - 4.0 * 0.005).abs() < 1e-12);
        let tof = tree.path_time_of_flight(3).seconds();
        assert!((tof - (10e-9f64 * 1e-12).sqrt()).abs() < 1e-15);
        assert_eq!(tree.slowest_sink_by_time_of_flight(), Some(3));
    }

    #[test]
    fn lowering_preserves_topology_and_scales_segments() {
        let mut tree =
            RoutingTree::symmetric(&path(), 2, 2, Capacitance::from_femtofarads(10.0)).unwrap();
        // Stretch one leaf so it gets proportionally more segments.
        let long = tree.branches[2].line.with_length(Length::from_millimeters(15.0)).unwrap();
        tree.branches[2].line = long;
        let spec =
            tree.to_tree_spec(Resistance::from_ohms(100.0), Voltage::from_volts(1.8), 4).unwrap();
        assert_eq!(spec.branches.len(), 3);
        assert_eq!(spec.branches[1].parent, Some(0));
        assert_eq!(spec.branches[1].segments, 4);
        assert_eq!(spec.branches[2].segments, 12, "3x longer branch gets 3x the segments");
        assert!((spec.supply.volts() - 1.8).abs() < 1e-12);
        // The lowered tree simulates (smoke check through the circuit layer).
        let report = rlckit_circuit::tree::measure_tree_delays(&spec).unwrap();
        assert_eq!(report.sinks.len(), 2);
        assert_eq!(report.worst_sink().branch, 2);
    }
}
