//! Per-unit-length parasitic extraction from wire geometry.
//!
//! The paper takes per-unit-length `R`, `L`, `C` as given (from ref. \[7\]);
//! this module provides a simple quasi-TEM extractor so examples can start
//! from physical wire dimensions instead of raw parasitics:
//!
//! * **Resistance** — `ρ / (w·t)`, the DC sheet formula (no skin effect).
//! * **Capacitance** — the Sakurai–Tamaru empirical fit for a single wire over
//!   a ground plane, `C = ε [ 1.15 (w/h) + 2.80 (t/h)^0.222 ]`.
//! * **Inductance** — from the quasi-TEM identity `L·C_air = μ0·ε0`, where
//!   `C_air` is the same capacitance formula evaluated with `εr = 1`. This ties
//!   the loop inductance to the return path assumed by the capacitance model,
//!   which is the right level of fidelity for the paper's experiments.
//!
//! All formulas are documented approximations; DESIGN.md lists them as part of
//! the substitution for the paper's (unpublished) extraction setup.

use rlckit_units::{CapacitancePerLength, InductancePerLength, Length, ResistancePerLength};

use crate::error::InterconnectError;

/// Vacuum permittivity in farads per metre.
pub const EPSILON_0: f64 = 8.854_187_812_8e-12;
/// Vacuum permeability in henries per metre.
pub const MU_0: f64 = 1.256_637_062_12e-6;
/// Resistivity of copper at room temperature, in ohm-metres.
pub const RHO_COPPER: f64 = 1.68e-8;
/// Resistivity of aluminium at room temperature, in ohm-metres.
pub const RHO_ALUMINUM: f64 = 2.65e-8;
/// Relative permittivity of silicon dioxide.
pub const EPS_R_SIO2: f64 = 3.9;

/// Cross-sectional geometry of an on-chip wire above a return plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireGeometry {
    /// Wire width.
    pub width: Length,
    /// Wire (metal) thickness.
    pub thickness: Length,
    /// Dielectric height between the wire bottom and the return plane.
    pub height: Length,
    /// Metal resistivity in ohm-metres.
    pub resistivity: f64,
    /// Relative permittivity of the surrounding dielectric.
    pub dielectric_constant: f64,
}

impl WireGeometry {
    /// A copper wire in SiO₂ with the given width, thickness and height.
    pub fn copper_in_oxide(width: Length, thickness: Length, height: Length) -> Self {
        Self { width, thickness, height, resistivity: RHO_COPPER, dielectric_constant: EPS_R_SIO2 }
    }

    /// An aluminium wire in SiO₂ with the given width, thickness and height.
    pub fn aluminum_in_oxide(width: Length, thickness: Length, height: Length) -> Self {
        Self {
            width,
            thickness,
            height,
            resistivity: RHO_ALUMINUM,
            dielectric_constant: EPS_R_SIO2,
        }
    }

    fn validate(&self) -> Result<(), InterconnectError> {
        let check = |v: f64, what: &'static str| -> Result<(), InterconnectError> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(InterconnectError::InvalidParameter { what, value: v })
            }
        };
        check(self.width.meters(), "wire width")?;
        check(self.thickness.meters(), "wire thickness")?;
        check(self.height.meters(), "dielectric height")?;
        check(self.resistivity, "resistivity")?;
        check(self.dielectric_constant, "dielectric constant")?;
        Ok(())
    }

    /// DC resistance per unit length, `ρ / (w·t)`.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidParameter`] for non-positive dimensions.
    pub fn resistance_per_length(&self) -> Result<ResistancePerLength, InterconnectError> {
        self.validate()?;
        let area = self.width.meters() * self.thickness.meters();
        Ok(ResistancePerLength::from_ohms_per_meter(self.resistivity / area))
    }

    /// Capacitance per unit length with the configured dielectric constant.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidParameter`] for non-positive dimensions.
    pub fn capacitance_per_length(&self) -> Result<CapacitancePerLength, InterconnectError> {
        self.validate()?;
        Ok(CapacitancePerLength::from_farads_per_meter(
            self.capacitance_with_er(self.dielectric_constant),
        ))
    }

    /// Inductance per unit length from the quasi-TEM identity `L = μ0·ε0 / C_air`.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidParameter`] for non-positive dimensions.
    pub fn inductance_per_length(&self) -> Result<InductancePerLength, InterconnectError> {
        self.validate()?;
        let c_air = self.capacitance_with_er(1.0);
        Ok(InductancePerLength::from_henries_per_meter(MU_0 * EPSILON_0 / c_air))
    }

    /// All three per-unit-length parasitics in one call.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidParameter`] for non-positive dimensions.
    pub fn extract(
        &self,
    ) -> Result<(ResistancePerLength, InductancePerLength, CapacitancePerLength), InterconnectError>
    {
        Ok((
            self.resistance_per_length()?,
            self.inductance_per_length()?,
            self.capacitance_per_length()?,
        ))
    }

    /// Sakurai–Tamaru single-wire-over-plane capacitance with an explicit `εr`.
    fn capacitance_with_er(&self, er: f64) -> f64 {
        let w = self.width.meters();
        let t = self.thickness.meters();
        let h = self.height.meters();
        EPSILON_0 * er * (1.15 * (w / h) + 2.80 * (t / h).powf(0.222))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wide_clock_wire() -> WireGeometry {
        // A wide upper-metal clock wire: 4 µm wide, 1 µm thick, 2 µm over the plane.
        WireGeometry::copper_in_oxide(
            Length::from_micrometers(4.0),
            Length::from_micrometers(1.0),
            Length::from_micrometers(2.0),
        )
    }

    #[test]
    fn resistance_matches_sheet_formula() {
        let g = wide_clock_wire();
        let r = g.resistance_per_length().unwrap();
        let expected = RHO_COPPER / (4e-6 * 1e-6);
        assert!((r.ohms_per_meter() - expected).abs() / expected < 1e-12);
        // Sanity: a few Ω/mm for a wide copper wire.
        assert!(r.ohms_per_millimeter() > 1.0 && r.ohms_per_millimeter() < 10.0);
    }

    #[test]
    fn capacitance_is_in_the_expected_range() {
        let g = wide_clock_wire();
        let c = g.capacitance_per_length().unwrap();
        // On-chip wires run on the order of 0.1–0.3 fF/µm.
        let ff_per_um = c.femtofarads_per_micrometer();
        assert!(ff_per_um > 0.05 && ff_per_um < 0.5, "C = {ff_per_um} fF/µm");
    }

    #[test]
    fn inductance_is_in_the_expected_range() {
        let g = wide_clock_wire();
        let l = g.inductance_per_length().unwrap();
        // On-chip wires have ~0.2–1 nH/mm of loop inductance.
        let nh_per_mm = l.nanohenries_per_millimeter();
        assert!(nh_per_mm > 0.1 && nh_per_mm < 2.0, "L = {nh_per_mm} nH/mm");
    }

    #[test]
    fn quasi_tem_identity_holds() {
        let g = wide_clock_wire();
        let l = g.inductance_per_length().unwrap().henries_per_meter();
        let c_air = g.capacitance_with_er(1.0);
        assert!((l * c_air - MU_0 * EPSILON_0).abs() / (MU_0 * EPSILON_0) < 1e-12);
        // Propagation velocity on the line is c0/sqrt(εr).
        let c_er = g.capacitance_per_length().unwrap().farads_per_meter();
        let v = 1.0 / (l * c_er).sqrt();
        let c0 = 1.0 / (MU_0 * EPSILON_0).sqrt();
        assert!((v - c0 / EPS_R_SIO2.sqrt()).abs() / v < 1e-9);
    }

    #[test]
    fn aluminum_is_more_resistive_than_copper() {
        let cu = wide_clock_wire();
        let al = WireGeometry::aluminum_in_oxide(cu.width, cu.thickness, cu.height);
        assert!(
            al.resistance_per_length().unwrap().ohms_per_meter()
                > cu.resistance_per_length().unwrap().ohms_per_meter()
        );
    }

    #[test]
    fn narrower_wire_has_more_resistance_and_less_capacitance() {
        let wide = wide_clock_wire();
        let narrow = WireGeometry::copper_in_oxide(
            Length::from_micrometers(0.5),
            wide.thickness,
            wide.height,
        );
        assert!(
            narrow.resistance_per_length().unwrap().ohms_per_meter()
                > wide.resistance_per_length().unwrap().ohms_per_meter()
        );
        assert!(
            narrow.capacitance_per_length().unwrap().farads_per_meter()
                < wide.capacitance_per_length().unwrap().farads_per_meter()
        );
        // Narrower wire ⇒ larger inductance (smaller air capacitance).
        assert!(
            narrow.inductance_per_length().unwrap().henries_per_meter()
                > wide.inductance_per_length().unwrap().henries_per_meter()
        );
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        let mut g = wide_clock_wire();
        g.width = Length::ZERO;
        assert!(g.extract().is_err());
        let mut g = wide_clock_wire();
        g.resistivity = -1.0;
        assert!(g.resistance_per_length().is_err());
        let mut g = wide_clock_wire();
        g.dielectric_constant = f64::NAN;
        assert!(g.capacitance_per_length().is_err());
    }
}
