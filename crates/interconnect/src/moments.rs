//! Exact low-order moments of the driven-line transfer function.
//!
//! Expanding Eq. (1) of the paper in powers of `s` (the same expansion that
//! leads to Eq. (7)) gives a denominator
//!
//! ```text
//! D(s) = 1 + b1·s + b2·s² + b3·s³ + …
//! ```
//!
//! with a numerator of exactly 1 (the driven, capacitively loaded line has no
//! finite zeros). The coefficients are polynomial in the five impedances
//! `Rt, Lt, Ct, Rtr, CL` and are computed here in closed form:
//!
//! ```text
//! b1 = Rt·Ct(½ + CT) + Rtr(Ct + CL)
//! b2 = Lt·Ct(½ + CT) + (Rt·Ct)²(1/24 + CT/6) + Rtr·Rt·Ct(CL/2 + Ct/6)
//! b3 = Rt·Ct·Lt·Ct(1/12 + CT/3) + (Rt·Ct)³(1/720 + CT/120)
//!      + Rtr[ CL·Lt·Ct/2 + CL(Rt·Ct)²/24 + Ct·Lt·Ct/6 + Ct(Rt·Ct)²/120 ]
//! ```
//!
//! where `CT = CL/Ct`. The first coefficient `b1` is the Elmore delay of the
//! circuit; `b1` and `b2` feed the two-pole analytic response model in
//! `rlckit-core`, and the paper's `ζ` (Eq. 6) is `b1·ωn/2`.

use rlckit_units::{Capacitance, Resistance, Time};

use crate::twoport::DrivenLine;

/// The first three denominator coefficients of the driven-line transfer function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferMoments {
    /// Coefficient of `s` (seconds) — equal to the Elmore delay.
    pub b1: f64,
    /// Coefficient of `s²` (seconds²).
    pub b2: f64,
    /// Coefficient of `s³` (seconds³).
    pub b3: f64,
}

impl TransferMoments {
    /// Computes the moments for a driven line.
    pub fn of(driven: &DrivenLine) -> Self {
        let rt = driven.line().total_resistance().ohms();
        let lt = driven.line().total_inductance().henries();
        let ct = driven.line().total_capacitance().farads();
        let rtr = driven.driver_resistance().ohms();
        let cl = driven.load_capacitance().farads();
        Self::from_impedances(rt, lt, ct, rtr, cl)
    }

    /// Computes the moments directly from raw impedance values (SI units).
    pub fn from_impedances(rt: f64, lt: f64, ct: f64, rtr: f64, cl: f64) -> Self {
        let ct_ratio = cl / ct; // CT
        let a = rt * ct; // the distributed RC product
        let b = lt * ct; // the distributed LC product

        let b1 = a * (0.5 + ct_ratio) + rtr * (ct + cl);
        let b2 = b * (0.5 + ct_ratio)
            + a * a * (1.0 / 24.0 + ct_ratio / 6.0)
            + rtr * a * (cl / 2.0 + ct / 6.0);
        let b3 = a * b * (1.0 / 12.0 + ct_ratio / 3.0)
            + a * a * a * (1.0 / 720.0 + ct_ratio / 120.0)
            + rtr * (cl * b / 2.0 + cl * a * a / 24.0 + ct * b / 6.0 + ct * a * a / 120.0);
        Self { b1, b2, b3 }
    }

    /// The Elmore delay of the circuit (first moment of the impulse response),
    /// which equals `b1` because the transfer function has no zeros.
    pub fn elmore_delay(&self) -> Time {
        Time::from_seconds(self.b1)
    }
}

/// Elmore delay of a gate driving a distributed RC(-L) line with a capacitive
/// load: `Rtr(Ct + CL) + Rt(Ct/2 + CL)`.
///
/// Inductance does not appear — the Elmore delay of an RLC line equals that of
/// the corresponding RC line, which is exactly why Elmore-based flows
/// underestimate inductive effects.
pub fn elmore_delay(
    total_resistance: Resistance,
    total_capacitance: Capacitance,
    driver_resistance: Resistance,
    load_capacitance: Capacitance,
) -> Time {
    let rt = total_resistance.ohms();
    let ct = total_capacitance.farads();
    let rtr = driver_resistance.ohms();
    let cl = load_capacitance.farads();
    Time::from_seconds(rtr * (ct + cl) + rt * (ct / 2.0 + cl))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::DistributedLine;
    use rlckit_numeric::complex::Complex;
    use rlckit_units::{Inductance, Length};

    fn driven(rt: f64, lt: f64, ct: f64, rtr: f64, cl: f64) -> DrivenLine {
        let line = DistributedLine::from_totals(
            Resistance::from_ohms(rt),
            Inductance::from_henries(lt),
            Capacitance::from_farads(ct),
            Length::from_millimeters(10.0),
        )
        .unwrap();
        DrivenLine::new(line, Resistance::from_ohms(rtr), Capacitance::from_farads(cl)).unwrap()
    }

    #[test]
    fn b1_is_the_elmore_delay() {
        let d = driven(500.0, 10e-9, 1e-12, 250.0, 0.2e-12);
        let m = TransferMoments::of(&d);
        let expected = 250.0 * 1.2e-12 + 500.0 * (0.5e-12 + 0.2e-12);
        assert!((m.b1 - expected).abs() < 1e-18);
        assert!((m.elmore_delay().seconds() - expected).abs() < 1e-18);
        let helper = elmore_delay(
            Resistance::from_ohms(500.0),
            Capacitance::from_picofarads(1.0),
            Resistance::from_ohms(250.0),
            Capacitance::from_picofarads(0.2),
        );
        assert!((helper.seconds() - expected).abs() < 1e-18);
    }

    #[test]
    fn elmore_delay_is_independent_of_inductance() {
        let low_l = TransferMoments::of(&driven(500.0, 1e-12, 1e-12, 250.0, 0.2e-12));
        let high_l = TransferMoments::of(&driven(500.0, 100e-9, 1e-12, 250.0, 0.2e-12));
        assert!((low_l.b1 - high_l.b1).abs() < 1e-20);
        // …but the second moment does feel the inductance.
        assert!(high_l.b2 > low_l.b2);
    }

    #[test]
    fn bare_line_moments_match_known_distributed_rc_values() {
        // For an unloaded, undriven distributed RC line: b1 = RC/2, b2 = (RC)²/24 (+LC/2).
        let m = TransferMoments::from_impedances(1000.0, 0.0, 1e-12, 0.0, 0.0);
        assert!((m.b1 - 0.5e-9).abs() < 1e-18);
        assert!((m.b2 - (1e-9f64 * 1e-9) / 24.0).abs() < 1e-24);
    }

    #[test]
    fn moments_match_numerical_derivatives_of_exact_transfer_function() {
        // Compare against finite-difference derivatives of the exact H(s) at s → 0:
        // H(s) ≈ 1 − b1 s + (b1² − b2) s² − …
        let d = driven(500.0, 8e-9, 1e-12, 300.0, 0.3e-12);
        let m = TransferMoments::of(&d);

        // Use a real-axis probe small enough for the cubic term to be negligible.
        let h = 1e6; // s-value in rad/s; b1·s ~ 1e-3
        let f = |s: f64| d.transfer_function(Complex::from_real(s)).re;
        let m1 = (f(h) - f(-h)) / (2.0 * h); // = -b1
        let m2 = (f(h) - 2.0 * f(0.0) + f(-h)) / (h * h); // = 2(b1² − b2)
        assert!((m1 + m.b1).abs() / m.b1 < 1e-4, "first derivative {m1} vs -b1 {}", -m.b1);
        let expected_m2 = 2.0 * (m.b1 * m.b1 - m.b2);
        assert!(
            (m2 - expected_m2).abs() / expected_m2.abs() < 1e-3,
            "second derivative {m2} vs {expected_m2}"
        );
    }

    #[test]
    fn third_moment_is_positive_and_grows_with_inductance() {
        let low = TransferMoments::from_impedances(500.0, 1e-9, 1e-12, 100.0, 0.1e-12);
        let high = TransferMoments::from_impedances(500.0, 50e-9, 1e-12, 100.0, 0.1e-12);
        assert!(low.b3 > 0.0);
        assert!(high.b3 > low.b3);
    }
}
