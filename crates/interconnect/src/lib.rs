//! Distributed RLC interconnect modelling for the `rlckit` workspace.
//!
//! This crate provides everything between "a wire on a chip" and "the five
//! impedances the delay model needs":
//!
//! * [`mod@line`] — uniform [`DistributedLine`]s described by per-unit-length
//!   `R`, `L`, `C` and a length, with totals, time-of-flight and conversion to
//!   simulatable ladder specifications;
//! * [`geometry`] — quasi-TEM extraction of per-unit-length parasitics from
//!   wire cross-section geometry;
//! * [`technology`] — technology-generation presets (minimum-buffer `R0`,
//!   `C0`, `Amin`, representative wire classes) used by the repeater and
//!   scaling experiments;
//! * [`twoport`] — the exact Laplace-domain transfer function of a gate-driven,
//!   capacitively loaded lossy line (Eq. 1 of the paper) and its step response
//!   via numerical inverse Laplace;
//! * [`moments`] — closed-form low-order denominator coefficients (Elmore
//!   delay and friends);
//! * [`merit`] — figures of merit deciding when inductance must be modelled
//!   (ref. \[8\] of the paper) and the `T_{L/R}` parameter of Eq. (13).
//!
//! # Example
//!
//! ```
//! use rlckit_interconnect::technology::Technology;
//! use rlckit_interconnect::merit::{assess_inductance, t_l_over_r};
//! use rlckit_units::{Length, Time};
//!
//! # fn main() -> Result<(), rlckit_interconnect::InterconnectError> {
//! let tech = Technology::quarter_micron();
//! let clock_spine = tech.global_wire.line(Length::from_millimeters(10.0))?;
//! assert!(assess_inductance(&clock_spine, Time::from_picoseconds(50.0)).needs_inductance());
//! let t_lr = t_l_over_r(&clock_spine, tech.buffer_time_constant());
//! assert!(t_lr > 3.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod geometry;
pub mod line;
pub mod merit;
pub mod mesh;
pub mod moments;
pub mod technology;
pub mod tree;
pub mod twoport;

pub use error::InterconnectError;
pub use line::DistributedLine;
pub use mesh::MeshGeometry;
pub use technology::Technology;
pub use tree::{RoutingBranch, RoutingTree};
pub use twoport::DrivenLine;
