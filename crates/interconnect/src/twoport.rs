//! Exact Laplace-domain analysis of a gate-driven lossy transmission line.
//!
//! This module evaluates the paper's Eq. (1) without any series truncation:
//! the driven, loaded line is treated as an ABCD two-port with
//!
//! ```text
//! θ(s)  = sqrt( (Rt + s·Lt) · s·Ct )          (propagation constant × length)
//! Z0(s) = sqrt( (Rt + s·Lt) / (s·Ct) )        (characteristic impedance)
//! A = D = cosh θ,  B = Z0·sinh θ,  C = sinh θ / Z0
//! ```
//!
//! and the voltage transfer from the step source (behind `Rtr`) to the load
//! capacitance `CL` is
//!
//! ```text
//! H(s) = 1 / ( A + B·s·CL + Rtr·C + Rtr·D·s·CL )
//! ```
//!
//! The time-domain step response is recovered with the Talbot inverse Laplace
//! transform. This is the most faithful reference available short of the
//! transient ladder simulation, and the two agree closely (see the
//! integration tests), which validates the simulator substitution for AS/X.

use rlckit_numeric::complex::Complex;
use rlckit_numeric::laplace::talbot;
use rlckit_units::{Capacitance, Resistance, Time};

use crate::error::InterconnectError;
use crate::line::DistributedLine;

/// A distributed line together with its driver resistance and load capacitance
/// (the complete circuit of Fig. 1), analysed exactly in the Laplace domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrivenLine {
    line: DistributedLine,
    driver_resistance: Resistance,
    load_capacitance: Capacitance,
}

impl DrivenLine {
    /// Wraps a line with its termination.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidParameter`] if the driver
    /// resistance or load capacitance is negative or not finite (zero is allowed).
    pub fn new(
        line: DistributedLine,
        driver_resistance: Resistance,
        load_capacitance: Capacitance,
    ) -> Result<Self, InterconnectError> {
        if !(driver_resistance.ohms() >= 0.0) || !driver_resistance.ohms().is_finite() {
            return Err(InterconnectError::InvalidParameter {
                what: "driver resistance",
                value: driver_resistance.ohms(),
            });
        }
        if !(load_capacitance.farads() >= 0.0) || !load_capacitance.farads().is_finite() {
            return Err(InterconnectError::InvalidParameter {
                what: "load capacitance",
                value: load_capacitance.farads(),
            });
        }
        Ok(Self { line, driver_resistance, load_capacitance })
    }

    /// The underlying distributed line.
    pub fn line(&self) -> &DistributedLine {
        &self.line
    }

    /// Driver equivalent output resistance `Rtr`.
    pub fn driver_resistance(&self) -> Resistance {
        self.driver_resistance
    }

    /// Receiver input capacitance `CL`.
    pub fn load_capacitance(&self) -> Capacitance {
        self.load_capacitance
    }

    /// Exact voltage transfer function `Vout(s)/Vin(s)` at a complex frequency.
    ///
    /// At `s = 0` the transfer is exactly 1 (the line is a DC short to the
    /// load once charged).
    pub fn transfer_function(&self, s: Complex) -> Complex {
        if s.abs() == 0.0 {
            return Complex::ONE;
        }
        let rt = self.line.total_resistance().ohms();
        let lt = self.line.total_inductance().henries();
        let ct = self.line.total_capacitance().farads();
        let rtr = self.driver_resistance.ohms();
        let cl = self.load_capacitance.farads();

        let series = s * lt + rt; // Rt + s·Lt
        let shunt = s * ct; // s·Ct
        let theta = (series * shunt).sqrt();
        let z0 = (series / shunt).sqrt();

        let cosh = theta.cosh();
        let sinh = theta.sinh();
        let a = cosh;
        let b = z0 * sinh;
        let c = sinh / z0;
        let d = cosh;

        let y_load = s * cl; // load admittance
        let denom = a + b * y_load + (c + d * y_load) * rtr;
        denom.recip()
    }

    /// Step response `Vout(t)` for a unit step input, via the Talbot inverse
    /// Laplace transform of `H(s)/s`.
    ///
    /// Returns 0 for `t <= 0`.
    pub fn step_response(&self, t: Time) -> f64 {
        if t.seconds() <= 0.0 {
            return 0.0;
        }
        talbot(|s| self.transfer_function(s) / s, t.seconds(), 48)
    }

    /// Exact 50% propagation delay of the step response, found by scanning the
    /// Talbot-evaluated response and refining the crossing by bisection.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::Analysis`] if the response never reaches
    /// 50% within a generous time horizon (which would indicate a malformed
    /// line description).
    pub fn delay_50(&self) -> Result<Time, InterconnectError> {
        let rt = self.line.total_resistance().ohms() + self.driver_resistance.ohms();
        let ct = self.line.total_capacitance().farads() + self.load_capacitance.farads();
        let tof = (self.line.total_inductance().henries() * ct).sqrt();
        let mut horizon = 4.0 * rt * ct + 10.0 * tof;

        for _ in 0..6 {
            let samples = 400usize;
            let mut prev_t = 0.0;
            let mut prev_v = 0.0;
            for i in 1..=samples {
                let t = horizon * i as f64 / samples as f64;
                let v = self.step_response(Time::from_seconds(t));
                if prev_v <= 0.5 && v > 0.5 {
                    // Refine with bisection on the smooth Talbot evaluation.
                    let mut lo = prev_t;
                    let mut hi = t;
                    for _ in 0..60 {
                        let mid = 0.5 * (lo + hi);
                        let vm = self.step_response(Time::from_seconds(mid));
                        if vm > 0.5 {
                            hi = mid;
                        } else {
                            lo = mid;
                        }
                    }
                    return Ok(Time::from_seconds(0.5 * (lo + hi)));
                }
                prev_t = t;
                prev_v = v;
            }
            horizon *= 4.0;
        }
        Err(InterconnectError::Analysis {
            reason: "step response never crossed 50% of the input".to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlckit_units::{Inductance, Length};

    fn line(rt: f64, lt: f64, ct: f64) -> DistributedLine {
        DistributedLine::from_totals(
            Resistance::from_ohms(rt),
            Inductance::from_henries(lt),
            Capacitance::from_farads(ct),
            Length::from_millimeters(10.0),
        )
        .unwrap()
    }

    #[test]
    fn dc_transfer_is_unity() {
        let driven = DrivenLine::new(
            line(500.0, 10e-9, 1e-12),
            Resistance::from_ohms(250.0),
            Capacitance::from_picofarads(0.1),
        )
        .unwrap();
        assert_eq!(driven.transfer_function(Complex::ZERO), Complex::ONE);
        // Very low (but non-zero) frequency is still close to unity.
        let h = driven.transfer_function(Complex::new(0.0, 1e3));
        assert!((h.abs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn accessors() {
        let l = line(500.0, 10e-9, 1e-12);
        let driven =
            DrivenLine::new(l, Resistance::from_ohms(100.0), Capacitance::from_femtofarads(20.0))
                .unwrap();
        assert_eq!(driven.driver_resistance().ohms(), 100.0);
        assert!((driven.load_capacitance().femtofarads() - 20.0).abs() < 1e-12);
        assert_eq!(driven.line().total_resistance().ohms(), 500.0);
    }

    #[test]
    fn negative_terminations_are_rejected() {
        let l = line(500.0, 10e-9, 1e-12);
        assert!(DrivenLine::new(l, Resistance::from_ohms(-1.0), Capacitance::ZERO).is_err());
        assert!(DrivenLine::new(l, Resistance::ZERO, Capacitance::from_farads(-1e-15)).is_err());
        assert!(DrivenLine::new(l, Resistance::from_ohms(f64::NAN), Capacitance::ZERO).is_err());
    }

    #[test]
    fn rc_dominated_delay_matches_sakurai() {
        // Negligible inductance, no terminations: 50% delay → 0.377·Rt·Ct.
        let driven =
            DrivenLine::new(line(1000.0, 1e-15, 1e-12), Resistance::ZERO, Capacitance::ZERO)
                .unwrap();
        let d = driven.delay_50().unwrap().seconds();
        let expected = 0.377 * 1000.0 * 1e-12;
        assert!((d - expected).abs() / expected < 0.02, "delay {d}, expected {expected}");
    }

    #[test]
    fn driven_inductive_line_delay_matches_hand_derived_value() {
        // A line with appreciable inductance but a well-damped driver — the
        // regime the paper's Table 1 covers and the regime in which the Talbot
        // inversion of the sharp-front-free response is reliable.
        //
        // Rt = 500 Ω, Lt = 10 nH, Ct = 1 pF, Rtr = 200 Ω, CL = 0:
        // ζ = 250·0.01·0.9 = 2.25 and tpd ≈ 1.48·ζ/ωn ≈ 333 ps (Eq. 9).
        // (Very low-loss *undriven* lines have an almost discontinuous response
        // whose numerical inversion degrades; use the transient ladder simulator
        // for that corner — see the crate documentation and integration tests.)
        let driven = DrivenLine::new(
            line(500.0, 10e-9, 1e-12),
            Resistance::from_ohms(200.0),
            Capacitance::ZERO,
        )
        .unwrap();
        let d = driven.delay_50().unwrap().seconds();
        let expected = 333e-12;
        assert!(
            (d - expected).abs() / expected < 0.15,
            "delay {d}, hand-derived estimate {expected}"
        );
    }

    #[test]
    fn step_response_is_causal_and_settles_to_one() {
        let driven = DrivenLine::new(
            line(500.0, 10e-9, 1e-12),
            Resistance::from_ohms(250.0),
            Capacitance::from_picofarads(0.1),
        )
        .unwrap();
        assert_eq!(driven.step_response(Time::ZERO), 0.0);
        assert_eq!(driven.step_response(Time::from_seconds(-1.0)), 0.0);
        let late = driven.step_response(Time::from_nanoseconds(50.0));
        assert!((late - 1.0).abs() < 1e-3, "late value {late}");
    }

    #[test]
    fn adding_driver_resistance_increases_delay() {
        let l = line(500.0, 10e-9, 1e-12);
        let bare = DrivenLine::new(l, Resistance::ZERO, Capacitance::ZERO).unwrap();
        let loaded =
            DrivenLine::new(l, Resistance::from_ohms(500.0), Capacitance::from_picofarads(0.5))
                .unwrap();
        let d_bare = bare.delay_50().unwrap();
        let d_loaded = loaded.delay_50().unwrap();
        assert!(d_loaded > d_bare);
    }
}
