//! Uniform distributed RLC lines.
//!
//! A [`DistributedLine`] is described by per-unit-length resistance,
//! inductance and capacitance plus a length — exactly the `R`, `L`, `C`, `l`
//! of the paper. Total impedances (`Rt`, `Lt`, `Ct`), derived time constants
//! and conversions to lumped ladder specifications all live here.

use rlckit_circuit::ladder::{LadderSpec, SegmentStyle};
use rlckit_units::{
    Capacitance, CapacitancePerLength, Inductance, InductancePerLength, Length, Resistance,
    ResistancePerLength, Time, Voltage,
};

use crate::error::InterconnectError;

/// A uniform interconnect line with distributed RLC parasitics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributedLine {
    resistance_per_length: ResistancePerLength,
    inductance_per_length: InductancePerLength,
    capacitance_per_length: CapacitancePerLength,
    length: Length,
}

impl DistributedLine {
    /// Creates a line from per-unit-length parasitics and a length.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidParameter`] if any value is
    /// non-positive or not finite.
    pub fn new(
        resistance_per_length: ResistancePerLength,
        inductance_per_length: InductancePerLength,
        capacitance_per_length: CapacitancePerLength,
        length: Length,
    ) -> Result<Self, InterconnectError> {
        let check = |v: f64, what: &'static str| -> Result<(), InterconnectError> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(InterconnectError::InvalidParameter { what, value: v })
            }
        };
        check(resistance_per_length.ohms_per_meter(), "resistance per length")?;
        check(inductance_per_length.henries_per_meter(), "inductance per length")?;
        check(capacitance_per_length.farads_per_meter(), "capacitance per length")?;
        check(length.meters(), "line length")?;
        Ok(Self { resistance_per_length, inductance_per_length, capacitance_per_length, length })
    }

    /// Creates a line directly from total impedances by distributing them
    /// uniformly over the given length.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidParameter`] if any value is
    /// non-positive or not finite.
    pub fn from_totals(
        total_resistance: Resistance,
        total_inductance: Inductance,
        total_capacitance: Capacitance,
        length: Length,
    ) -> Result<Self, InterconnectError> {
        if !(length.meters() > 0.0) || !length.meters().is_finite() {
            return Err(InterconnectError::InvalidParameter {
                what: "line length",
                value: length.meters(),
            });
        }
        Self::new(
            total_resistance.per_length_over(length),
            total_inductance.per_length_over(length),
            total_capacitance.per_length_over(length),
            length,
        )
    }

    /// Per-unit-length resistance `R`.
    pub fn resistance_per_length(&self) -> ResistancePerLength {
        self.resistance_per_length
    }

    /// Per-unit-length inductance `L`.
    pub fn inductance_per_length(&self) -> InductancePerLength {
        self.inductance_per_length
    }

    /// Per-unit-length capacitance `C`.
    pub fn capacitance_per_length(&self) -> CapacitancePerLength {
        self.capacitance_per_length
    }

    /// Line length `l`.
    pub fn length(&self) -> Length {
        self.length
    }

    /// Total resistance `Rt = R·l`.
    pub fn total_resistance(&self) -> Resistance {
        self.resistance_per_length * self.length
    }

    /// Total inductance `Lt = L·l`.
    pub fn total_inductance(&self) -> Inductance {
        self.inductance_per_length * self.length
    }

    /// Total capacitance `Ct = C·l`.
    pub fn total_capacitance(&self) -> Capacitance {
        self.capacitance_per_length * self.length
    }

    /// Lossless characteristic impedance `sqrt(L/C)`.
    pub fn characteristic_impedance(&self) -> Resistance {
        Resistance::from_ohms(
            (self.inductance_per_length.henries_per_meter()
                / self.capacitance_per_length.farads_per_meter())
            .sqrt(),
        )
    }

    /// Wave time of flight over the whole line, `l·sqrt(L·C) = sqrt(Lt·Ct)`.
    pub fn time_of_flight(&self) -> Time {
        (self.total_inductance() * self.total_capacitance()).sqrt()
    }

    /// Distributed RC time constant `Rt·Ct`.
    pub fn rc_time_constant(&self) -> Time {
        self.total_resistance() * self.total_capacitance()
    }

    /// Total line attenuation factor `Rt/2 · sqrt(Ct/Lt)` — the damping factor
    /// of the unloaded line (ζ of Eq. (6) with `RT = CT = 0` is half of it
    /// plus the 0.5 term; this quantity is the classical lossy-line
    /// attenuation exponent).
    pub fn attenuation(&self) -> f64 {
        self.total_resistance().ohms() / 2.0
            * (self.total_capacitance().farads() / self.total_inductance().henries()).sqrt()
    }

    /// Returns a line with the same per-unit-length parasitics but a new length.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidParameter`] for a non-positive length.
    pub fn with_length(&self, length: Length) -> Result<Self, InterconnectError> {
        Self::new(
            self.resistance_per_length,
            self.inductance_per_length,
            self.capacitance_per_length,
            length,
        )
    }

    /// Splits the line into `sections` equal pieces, as repeater insertion does.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::InvalidParameter`] if `sections` is zero.
    pub fn section(&self, sections: usize) -> Result<Self, InterconnectError> {
        if sections == 0 {
            return Err(InterconnectError::InvalidParameter { what: "section count", value: 0.0 });
        }
        self.with_length(self.length / sections as f64)
    }

    /// Builds a lumped ladder specification for simulating this line driven by
    /// a gate with output resistance `driver` and loaded by `load`.
    pub fn to_ladder_spec(
        &self,
        driver: Resistance,
        load: Capacitance,
        segments: usize,
        supply: Voltage,
    ) -> LadderSpec {
        LadderSpec {
            total_resistance: self.total_resistance(),
            total_inductance: self.total_inductance(),
            total_capacitance: self.total_capacitance(),
            segments,
            style: SegmentStyle::Pi,
            driver_resistance: driver,
            load_capacitance: load,
            supply,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn per_length() -> (ResistancePerLength, InductancePerLength, CapacitancePerLength) {
        (
            ResistancePerLength::from_ohms_per_meter(25e3),
            InductancePerLength::from_henries_per_meter(5e-7),
            CapacitancePerLength::from_farads_per_meter(200e-12),
        )
    }

    #[test]
    fn totals_scale_with_length() {
        let (r, l, c) = per_length();
        let line = DistributedLine::new(r, l, c, Length::from_millimeters(10.0)).unwrap();
        assert!((line.total_resistance().ohms() - 250.0).abs() < 1e-9);
        assert!((line.total_inductance().nanohenries() - 5.0).abs() < 1e-9);
        assert!((line.total_capacitance().picofarads() - 2.0).abs() < 1e-9);
        assert_eq!(line.length().millimeters(), 10.0);
        assert_eq!(line.resistance_per_length(), r);
        assert_eq!(line.inductance_per_length(), l);
        assert_eq!(line.capacitance_per_length(), c);
    }

    #[test]
    fn from_totals_round_trips() {
        let line = DistributedLine::from_totals(
            Resistance::from_ohms(500.0),
            Inductance::from_nanohenries(10.0),
            Capacitance::from_picofarads(1.0),
            Length::from_millimeters(5.0),
        )
        .unwrap();
        assert!((line.total_resistance().ohms() - 500.0).abs() < 1e-9);
        assert!((line.total_inductance().nanohenries() - 10.0).abs() < 1e-9);
        assert!((line.total_capacitance().picofarads() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn derived_quantities() {
        let (r, l, c) = per_length();
        let line = DistributedLine::new(r, l, c, Length::from_millimeters(10.0)).unwrap();
        let z0 = line.characteristic_impedance().ohms();
        assert!((z0 - (5e-7f64 / 200e-12).sqrt()).abs() < 1e-9);
        let tof = line.time_of_flight().seconds();
        assert!((tof - (5e-9f64 * 2e-12).sqrt()).abs() < 1e-20);
        let rc = line.rc_time_constant().seconds();
        assert!((rc - 250.0 * 2e-12).abs() < 1e-20);
        assert!(line.attenuation() > 0.0);
    }

    #[test]
    fn sectioning_divides_totals() {
        let (r, l, c) = per_length();
        let line = DistributedLine::new(r, l, c, Length::from_millimeters(10.0)).unwrap();
        let half = line.section(2).unwrap();
        assert!((half.total_resistance().ohms() - 125.0).abs() < 1e-9);
        assert!((half.total_capacitance().picofarads() - 1.0).abs() < 1e-9);
        assert!(line.section(0).is_err());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let (r, l, c) = per_length();
        assert!(DistributedLine::new(r, l, c, Length::ZERO).is_err());
        assert!(DistributedLine::new(
            ResistancePerLength::ZERO,
            l,
            c,
            Length::from_millimeters(1.0)
        )
        .is_err());
        assert!(DistributedLine::new(
            r,
            InductancePerLength::from_henries_per_meter(f64::NAN),
            c,
            Length::from_millimeters(1.0)
        )
        .is_err());
        assert!(DistributedLine::from_totals(
            Resistance::from_ohms(1.0),
            Inductance::from_nanohenries(1.0),
            Capacitance::from_picofarads(1.0),
            Length::ZERO
        )
        .is_err());
    }

    #[test]
    fn ladder_spec_conversion() {
        let (r, l, c) = per_length();
        let line = DistributedLine::new(r, l, c, Length::from_millimeters(10.0)).unwrap();
        let spec = line.to_ladder_spec(
            Resistance::from_ohms(100.0),
            Capacitance::from_femtofarads(50.0),
            40,
            Voltage::from_volts(1.0),
        );
        assert_eq!(spec.segments, 40);
        assert!((spec.total_resistance.ohms() - 250.0).abs() < 1e-9);
        assert!((spec.driver_resistance.ohms() - 100.0).abs() < 1e-9);
        assert!((spec.load_capacitance.femtofarads() - 50.0).abs() < 1e-9);
    }
}
