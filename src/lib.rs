//! # rlckit — inductance-aware interconnect delay and repeater insertion
//!
//! `rlckit` is a workspace-spanning facade for a reproduction of
//! *Y. I. Ismail and E. G. Friedman, "Effects of Inductance on the Propagation
//! Delay and Repeater Insertion in VLSI Circuits", DAC 1999*: a closed-form
//! propagation-delay model for CMOS gates driving distributed RLC lines, and
//! closed-form optimum repeater insertion for such lines.
//!
//! The individual crates are re-exported under friendlier module names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`units`] | `rlckit-units` | physical-quantity newtypes |
//! | [`numeric`] | `rlckit-numeric` | LU, root finding, optimisation, inverse Laplace |
//! | [`circuit`] | `rlckit-circuit` | MNA transient/AC simulator (the AS/X substitute) |
//! | [`interconnect`] | `rlckit-interconnect` | distributed lines, geometry, technology, exact two-port |
//! | [`model`] | `rlckit-core` | the Eq. (9) delay model, ζ, RC baselines |
//! | [`repeater`] | `rlckit-repeater` | Bakoglu RC and Ismail–Friedman RLC repeater insertion |
//! | [`coupling`] | `rlckit-coupling` | coupled buses: crosstalk scenarios, shields, bus-aware repeaters |
//!
//! # Quick start
//!
//! ```
//! use rlckit::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 10 mm wide clock spine in a 0.25 µm technology, driven by a 100× buffer.
//! let tech = Technology::quarter_micron();
//! let line = tech.global_wire.line(Length::from_millimeters(10.0))?;
//! let load = GateRlcLoad::from_line(
//!     &line,
//!     tech.buffer_resistance(100.0)?,
//!     tech.buffer_capacitance(100.0)?,
//! )?;
//!
//! // The paper's closed-form 50% delay (Eq. 9) and the RC model it improves on.
//! let rlc = propagation_delay(&load);
//! let elmore = rlckit::model::rc_models::elmore_delay(&load);
//! assert!(rlc < elmore, "the Elmore estimate is pessimistic for this driver-dominated wire");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rlckit_circuit as circuit;
pub use rlckit_core as model;
pub use rlckit_coupling as coupling;
pub use rlckit_interconnect as interconnect;
pub use rlckit_numeric as numeric;
pub use rlckit_repeater as repeater;
pub use rlckit_units as units;

/// Commonly used types and functions, re-exported for convenient glob imports.
pub mod prelude {
    pub use rlckit_circuit::ladder::{measure_step_delay, LadderSpec, SegmentStyle};
    pub use rlckit_core::load::GateRlcLoad;
    pub use rlckit_core::model::{propagation_delay, scaled_delay};
    pub use rlckit_coupling::bus::UniformBusSpec;
    pub use rlckit_coupling::crosstalk::crosstalk_metrics;
    pub use rlckit_coupling::netlist::BusDrive;
    pub use rlckit_coupling::scenario::{LineDrive, SwitchingPattern};
    pub use rlckit_interconnect::merit::{assess_inductance, t_l_over_r};
    pub use rlckit_interconnect::technology::Technology;
    pub use rlckit_interconnect::twoport::DrivenLine;
    pub use rlckit_interconnect::DistributedLine;
    pub use rlckit_repeater::design::{DesignStrategy, RepeaterDesigner};
    pub use rlckit_repeater::RepeaterProblem;
    pub use rlckit_units::{
        Area, Capacitance, CapacitancePerLength, Energy, Frequency, Inductance,
        InductancePerLength, Length, Power, Resistance, ResistancePerLength, Time, Voltage,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_modules_are_wired_together() {
        let tech = Technology::quarter_micron();
        let line = tech.global_wire.line(Length::from_millimeters(10.0)).unwrap();
        let load = GateRlcLoad::from_line(
            &line,
            tech.buffer_resistance(100.0).unwrap(),
            tech.buffer_capacitance(100.0).unwrap(),
        )
        .unwrap();
        let delay = propagation_delay(&load);
        assert!(delay.picoseconds() > 1.0);
        assert!(assess_inductance(&line, Time::from_picoseconds(50.0)).needs_inductance());
    }
}
