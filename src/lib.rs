//! The crate documentation is the repository README: the module table, the
//! architecture diagram and every runnable example live there (and the Rust
//! code fences below compile as doctests, so they cannot rot).
#![doc = include_str!("../README.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rlckit_circuit as circuit;
pub use rlckit_core as model;
pub use rlckit_coupling as coupling;
pub use rlckit_interconnect as interconnect;
pub use rlckit_netlist as netlist;
pub use rlckit_numeric as numeric;
pub use rlckit_reduce as reduce;
pub use rlckit_repeater as repeater;
pub use rlckit_server as server;
pub use rlckit_sweep as sweep;
pub use rlckit_telemetry as telemetry;
pub use rlckit_units as units;

/// Commonly used types and functions, re-exported for convenient glob imports.
pub mod prelude {
    pub use rlckit_circuit::ladder::{measure_step_delay, LadderSpec, SegmentStyle};
    pub use rlckit_circuit::tree::{measure_tree_delays, TreeSpec};
    pub use rlckit_core::load::GateRlcLoad;
    pub use rlckit_core::model::{propagation_delay, scaled_delay};
    pub use rlckit_coupling::bus::UniformBusSpec;
    pub use rlckit_coupling::crosstalk::crosstalk_metrics;
    pub use rlckit_coupling::netlist::BusDrive;
    pub use rlckit_coupling::scenario::{LineDrive, SwitchingPattern};
    pub use rlckit_interconnect::merit::{assess_inductance, t_l_over_r};
    pub use rlckit_interconnect::technology::Technology;
    pub use rlckit_interconnect::twoport::DrivenLine;
    pub use rlckit_interconnect::{DistributedLine, RoutingTree};
    pub use rlckit_netlist::{
        circuit_to_deck, measure_sram_read, parse_circuit, ParseError, SramArraySpec,
    };
    pub use rlckit_reduce::{
        prima, reduce_bus, reduce_ladder, PoleResidueModel, ReducedBus, ReducedLadder,
        ReductionOptions, StepMetrics,
    };
    pub use rlckit_repeater::design::{DesignStrategy, RepeaterDesigner};
    pub use rlckit_repeater::tree::evaluate_tree_repeaters;
    pub use rlckit_repeater::RepeaterProblem;
    pub use rlckit_sweep::cache::SweepCache;
    pub use rlckit_sweep::eval::{
        BusCrosstalkEvaluator, BusRepeaterEvaluator, DelayModelEvaluator, Evaluator,
        ReducedDelayEvaluator, RepeaterDesignPointEvaluator, RepeaterOptimumEvaluator,
        SramReadEvaluator, TreeDelayEvaluator,
    };
    pub use rlckit_sweep::exec::{run_sweep, run_sweep_cached, SweepOptions, SweepResult};
    pub use rlckit_sweep::scenario::{Param, Scenario, TechnologyNode};
    pub use rlckit_sweep::sink::{CsvSink, JsonSink};
    pub use rlckit_sweep::spec::{Axis, SweepSpec};
    pub use rlckit_telemetry::{span, Collector, ProfileSnapshot};
    pub use rlckit_units::{
        Area, Capacitance, CapacitancePerLength, Energy, Frequency, Inductance,
        InductancePerLength, Length, Power, Resistance, ResistancePerLength, Time, Voltage,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_modules_are_wired_together() {
        let tech = Technology::quarter_micron();
        let line = tech.global_wire.line(Length::from_millimeters(10.0)).unwrap();
        let load = GateRlcLoad::from_line(
            &line,
            tech.buffer_resistance(100.0).unwrap(),
            tech.buffer_capacitance(100.0).unwrap(),
        )
        .unwrap();
        let delay = propagation_delay(&load);
        assert!(delay.picoseconds() > 1.0);
        assert!(assess_inductance(&line, Time::from_picoseconds(50.0)).needs_inductance());
    }
}
